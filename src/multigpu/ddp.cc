#include "multigpu/ddp.hh"

#include <algorithm>

#include "base/logging.hh"
#include "ops/exec_context.hh"

namespace gnnmark {

namespace {

/** DDP bucket size (PyTorch default 25 MB). */
constexpr double kBucketBytes = 25.0 * 1024 * 1024;

/** Fixed per-iteration DDP bookkeeping (hooks, bucket ready checks). */
constexpr double kDdpOverheadSec = 40e-6;

} // namespace

DdpTrainer::DdpTrainer(GpuConfig device_config,
                       InterconnectConfig link_config)
    : deviceConfig_(device_config), interconnect_(link_config)
{
}

ScalingResult
DdpTrainer::measure(Workload &workload, const WorkloadConfig &base,
                    int world, int measured_iterations)
{
    GNN_ASSERT(world >= 1, "world size must be >= 1");
    GNN_ASSERT(measured_iterations >= 1, "need at least one iteration");

    WorkloadConfig cfg = base;
    cfg.rank = 0;
    cfg.worldSize = world;

    GpuDevice device(deviceConfig_, base.seed + world);
    workload.setup(cfg);

    DeviceGuard guard(&device);
    workload.trainIteration(); // warm up sampling caches
    device.resetTimers();

    for (int i = 0; i < measured_iterations; ++i)
        workload.trainIteration();

    const double iter_compute =
        device.wallTimeSec() / measured_iterations;
    const double iter_transfer =
        device.transferTimeSec() / measured_iterations;

    double iter_comm = 0;
    if (world > 1) {
        // Bucketed ring all-reduce of the gradients.
        const double bytes = workload.parameterBytes();
        const int buckets = std::max(
            1, static_cast<int>((bytes + kBucketBytes - 1) /
                                kBucketBytes));
        iter_comm = interconnect_.allReduceTime(bytes, world) +
                    buckets * interconnect_.config().messageLatencySec +
                    kDdpOverheadSec;
        if (!workload.samplerDdpCompatible()) {
            // Replicated batches: every replica pulls the full input
            // over the shared host link, serialising the copies.
            iter_comm += iter_transfer * (world - 1);
        }
    }

    ScalingResult res;
    res.worldSize = world;
    const double iters =
        static_cast<double>(workload.iterationsPerEpoch());
    res.computeTimeSec = iter_compute * iters;
    res.commTimeSec = iter_comm * iters;
    res.epochTimeSec = res.computeTimeSec + res.commTimeSec;
    return res;
}

ScalingResult
DdpTrainer::measureWeak(Workload &workload, const WorkloadConfig &base,
                        int world, int measured_iterations)
{
    GNN_ASSERT(world >= 1, "world size must be >= 1");

    // Per-GPU work is the full single-GPU batch: run with worldSize 1
    // for the compute, then charge the world-sized communication.
    WorkloadConfig cfg = base;
    cfg.rank = 0;
    cfg.worldSize = 1;

    GpuDevice device(deviceConfig_, base.seed + 100 + world);
    workload.setup(cfg);
    DeviceGuard guard(&device);
    workload.trainIteration();
    device.resetTimers();
    for (int i = 0; i < measured_iterations; ++i)
        workload.trainIteration();

    const double iter_compute =
        device.wallTimeSec() / measured_iterations;
    double iter_comm = 0;
    if (world > 1) {
        const double bytes = workload.parameterBytes();
        const int buckets = std::max(
            1, static_cast<int>((bytes + kBucketBytes - 1) /
                                kBucketBytes));
        iter_comm = interconnect_.allReduceTime(bytes, world) +
                    buckets * interconnect_.config().messageLatencySec +
                    kDdpOverheadSec;
    }

    ScalingResult res;
    res.worldSize = world;
    const double iters =
        static_cast<double>(workload.iterationsPerEpoch());
    res.computeTimeSec = iter_compute * iters;
    res.commTimeSec = iter_comm * iters;
    res.epochTimeSec = res.computeTimeSec + res.commTimeSec;
    return res;
}

std::vector<ScalingResult>
DdpTrainer::weakScalingCurve(Workload &workload,
                             const WorkloadConfig &base,
                             const std::vector<int> &world_sizes,
                             int measured_iterations)
{
    std::vector<ScalingResult> out;
    double base_time = 0;
    for (int w : world_sizes) {
        ScalingResult r =
            measureWeak(workload, base, w, measured_iterations);
        if (w == 1)
            base_time = r.epochTimeSec;
        out.push_back(r);
    }
    if (base_time == 0 && !out.empty()) {
        // No world_size == 1 point was measured; per-GPU work is
        // constant under weak scaling, so the first measured point is
        // itself the single-GPU reference.
        base_time = out.front().epochTimeSec;
    }
    for (ScalingResult &r : out) {
        // Weak-scaling efficiency: constant per-GPU time is 1.0.
        r.speedup = base_time > 0 && r.epochTimeSec > 0
                        ? base_time / r.epochTimeSec
                        : 0;
    }
    return out;
}

std::vector<ScalingResult>
DdpTrainer::scalingCurve(Workload &workload, const WorkloadConfig &base,
                         const std::vector<int> &world_sizes,
                         int measured_iterations)
{
    std::vector<ScalingResult> out;
    double base_time = 0;
    for (int w : world_sizes) {
        ScalingResult r =
            measure(workload, base, w, measured_iterations);
        if (w == 1)
            base_time = r.epochTimeSec;
        out.push_back(r);
    }
    if (base_time == 0 && !out.empty()) {
        // No world_size == 1 point was measured; extrapolate the
        // single-GPU time from the first point assuming ideal linear
        // scaling, so speedups stay relative to one GPU.
        base_time = out.front().epochTimeSec * out.front().worldSize;
    }
    for (ScalingResult &r : out) {
        r.speedup =
            base_time > 0 && r.epochTimeSec > 0
                ? base_time / r.epochTimeSec : 0;
    }
    return out;
}

} // namespace gnnmark
