#include "multigpu/ddp.hh"

#include <algorithm>
#include <map>

#include "base/logging.hh"
#include "core/checkpoint.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "ops/exec_context.hh"

namespace gnnmark {

namespace {

/** DDP bucket size (PyTorch default 25 MB). */
constexpr double kBucketBytes = 25.0 * 1024 * 1024;

/** Fixed per-iteration DDP bookkeeping (hooks, bucket ready checks). */
constexpr double kDdpOverheadSec = 40e-6;

/** Device-side detection latency for a failed (transient) kernel. */
constexpr double kTransientDetectSec = 0.5e-3;

/** Per-iteration gradient-sync cost on `world` replicas. */
double
allReduceCost(const Interconnect &interconnect, double bytes, int world)
{
    if (world <= 1)
        return 0;
    const int buckets = std::max(
        1,
        static_cast<int>((bytes + kBucketBytes - 1) / kBucketBytes));
    return interconnect.allReduceTime(bytes, world) +
           buckets * interconnect.config().messageLatencySec +
           kDdpOverheadSec;
}

} // namespace

DdpTrainer::DdpTrainer(GpuConfig device_config,
                       InterconnectConfig link_config)
    : deviceConfig_(device_config), interconnect_(link_config)
{
}

ScalingResult
DdpTrainer::measure(Workload &workload, const WorkloadConfig &base,
                    int world, int measured_iterations)
{
    GNN_SPAN("ddp.measure");
    GNN_ASSERT(world >= 1, "world size must be >= 1");
    GNN_ASSERT(measured_iterations >= 1, "need at least one iteration");

    WorkloadConfig cfg = base;
    cfg.rank = 0;
    cfg.worldSize = world;

    GpuDevice device(deviceConfig_, base.seed + world);
    if (extraObserver_ != nullptr)
        device.addObserver(extraObserver_);
    workload.setup(cfg);

    DeviceGuard guard(&device);
    workload.trainIteration(); // warm up sampling caches
    device.resetTimers();

    for (int i = 0; i < measured_iterations; ++i)
        workload.trainIteration();

    const double iter_compute =
        device.wallTimeSec() / measured_iterations;
    const double iter_transfer =
        device.transferTimeSec() / measured_iterations;

    double iter_comm = 0;
    if (world > 1) {
        // Bucketed ring all-reduce of the gradients.
        const double bytes = workload.parameterBytes();
        const int buckets = std::max(
            1, static_cast<int>((bytes + kBucketBytes - 1) /
                                kBucketBytes));
        iter_comm = interconnect_.allReduceTime(bytes, world) +
                    buckets * interconnect_.config().messageLatencySec +
                    kDdpOverheadSec;
        if (!workload.samplerDdpCompatible()) {
            // Replicated batches: every replica pulls the full input
            // over the shared host link, serialising the copies.
            iter_comm += iter_transfer * (world - 1);
        }
    }

    ScalingResult res;
    res.worldSize = world;
    const double iters =
        static_cast<double>(workload.iterationsPerEpoch());
    res.computeTimeSec = iter_compute * iters;
    res.commTimeSec = iter_comm * iters;
    res.epochTimeSec = res.computeTimeSec + res.commTimeSec;
    return res;
}

ScalingResult
DdpTrainer::measureWeak(Workload &workload, const WorkloadConfig &base,
                        int world, int measured_iterations)
{
    GNN_SPAN("ddp.measure_weak");
    GNN_ASSERT(world >= 1, "world size must be >= 1");

    // Per-GPU work is the full single-GPU batch: run with worldSize 1
    // for the compute, then charge the world-sized communication.
    WorkloadConfig cfg = base;
    cfg.rank = 0;
    cfg.worldSize = 1;

    GpuDevice device(deviceConfig_, base.seed + 100 + world);
    if (extraObserver_ != nullptr)
        device.addObserver(extraObserver_);
    workload.setup(cfg);
    DeviceGuard guard(&device);
    workload.trainIteration();
    device.resetTimers();
    for (int i = 0; i < measured_iterations; ++i)
        workload.trainIteration();

    const double iter_compute =
        device.wallTimeSec() / measured_iterations;
    double iter_comm = 0;
    if (world > 1) {
        const double bytes = workload.parameterBytes();
        const int buckets = std::max(
            1, static_cast<int>((bytes + kBucketBytes - 1) /
                                kBucketBytes));
        iter_comm = interconnect_.allReduceTime(bytes, world) +
                    buckets * interconnect_.config().messageLatencySec +
                    kDdpOverheadSec;
    }

    ScalingResult res;
    res.worldSize = world;
    const double iters =
        static_cast<double>(workload.iterationsPerEpoch());
    res.computeTimeSec = iter_compute * iters;
    res.commTimeSec = iter_comm * iters;
    res.epochTimeSec = res.computeTimeSec + res.commTimeSec;
    return res;
}

std::vector<ScalingResult>
DdpTrainer::weakScalingCurve(Workload &workload,
                             const WorkloadConfig &base,
                             const std::vector<int> &world_sizes,
                             int measured_iterations)
{
    std::vector<ScalingResult> out;
    double base_time = 0;
    for (int w : world_sizes) {
        ScalingResult r =
            measureWeak(workload, base, w, measured_iterations);
        if (w == 1)
            base_time = r.epochTimeSec;
        out.push_back(r);
    }
    if (base_time == 0 && !out.empty()) {
        // No world_size == 1 point was measured; per-GPU work is
        // constant under weak scaling, so the first measured point is
        // itself the single-GPU reference.
        base_time = out.front().epochTimeSec;
    }
    for (ScalingResult &r : out) {
        // Weak-scaling efficiency: constant per-GPU time is 1.0.
        r.speedup = base_time > 0 && r.epochTimeSec > 0
                        ? base_time / r.epochTimeSec
                        : 0;
    }
    return out;
}

std::vector<ScalingResult>
DdpTrainer::scalingCurve(Workload &workload, const WorkloadConfig &base,
                         const std::vector<int> &world_sizes,
                         int measured_iterations)
{
    std::vector<ScalingResult> out;
    double base_time = 0;
    for (int w : world_sizes) {
        ScalingResult r =
            measure(workload, base, w, measured_iterations);
        if (w == 1)
            base_time = r.epochTimeSec;
        out.push_back(r);
    }
    if (base_time == 0 && !out.empty()) {
        // No world_size == 1 point was measured; extrapolate the
        // single-GPU time from the first point assuming ideal linear
        // scaling, so speedups stay relative to one GPU.
        base_time = out.front().epochTimeSec * out.front().worldSize;
    }
    for (ScalingResult &r : out) {
        r.speedup =
            base_time > 0 && r.epochTimeSec > 0
                ? base_time / r.epochTimeSec : 0;
    }
    return out;
}

/** Accumulators for one fault-injected engine run. */
struct DdpTrainer::EngineOutcome
{
    double totalTimeSec = 0;
    double checkpointTimeSec = 0;
    double recoveryTimeSec = 0;
    int executedIterations = 0;
    int replayedIterations = 0;
    int worldEnd = 0;
    std::vector<FaultRecord> events;
};

DdpTrainer::EngineOutcome
DdpTrainer::runEngine(Workload &workload, const WorkloadConfig &base,
                      int world, const FaultInjector &injector,
                      const FaultRecoveryOptions &options,
                      bool with_checkpoints)
{
    GNN_SPAN("ddp.run_engine");
    GNN_ASSERT(world >= 1, "world size must be >= 1");
    GNN_ASSERT(options.iterations >= 1, "need at least one iteration");
    GNN_ASSERT(options.checkpointInterval >= 0,
               "checkpoint interval must be >= 0");

    EngineOutcome out;

    WorkloadConfig cfg = base;
    cfg.rank = 0;
    cfg.worldSize = world;

    // Both the ideal and the faulty pass seed the device identically,
    // so idealTimeSec and totalTimeSec share the same compute model.
    GpuDevice device(deviceConfig_, base.seed + 1000 + world);
    if (extraObserver_ != nullptr)
        device.addObserver(extraObserver_);
    workload.setup(cfg);
    DeviceGuard guard(&device);

    const std::vector<FaultEvent> &events = injector.plan().events();
    std::vector<char> consumed(events.size(), 0);
    std::map<size_t, size_t> record_of_event;

    std::vector<char> alive(static_cast<size_t>(world), 1);
    int alive_count = world;
    double sim_time = 0;

    auto activeAt = [](const FaultEvent &e, double t) {
        if (t < e.timeSec)
            return false;
        return e.durationSec <= 0 || t < e.timeSec + e.durationSec;
    };
    auto recordFor = [&](size_t idx) -> FaultRecord & {
        auto it = record_of_event.find(idx);
        if (it == record_of_event.end()) {
            FaultRecord rec;
            rec.kind = events[idx].kind;
            rec.simTimeSec = sim_time;
            rec.replica = events[idx].replica;
            rec.worldBefore = alive_count;
            rec.worldAfter = alive_count;
            out.events.push_back(rec);
            it = record_of_event
                     .emplace(idx, out.events.size() - 1)
                     .first;
        }
        return out.events[it->second];
    };

    const bool can_restore =
        with_checkpoints && workload.supportsCheckpoint();
    Checkpoint ckpt;
    bool have_ckpt = false;
    if (can_restore) {
        // Step-0 image: a crash before the first periodic checkpoint
        // rolls back to the exact initial state. Captured before the
        // simulated clock starts, so it costs nothing.
        ckpt = captureCheckpoint(workload, 0);
        have_ckpt = true;
    }
    auto ckptIoSec = [&]() {
        return ckpt.sizeBytes() / options.checkpointBandwidth +
               options.checkpointLatencySec;
    };

    int completed = 0;
    while (completed < options.iterations && alive_count > 0) {
        const double t0 = sim_time;

        const double wall_before = device.wallTimeSec();
        const double xfer_before = device.transferTimeSec();
        workload.trainIteration();
        const double compute = device.wallTimeSec() - wall_before;
        const double transfer =
            device.transferTimeSec() - xfer_before;
        ++out.executedIterations;

        // The iteration finishes when the slowest alive replica does.
        double strag_factor = 1.0;
        size_t strag_event = events.size();
        for (size_t i = 0; i < events.size(); ++i) {
            const FaultEvent &e = events[i];
            if (e.kind != FaultKind::Straggler || !activeAt(e, t0))
                continue;
            if (e.replica < 0 || e.replica >= world ||
                !alive[static_cast<size_t>(e.replica)]) {
                continue;
            }
            if (e.magnitude > strag_factor) {
                strag_factor = e.magnitude;
                strag_event = i;
            }
        }
        const double iter_compute = compute * strag_factor;
        if (strag_event != events.size()) {
            FaultRecord &rec = recordFor(strag_event);
            rec.slowdownSec += compute * (strag_factor - 1.0);
        }

        // Gradient sync, with any active link degradation applied.
        double comm = 0;
        if (alive_count > 1) {
            const double bytes = workload.parameterBytes();
            double healthy =
                allReduceCost(interconnect_, bytes, alive_count);
            comm = healthy;
            const double link = injector.linkFactor(t0);
            if (link < 1.0) {
                InterconnectConfig slow_cfg = interconnect_.config();
                slow_cfg.degradedHopFactor =
                    std::min(slow_cfg.degradedHopFactor, link);
                Interconnect slow(slow_cfg);
                comm = allReduceCost(slow, bytes, alive_count);
                for (size_t i = 0; i < events.size(); ++i) {
                    const FaultEvent &e = events[i];
                    if (e.kind == FaultKind::DegradedLink &&
                        activeAt(e, t0) && e.magnitude <= link) {
                        recordFor(i).slowdownSec += comm - healthy;
                        break;
                    }
                }
            }
            if (!workload.samplerDdpCompatible()) {
                // Replicated batches serialise their host copies.
                comm += transfer * (alive_count - 1);
            }
        }

        sim_time += iter_compute + comm;

        // Transient kernel failures due by now (a failure that lands
        // in a checkpoint/recovery gap surfaces in the next
        // iteration): detected on the device, the iteration is
        // recomputed.
        for (size_t i = 0; i < events.size(); ++i) {
            const FaultEvent &e = events[i];
            if (e.kind != FaultKind::TransientKernel || consumed[i])
                continue;
            if (e.timeSec <= sim_time) {
                consumed[i] = 1;
                FaultRecord &rec = recordFor(i);
                rec.detectionSec += kTransientDetectSec;
                rec.rollbackSec += iter_compute;
                out.recoveryTimeSec +=
                    kTransientDetectSec + iter_compute;
                sim_time += kTransientDetectSec + iter_compute;
                static obs::Counter transients(
                    "fault.transient_recovered");
                transients.add();
            }
        }

        // Earliest unhandled crash of a live replica: the all-reduce
        // times out, is retried with exponential backoff, then the
        // world shrinks and training rolls back to the last durable
        // checkpoint. One incident per loop pass; detection requires a
        // peer, so a sole survivor cannot observe further crashes.
        size_t crash = events.size();
        if (alive_count > 1) {
            for (size_t i = 0; i < events.size(); ++i) {
                const FaultEvent &e = events[i];
                if (e.kind != FaultKind::ReplicaCrash || consumed[i] ||
                    e.timeSec > sim_time) {
                    continue;
                }
                consumed[i] = 1;
                if (e.replica < 0 || e.replica >= world ||
                    !alive[static_cast<size_t>(e.replica)]) {
                    continue; // stale target: nothing to recover
                }
                crash = i;
                break;
            }
        }
        if (crash == events.size()) {
            ++completed;
            if (with_checkpoints && workload.supportsCheckpoint() &&
                options.checkpointInterval > 0 &&
                completed % options.checkpointInterval == 0 &&
                completed < options.iterations) {
                ckpt = captureCheckpoint(
                    workload, static_cast<uint64_t>(completed));
                have_ckpt = true;
                const double io = ckptIoSec();
                out.checkpointTimeSec += io;
                sim_time += io;
                static obs::Counter ckpts(
                    "fault.checkpoints_written");
                ckpts.add();
            }
            continue;
        }

        // The in-flight iteration never syncs; it is not counted.
        const FaultEvent &e = events[crash];
        FaultRecord &rec = recordFor(crash);

        double detection = options.allReduceTimeoutSec;
        double backoff = options.backoffBaseSec;
        for (int r = 0; r < options.maxRetries; ++r) {
            detection += backoff + options.allReduceTimeoutSec;
            backoff *= 2;
        }

        alive[static_cast<size_t>(e.replica)] = 0;
        --alive_count;
        rec.worldBefore = alive_count + 1;
        rec.worldAfter = alive_count;
        rec.simTimeSec = sim_time;
        rec.detectionSec += detection;

        const int rollback_to =
            have_ckpt ? static_cast<int>(ckpt.step) : 0;
        rec.lostIterations = completed - rollback_to;
        out.replayedIterations += rec.lostIterations;

        double rollback = 0;
        double reshard = 0;
        if (alive_count > 0) {
            // Survivors re-shard the batch over the shrunken world and
            // reload parameters from stable storage.
            cfg.worldSize = alive_count;
            workload.setup(cfg);
            if (have_ckpt) {
                rollback = ckptIoSec();
                restoreCheckpoint(workload, ckpt);
            }
            completed = rollback_to;
            reshard = options.commReinitSec;
            if (alive_count > 1) {
                reshard += interconnect_.broadcastTime(
                    workload.parameterBytes(), alive_count);
            }
        }
        rec.rollbackSec += rollback;
        rec.reshardSec += reshard;
        const double overhead = detection + rollback + reshard;
        out.recoveryTimeSec += overhead;
        sim_time += overhead;
        static obs::Counter crashes("fault.crash_recovered");
        static obs::Counter lost("fault.rollback_iterations");
        crashes.add();
        lost.add(rec.lostIterations);
    }

    if (alive_count == 0) {
        warn("fault plan killed every replica; run stopped after %d "
             "of %d iterations",
             completed, options.iterations);
    }

    out.totalTimeSec = sim_time;
    out.worldEnd = alive_count;
    return out;
}

FaultToleranceResult
DdpTrainer::runWithFaults(Workload &workload, const WorkloadConfig &base,
                          int world, const FaultPlan &plan,
                          const FaultRecoveryOptions &options)
{
    // Fault-free, checkpoint-free pass first: same device seed and
    // initial workload state, so the two clocks are comparable.
    EngineOutcome ideal = runEngine(workload, base, world,
                                    FaultInjector{}, options, false);
    EngineOutcome faulty = runEngine(workload, base, world,
                                     FaultInjector(plan), options, true);

    FaultToleranceResult res;
    res.workload = workload.name();
    res.worldStart = world;
    res.worldEnd = faulty.worldEnd;
    res.targetIterations = options.iterations;
    res.executedIterations = faulty.executedIterations;
    res.replayedIterations = faulty.replayedIterations;
    res.idealTimeSec = ideal.totalTimeSec;
    res.totalTimeSec = faulty.totalTimeSec;
    res.checkpointTimeSec = faulty.checkpointTimeSec;
    res.recoveryTimeSec = faulty.recoveryTimeSec;
    res.goodput = faulty.totalTimeSec > 0
                      ? ideal.totalTimeSec / faulty.totalTimeSec
                      : 0;
    res.events = std::move(faulty.events);
    return res;
}

} // namespace gnnmark
