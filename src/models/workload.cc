#include "models/workload.hh"

#include "base/allocator.hh"
#include "nn/optim.hh"
#include "ops/exec_context.hh"

namespace gnnmark {

void
StateVisitor::optimizer(nn::Optimizer &opt)
{
    // Parameter tensors first (fixed registration order), then the
    // optimiser's own slots and counters.
    for (const Variable &p : opt.params()) {
        // Variables share storage with the model's parameters, so
        // writing through them updates the model in place.
        tensor(const_cast<Variable &>(p).value());
    }
    opt.visitState([this](Tensor &t) { tensor(t); },
                   [this](int64_t &v) { scalar(v); });
}

void
uploadInput(const Tensor &t, const std::string &tag)
{
    if (GpuDevice *dev = ExecContext::device()) {
        dev->copyHostToDevice(t.data(), t.numel(), t.deviceAddr(), tag);
    }
}

void
uploadInput(const std::vector<int32_t> &idx, const std::string &tag)
{
    if (GpuDevice *dev = ExecContext::device()) {
        // Index arrays stream through a transient staging mapping;
        // the span is released on return, so ops that later read the
        // same vector map their own (deterministic) address.
        DeviceSpan staging(idx.size() * sizeof(int32_t));
        dev->copyHostToDevice(idx.data(), idx.size(), staging.addr(),
                              tag);
    }
}

} // namespace gnnmark
