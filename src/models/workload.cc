#include "models/workload.hh"

#include "ops/exec_context.hh"

namespace gnnmark {

void
uploadInput(const Tensor &t, const std::string &tag)
{
    if (GpuDevice *dev = ExecContext::device())
        dev->copyHostToDevice(t.data(), t.numel(), tag);
}

void
uploadInput(const std::vector<int32_t> &idx, const std::string &tag)
{
    if (GpuDevice *dev = ExecContext::device())
        dev->copyHostToDevice(idx.data(), idx.size(), tag);
}

} // namespace gnnmark
