#include "models/deepgcn.hh"

#include <algorithm>

#include "base/logging.hh"

namespace gnnmark {

DeepGcnLayer::DeepGcnLayer(int64_t hidden, Rng &rng)
    : mlp1_(hidden, hidden, rng), bn_(hidden)
{
    addChild(&mlp1_);
    addChild(&bn_);
}

Variable
DeepGcnLayer::forward(const Variable &h, const std::vector<int32_t> &src,
                      const std::vector<int32_t> &dst,
                      const Tensor &inv_deg) const
{
    (void)inv_deg;
    const int64_t n = h.value().size(0);
    // GENConv softmax aggregation: per-edge messages are combined per
    // destination with softmax weights — the exp/mul/div element-wise
    // chains plus gather/scatter traffic that make DGCN's profile
    // element-wise-dominated in the paper (Fig. 2).
    Variable msgs =
        ag::addScalar(ag::relu(ag::gatherRows(h, src)), 1e-7f);
    Variable expm = ag::exp(msgs);
    Variable denom = ag::scatterSumRows(expm, dst, n);
    Variable weights = ag::div(expm, ag::gatherRows(denom, dst));
    Variable weighted = ag::mul(msgs, weights);
    Variable agg = ag::scatterSumRows(weighted, dst, n);
    // Update: one projection (GENConv's MLP), batch norm, residual.
    Variable u = mlp1_.forward(ag::add(h, agg));
    return ag::add(h, ag::relu(bn_.forward(u)));
}

void
DeepGcn::setup(const WorkloadConfig &config)
{
    cfg_ = config;
    rng_.emplace(config.seed ^ 0x4447434eu); // "DGCN"
    const double s = config.scale;

    const int count = std::max(64, static_cast<int>(512 * s));
    dataset_ = gen::molecules(*rng_, count, 10, 24, featDim_);

    encoder_ = std::make_unique<nn::Linear>(featDim_, hidden_, *rng_);
    layers_.clear();
    for (int l = 0; l < numLayers_; ++l)
        layers_.push_back(std::make_unique<DeepGcnLayer>(hidden_, *rng_));
    readout_ = std::make_unique<nn::Linear>(hidden_, 2, *rng_);

    std::vector<Variable> params = encoder_->parameters();
    for (const auto &layer : layers_) {
        for (const auto &p : layer->parameters())
            params.push_back(p);
    }
    for (const auto &p : readout_->parameters())
        params.push_back(p);
    optim_ = std::make_unique<nn::Adam>(std::move(params), 1e-3f);
    cursor_ = 0;
}

float
DeepGcn::trainIteration()
{
    // Shard the global batch across DDP replicas.
    const int64_t local_batch =
        std::max<int64_t>(1, batch_ / cfg_.worldSize);
    const int64_t n_graphs = static_cast<int64_t>(dataset_.size());

    std::vector<SmallGraph> chosen;
    chosen.reserve(local_batch);
    const int64_t start =
        cursor_ + cfg_.rank * local_batch;
    for (int64_t i = 0; i < local_batch; ++i)
        chosen.push_back(dataset_[(start + i) % n_graphs]);
    cursor_ += batch_;

    GraphBatch batch = GraphBatch::build(chosen);
    uploadInput(batch.features, "atom_features");
    uploadInput(batch.graph.edgeSrc(), "edge_index");

    const int64_t n = batch.graph.numNodes();
    Tensor inv_deg = Tensor::zeros({n});
    for (int64_t v = 0; v < n; ++v) {
        // In-degree of v equals out-degree here (symmetric graphs).
        const int32_t d = std::max<int32_t>(1, batch.graph.degree(v));
        inv_deg(v) = 1.0f / static_cast<float>(d);
    }

    Variable h = ag::relu(encoder_->forward(Variable(batch.features)));
    for (const auto &layer : layers_) {
        h = layer->forward(h, batch.graph.edgeSrc(),
                           batch.graph.edgeDst(), inv_deg);
    }

    Variable pooled = ag::segmentMeanRows(h, batch.nodeOffsets);
    Variable logits = readout_->forward(pooled);
    Variable loss = nn::crossEntropy(logits, batch.labels);

    if (!cfg_.inferenceOnly) {
        optim_->zeroGrad();
        loss.backward();
        optim_->step();
    }
    return loss.value()(0);
}

int64_t
DeepGcn::iterationsPerEpoch() const
{
    return std::max<int64_t>(
        1, static_cast<int64_t>(dataset_.size()) / batch_);
}

double
DeepGcn::parameterBytes() const
{
    return optim_->parameterBytes();
}

void
DeepGcn::visitState(StateVisitor &visitor)
{
    visitor.rng(*rng_);
    visitor.scalar(cursor_);
    visitor.optimizer(*optim_);
}

} // namespace gnnmark
