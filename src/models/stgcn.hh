/**
 * @file
 * Spatio-Temporal GCN workload (STGCN): traffic forecasting over a
 * sensor network, after Yu et al. Two ST-Conv blocks (gated temporal
 * convolutions sandwiching a spectral graph convolution) followed by
 * a temporal output layer; trained with MSE on next-step speeds.
 * Represents the suite's dynamic-graph workload; execution is
 * dominated by 2-D convolutions (paper Fig. 2).
 */

#ifndef GNNMARK_MODELS_STGCN_HH
#define GNNMARK_MODELS_STGCN_HH

#include <memory>
#include <optional>

#include "graph/generators.hh"
#include "models/workload.hh"
#include "nn/layers.hh"
#include "nn/optim.hh"

namespace gnnmark {

/** One gated ST-Conv block. */
class StConvBlock : public nn::Module
{
  public:
    StConvBlock(int64_t c_in, int64_t c_mid, int64_t c_out, Rng &rng);

    /** x is [B, c_in, T, N]; returns [B, c_out, T-4, N]. */
    Variable forward(const Variable &x, const SparseMatrix &adj,
                     const SparseMatrix &adj_t) const;

  private:
    Variable temporalGlu(const Variable &x, const Variable &wa,
                         const Variable &wb) const;

    Variable convA1_, convB1_; ///< [c_mid, c_in, 3, 1] temporal pair
    Variable theta_;           ///< [c_mid, c_mid, 1, 1] channel mix
    Variable convA2_, convB2_; ///< [c_out, c_mid, 3, 1] temporal pair
};

/** The STGCN workload: spatio-temporal traffic forecasting. */
class Stgcn : public Workload
{
  public:
    Stgcn() = default;

    std::string name() const override { return "STGCN"; }
    std::string modelName() const override { return "STGCN"; }
    std::string framework() const override { return "PyTorch"; }
    std::string domain() const override { return "Traffic forecasting"; }
    std::string datasetName() const override
    {
        return "METR-LA (synthetic)";
    }
    std::string graphType() const override
    {
        return "Dynamic (spatio-temporal)";
    }

    void setup(const WorkloadConfig &config) override;
    float trainIteration() override;
    int64_t iterationsPerEpoch() const override;
    double parameterBytes() const override;
    bool supportsCheckpoint() const override { return true; }
    void visitState(StateVisitor &visitor) override;

  private:
    WorkloadConfig cfg_;
    std::optional<Rng> rng_;

    gen::TrafficData data_;
    SparseMatrix adj_, adjT_;
    int64_t window_ = 12;
    int64_t batch_ = 16;

    std::unique_ptr<StConvBlock> block1_;
    std::unique_ptr<StConvBlock> block2_;
    Variable outConv_;  ///< [1, c, T_rem, 1] collapse time
    std::unique_ptr<nn::Adam> optim_;
};

} // namespace gnnmark

#endif // GNNMARK_MODELS_STGCN_HH
