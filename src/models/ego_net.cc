#include "models/ego_net.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "models/workload.hh"
#include "ops/elementwise.hh"
#include "ops/index.hh"
#include "ops/reduce.hh"
#include "ops/sort.hh"
#include "ops/var_ops.hh"

namespace gnnmark {

namespace {

/** Position of each query id within a sorted unique id list. */
std::vector<int32_t>
positionsIn(const std::vector<int32_t> &sorted_ids,
            const std::vector<int32_t> &queries)
{
    std::vector<int32_t> out;
    out.reserve(queries.size());
    for (int32_t q : queries) {
        auto it = std::lower_bound(sorted_ids.begin(), sorted_ids.end(),
                                   q);
        GNN_ASSERT(it != sorted_ids.end() && *it == q,
                   "id %d missing from unique list", q);
        out.push_back(static_cast<int32_t>(it - sorted_ids.begin()));
    }
    return out;
}

} // namespace

EgoNetBatchModel::EgoNetBatchModel(double scale, uint64_t seed)
{
    rng_.emplace(seed ^ 0x45474f4eu); // "EGON"

    // PSAGE-MVL-shaped catalogue: narrow item features, moderate
    // sparsity — the recommendation corpus the queries hit.
    const int64_t users = std::max<int64_t>(64, 900 * scale);
    const int64_t items = std::max<int64_t>(64, 700 * scale);
    const int64_t clicks = std::max<int64_t>(512, 14000 * scale);
    const int64_t fdim = 64;

    data_ = gen::bipartiteRecsys(*rng_, users, items, clicks, fdim,
                                 /*feature_zero_fraction=*/0.22);
    itemToUser_ = data_.graph.relationAdjList(data_.relItemUser);
    userToItem_ = data_.graph.relationAdjList(data_.relUserItem);
    sampler_ = std::make_unique<RandomWalkSampler>(
        itemToUser_, userToItem_, /*walks=*/8, /*walk_length=*/2,
        /*top_t=*/6);

    proj_ = std::make_unique<nn::Linear>(fdim, hidden_, *rng_);
    sage1_ = std::make_unique<SageLayer>(hidden_, hidden_, *rng_);
    sage2_ = std::make_unique<SageLayer>(hidden_, hidden_, *rng_);
}

EgoNetBatchModel::~EgoNetBatchModel() = default;

float
EgoNetBatchModel::inferBatch(const std::vector<int32_t> &items)
{
    GNN_ASSERT(!items.empty(), "inferBatch needs at least one item");
    for (int32_t item : items) {
        GNN_ASSERT(item >= 0 && item < data_.items,
                   "item %d outside the catalogue [0, %lld)", item,
                   static_cast<long long>(data_.items));
    }

    // Compact the query id space, exactly like the training path's
    // to_block() (sorted unique + relabel).
    std::vector<int32_t> seeds = ops::sortedUnique(items);

    // Two-layer sampled ego nets, built outside-in.
    SampledBlock outer = sampler_->sample(seeds, *rng_);
    SampledBlock inner = sampler_->sample(outer.srcNodes, *rng_);

    // Block compaction sorts: inference keeps the forward op mix, so
    // the endpoint relabel sorts stay on the priced path.
    for (const SampledBlock *block : {&inner, &outer}) {
        std::vector<int32_t> endpoint_ids;
        endpoint_ids.reserve(block->neighbors.size() +
                             block->dstNodes.size());
        for (int32_t p : block->neighbors)
            endpoint_ids.push_back(block->srcNodes[p]);
        endpoint_ids.insert(endpoint_ids.end(), block->dstNodes.begin(),
                            block->dstNodes.end());
        ops::sortedUnique(endpoint_ids);

        std::vector<int32_t> edge_order(block->neighbors.size());
        for (size_t i = 0; i < edge_order.size(); ++i)
            edge_order[i] = static_cast<int32_t>(i);
        std::vector<int32_t> edge_keys = block->neighbors;
        ops::sortKeyValue(edge_keys, edge_order);
    }

    // Host-side feature slice + sparsity-instrumented upload.
    const int64_t fdim = data_.itemFeatures.size(1);
    Tensor raw = Tensor::zeros(
        {static_cast<int64_t>(inner.srcNodes.size()), fdim});
    for (size_t i = 0; i < inner.srcNodes.size(); ++i) {
        const float *src =
            data_.itemFeatures.data() +
            static_cast<int64_t>(inner.srcNodes[i]) * fdim;
        std::copy(src, src + fdim, raw.data() + i * fdim);
    }
    uploadInput(raw, "item_features");
    uploadInput(inner.neighbors, "block_inner");
    uploadInput(outer.neighbors, "block_outer");

    // Feature preprocessing (standardise + l2-normalise); no dropout —
    // this is the serving path, not training.
    Tensor mean_shifted = ops::addScalar(raw, -0.01f);
    Tensor squared = ops::mul(mean_shifted, mean_shifted);
    Tensor norms = ops::reduceSumRows(squared);
    Tensor inv = Tensor::zeros({norms.size(0)});
    for (int64_t i = 0; i < norms.size(0); ++i)
        inv(i) = 1.0f / std::sqrt(norms(i) + 1e-6f);
    Tensor normalized = ops::mulRowsBy(mean_shifted, inv);

    Variable x(normalized);
    Variable h0 = ag::relu(proj_->forward(x));

    std::vector<int32_t> inner_dst =
        positionsIn(inner.srcNodes, inner.dstNodes);
    Variable h1 = sage1_->forward(inner, h0, inner_dst);

    std::vector<int32_t> outer_dst =
        positionsIn(outer.srcNodes, outer.dstNodes);
    Variable h2 = sage2_->forward(outer, h1, outer_dst);

    // Pull the requested embeddings (duplicates resolve to the same
    // compacted row) and reduce to a scalar checksum.
    Variable out = ag::indexSelectRows(h2, positionsIn(seeds, items));
    return ops::reduceMeanAll(out.value());
}

} // namespace gnnmark
