/**
 * @file
 * GraphWriter workload (GW): knowledge-graph-to-text generation after
 * Koncel-Kedziorski et al. A graph-transformer encoder contextualises
 * entity representations; an attention LSTM decoder emits the target
 * token sequence. The transformer/vocab-projection GEMMs make GW the
 * suite's only fp32-dominated, TFLOP-class workload (Figs. 3-4).
 */

#ifndef GNNMARK_MODELS_GRAPHWRITER_HH
#define GNNMARK_MODELS_GRAPHWRITER_HH

#include <memory>
#include <optional>

#include "graph/generators.hh"
#include "models/workload.hh"
#include "nn/layers.hh"
#include "nn/loss.hh"
#include "nn/optim.hh"

namespace gnnmark {

/** One graph-transformer encoder layer (MHA + FFN, residual + LN). */
class GraphTransformerLayer : public nn::Module
{
  public:
    GraphTransformerLayer(int64_t dim, int heads, Rng &rng);

    /**
     * @param x   [N, dim] entity states
     * @param adj graph adjacency (sparse neighbourhood mixing)
     */
    Variable forward(const Variable &x, const SparseMatrix &adj,
                     const SparseMatrix &adj_t) const;

  private:
    nn::MultiheadAttention attn_;
    nn::Linear ffn1_, ffn2_;
    nn::LayerNorm ln1_, ln2_;
};

/** The GW workload: graph-transformer + LSTM decoder training. */
class GraphWriter : public Workload
{
  public:
    GraphWriter() = default;

    std::string name() const override { return "GW"; }
    std::string modelName() const override { return "GraphWriter"; }
    std::string framework() const override { return "PyTorch"; }
    std::string domain() const override { return "Text generation"; }
    std::string datasetName() const override
    {
        return "AGENDA (synthetic)";
    }
    std::string graphType() const override { return "Knowledge graph"; }

    void setup(const WorkloadConfig &config) override;
    float trainIteration() override;
    int64_t iterationsPerEpoch() const override;
    double parameterBytes() const override;
    bool supportsCheckpoint() const override { return true; }
    void visitState(StateVisitor &visitor) override;

  private:
    WorkloadConfig cfg_;
    std::optional<Rng> rng_;

    gen::KnowledgeGraphText data_;
    SparseMatrix adj_, adjT_;
    int64_t dim_ = 320;
    int64_t vocab_ = 0; ///< set from scale in setup()
    int64_t sentenceLen_ = 14;
    int64_t batch_ = 48;

    std::unique_ptr<nn::Linear> encIn_;
    std::unique_ptr<GraphTransformerLayer> enc1_;
    std::unique_ptr<GraphTransformerLayer> enc2_;
    std::unique_ptr<nn::Embedding> tokenEmb_;
    std::unique_ptr<nn::LstmCell> decoder_;
    std::unique_ptr<nn::Linear> attnQuery_;
    std::unique_ptr<nn::Linear> vocabOut_;
    std::unique_ptr<nn::Adam> optim_;

    int64_t cursor_ = 0;
};

} // namespace gnnmark

#endif // GNNMARK_MODELS_GRAPHWRITER_HH
