#include "models/graphwriter.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "ops/index.hh"
#include "ops/sort.hh"

namespace gnnmark {

GraphTransformerLayer::GraphTransformerLayer(int64_t dim, int heads,
                                             Rng &rng)
    : attn_(dim, heads, rng), ffn1_(dim, 2 * dim, rng),
      ffn2_(2 * dim, dim, rng), ln1_(dim), ln2_(dim)
{
    addChild(&attn_);
    addChild(&ffn1_);
    addChild(&ffn2_);
    addChild(&ln1_);
    addChild(&ln2_);
}

Variable
GraphTransformerLayer::forward(const Variable &x,
                               const SparseMatrix &adj,
                               const SparseMatrix &adj_t) const
{
    // Graph-aware attention: mix neighbourhood context into the keys
    // (the SpMM), then full multi-head attention.
    Variable neigh = ag::spmm(adj, adj_t, x);
    Variable attended = attn_.forward(x, neigh, neigh);
    Variable h = ln1_.forward(ag::add(x, attended));
    Variable ffn = ffn2_.forward(ag::relu(ffn1_.forward(h)));
    return ln2_.forward(ag::add(h, ffn));
}

void
GraphWriter::setup(const WorkloadConfig &config)
{
    cfg_ = config;
    rng_.emplace(config.seed ^ 0x47575254u); // "GWRT"
    const double s = config.scale;

    const int64_t entities = std::max<int64_t>(64, 600 * s);
    const int samples = std::max(16, static_cast<int>(256 * s));
    vocab_ = std::max<int64_t>(256, static_cast<int64_t>(2048 * s));
    data_ = gen::knowledgeGraph(*rng_, entities, samples,
                                static_cast<int>(vocab_), sentenceLen_,
                                /*feat_dim=*/128);
    adj_ = data_.entities.gcnNormAdjacency();
    adjT_ = adj_;

    encIn_ = std::make_unique<nn::Linear>(128, dim_, *rng_);
    enc1_ = std::make_unique<GraphTransformerLayer>(dim_, 4, *rng_);
    enc2_ = std::make_unique<GraphTransformerLayer>(dim_, 4, *rng_);
    tokenEmb_ = std::make_unique<nn::Embedding>(vocab_, dim_, *rng_);
    decoder_ = std::make_unique<nn::LstmCell>(2 * dim_, dim_, *rng_);
    attnQuery_ = std::make_unique<nn::Linear>(dim_, dim_, *rng_);
    vocabOut_ = std::make_unique<nn::Linear>(2 * dim_, vocab_, *rng_);

    std::vector<Variable> params;
    for (nn::Module *m :
         std::initializer_list<nn::Module *>{
             encIn_.get(), enc1_.get(), enc2_.get(), tokenEmb_.get(),
             decoder_.get(), attnQuery_.get(), vocabOut_.get()}) {
        for (const auto &p : m->parameters())
            params.push_back(p);
    }
    optim_ = std::make_unique<nn::Adam>(std::move(params), 1e-3f);
    cursor_ = 0;
}

float
GraphWriter::trainIteration()
{
    const int64_t samples =
        static_cast<int64_t>(data_.targetTokens.size());
    const int64_t local_batch =
        std::max<int64_t>(1, batch_ / cfg_.worldSize);
    const int64_t start = cursor_ + cfg_.rank * local_batch;
    cursor_ += batch_;

    // The batch's knowledge subgraph: union of the samples' entity
    // sets, compacted on device (sorted unique, as DGL's to_block).
    std::vector<int32_t> ent_ids;
    for (int64_t b = 0; b < local_batch; ++b) {
        const auto &ents = data_.entitySets[(start + b) % samples];
        ent_ids.insert(ent_ids.end(), ents.begin(), ents.end());
    }
    std::vector<int32_t> ents = ops::sortedUnique(ent_ids);

    // Induced adjacency over the batch entities.
    std::vector<std::pair<int32_t, int32_t>> sub_edges;
    for (size_t i = 0; i < ents.size(); ++i) {
        auto [begin, end] = data_.entities.neighbors(ents[i]);
        for (const int32_t *p = begin; p != end; ++p) {
            auto it =
                std::lower_bound(ents.begin(), ents.end(), *p);
            if (it != ents.end() && *it == *p) {
                sub_edges.emplace_back(
                    static_cast<int32_t>(i),
                    static_cast<int32_t>(it - ents.begin()));
            }
        }
    }
    Graph subgraph(static_cast<int64_t>(ents.size()),
                   std::move(sub_edges));
    SparseMatrix adj = subgraph.gcnNormAdjacency();

    // Batch entity features: device-side row gather plus the H2D copy
    // whose sparsity Fig. 7 tracks.
    Tensor sub_feats = ops::indexSelectRows(data_.entityFeatures, ents);
    uploadInput(sub_feats, "entity_features");

    // Encode the batch subgraph.
    Variable enc_in = ag::relu(encIn_->forward(Variable(sub_feats)));
    Variable enc = enc1_->forward(enc_in, adj, adj);
    enc = enc2_->forward(enc, adj, adj);

    const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(dim_));

    // Teacher-forced decoding of the batch's target sentences. The
    // per-step decoder states are collected and projected onto the
    // vocabulary in one large GEMM, as the reference implementation
    // does — the TFLOP-class kernel of Fig. 4.
    nn::LstmCell::State state = decoder_->initial(local_batch);
    Variable ctx(Tensor::zeros({local_batch, dim_}));
    std::vector<Variable> step_states;
    std::vector<int32_t> all_labels;
    std::vector<int32_t> tokens(local_batch);

    for (int64_t t = 0; t < sentenceLen_; ++t) {
        for (int64_t b = 0; b < local_batch; ++b) {
            const auto &sent =
                data_.targetTokens[(start + b) % samples];
            tokens[b] = t == 0 ? 0 : sent[t - 1];
            all_labels.push_back(sent[t]);
        }
        if (t == 0)
            uploadInput(tokens, "decoder_tokens");

        Variable emb = tokenEmb_->forward(tokens);
        Variable x = ag::concatCols(emb, ctx);
        state = decoder_->forward(x, state);

        // Attention over the entity encodings.
        Variable q = attnQuery_->forward(state.h);
        Variable scores =
            ag::scale(ag::gemm(q, enc, {.trans_b = true}), inv_sqrt);
        Variable attn = ag::softmaxRows(scores);
        ctx = ag::gemm(attn, enc);

        step_states.push_back(ag::concatCols(state.h, ctx));
    }
    Variable decoded = ag::concatRows(step_states); // [B*L, 2*dim]
    Variable logits = vocabOut_->forward(decoded);
    Variable loss = nn::crossEntropy(logits, all_labels);

    if (!cfg_.inferenceOnly) {
        optim_->zeroGrad();
        loss.backward();
        optim_->step();
    }
    return loss.value()(0);
}

int64_t
GraphWriter::iterationsPerEpoch() const
{
    return std::max<int64_t>(
        1, static_cast<int64_t>(data_.targetTokens.size()) / batch_);
}

double
GraphWriter::parameterBytes() const
{
    return optim_->parameterBytes();
}

void
GraphWriter::visitState(StateVisitor &visitor)
{
    visitor.rng(*rng_);
    visitor.scalar(cursor_);
    visitor.optimizer(*optim_);
}

} // namespace gnnmark
