/**
 * @file
 * ARGA workload: Adversarially Regularized Graph Autoencoder (Pan et
 * al.) for unsupervised node clustering on citation graphs. A GCN
 * encoder embeds the whole graph; an inner-product decoder
 * reconstructs the adjacency; a small MLP discriminator pushes the
 * embedding towards a Gaussian prior. ARGA trains on the full graph
 * every step — which is why the paper excludes it from the multi-GPU
 * scaling study and why its transfers are highly sparse (one-hot
 * bag-of-words features).
 */

#ifndef GNNMARK_MODELS_ARGA_HH
#define GNNMARK_MODELS_ARGA_HH

#include <memory>
#include <optional>

#include "graph/generators.hh"
#include "models/gnn_layers.hh"
#include "models/workload.hh"
#include "nn/layers.hh"
#include "nn/optim.hh"

namespace gnnmark {

/** The ARGA workload: adversarial graph autoencoder training. */
class Arga : public Workload
{
  public:
    Arga() = default;

    std::string name() const override { return "ARGA"; }
    std::string modelName() const override { return "ARGA"; }
    std::string framework() const override { return "PyG"; }
    std::string domain() const override { return "Node clustering"; }
    std::string datasetName() const override
    {
        return "Cora (synthetic)";
    }
    std::string graphType() const override { return "Homogeneous"; }

    void setup(const WorkloadConfig &config) override;
    float trainIteration() override;
    int64_t iterationsPerEpoch() const override;
    double parameterBytes() const override;
    bool supportsCheckpoint() const override { return true; }
    void visitState(StateVisitor &visitor) override;

    /** Whole-graph training cannot be data-parallelised (Fig. 9). */
    bool supportsMultiGpu() const override { return false; }

  private:
    WorkloadConfig cfg_;
    std::optional<Rng> rng_;

    gen::CitationData data_;
    SparseMatrix adj_, adjT_;
    Tensor adjDense_; ///< reconstruction targets [N, N]
    int64_t hidden_ = 32;
    int64_t zDim_ = 16;

    std::unique_ptr<GcnLayer> enc1_;
    std::unique_ptr<GcnLayer> enc2_;
    Variable preluSlope_; ///< learnable PReLU slope (paper Sec. V-D)
    std::unique_ptr<nn::Linear> disc1_;
    std::unique_ptr<nn::Linear> disc2_;
    std::unique_ptr<nn::Adam> optimEnc_;
    std::unique_ptr<nn::Adam> optimDisc_;
};

} // namespace gnnmark

#endif // GNNMARK_MODELS_ARGA_HH
