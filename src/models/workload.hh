/**
 * @file
 * The GNNMark workload interface. Each of the suite's seven models
 * implements it: setup() synthesises the dataset and builds the model,
 * trainIteration() runs one forward/backward/optimiser step against
 * whatever device is bound via ContextGuard, uploading its mini-batch
 * inputs through the device so transfer sparsity is observed.
 */

#ifndef GNNMARK_MODELS_WORKLOAD_HH
#define GNNMARK_MODELS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hh"

namespace gnnmark {

class Rng;

namespace nn {
class Optimizer;
} // namespace nn

/**
 * Visitor over a workload's mutable training state, used by the
 * checkpoint subsystem. A workload's visitState() must enumerate
 * every piece of state that changes across trainIteration() calls —
 * its Rng stream, batch cursors, and optimisers (which cover the
 * parameter tensors and slot buffers) — in a fixed order. The same
 * traversal serves both save (visitor reads) and restore (visitor
 * writes), which is what makes resume bitwise-exact.
 */
class StateVisitor
{
  public:
    virtual ~StateVisitor() = default;

    /** A tensor whose contents are training state (copied in place). */
    virtual void tensor(Tensor &t) = 0;

    /** An integer scalar (batch cursor, step counter). */
    virtual void scalar(int64_t &v) = 0;

    /** An Rng whose stream position is training state. */
    virtual void rng(Rng &r) = 0;

    /** An optimiser: its parameters, slots and step counter. */
    void optimizer(nn::Optimizer &opt);
};

/** Scale and sharding knobs shared by all workloads. */
struct WorkloadConfig
{
    uint64_t seed = 42;
    /** Dataset scale factor (1.0 = the suite's default sizes). */
    double scale = 1.0;
    /** DDP sharding: this replica's rank and the world size. */
    int rank = 0;
    int worldSize = 1;
    /**
     * Forward-only mode (no backward pass, no optimiser step): used
     * for the training-vs-inference comparison the paper draws
     * against prior inference-focused studies.
     */
    bool inferenceOnly = false;
};

/** One GNNMark training workload. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Suite identifier, e.g. "PSAGE-MVL" (Table I row key). */
    virtual std::string name() const = 0;

    /** @{ Table I metadata. */
    virtual std::string modelName() const = 0;
    virtual std::string framework() const = 0;
    virtual std::string domain() const = 0;
    virtual std::string datasetName() const = 0;
    virtual std::string graphType() const = 0;
    /** @} */

    /** Build datasets and model state; called once. */
    virtual void setup(const WorkloadConfig &config) = 0;

    /** One training step; returns the loss. */
    virtual float trainIteration() = 0;

    /** Mini-batch steps per epoch at the configured scale. */
    virtual int64_t iterationsPerEpoch() const = 0;

    /** Bytes of trainable parameters (the DDP all-reduce payload). */
    virtual double parameterBytes() const = 0;

    /**
     * False for models whose batch sampler replicates work instead of
     * sharding under DistributedDataParallel (the PinSAGE pathology
     * in the paper's Fig. 9).
     */
    virtual bool samplerDdpCompatible() const { return true; }

    /**
     * False for models that inherently train on the whole graph at
     * once (ARGA), which the paper excludes from the scaling study.
     */
    virtual bool supportsMultiGpu() const { return true; }

    /**
     * True if visitState() enumerates the complete mutable training
     * state, i.e. checkpoint/restore round-trips bitwise. All suite
     * workloads support this; external Workload subclasses opt in by
     * overriding both members.
     */
    virtual bool supportsCheckpoint() const { return false; }

    /**
     * Enumerate mutable training state (see StateVisitor). Must only
     * be called after setup(); the traversal order must be identical
     * between the save and the restore of one checkpoint.
     */
    virtual void visitState(StateVisitor &visitor) { (void)visitor; }
};

/** Upload a tensor to the bound device, if any (sparsity-tracked). */
void uploadInput(const Tensor &t, const std::string &tag);

/** Upload an index array to the bound device, if any. */
void uploadInput(const std::vector<int32_t> &idx, const std::string &tag);

} // namespace gnnmark

#endif // GNNMARK_MODELS_WORKLOAD_HH
