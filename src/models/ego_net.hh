/**
 * @file
 * Batched ego-net inference entry: the per-user recommendation query
 * the serving front-end prices. One query asks for the embedding of a
 * seed item; a batch of queries shares one PinSAGE-style forward pass
 * (random-walk sampled two-hop ego networks, block compaction sorts,
 * feature upload, two SAGE layers). There is no backward pass and no
 * optimiser — this is the inference path the serving simulator runs
 * on the sim device to learn what a batch of size K actually costs.
 */

#ifndef GNNMARK_MODELS_EGO_NET_HH
#define GNNMARK_MODELS_EGO_NET_HH

#include <memory>
#include <optional>
#include <vector>

#include "graph/generators.hh"
#include "graph/samplers.hh"
#include "models/gnn_layers.hh"
#include "nn/layers.hh"

namespace gnnmark {

/** Batched PinSAGE-flavoured ego-net inference model (see file doc). */
class EgoNetBatchModel
{
  public:
    /**
     * Build the item catalogue, sampler and layers. `scale` follows
     * the suite's dataset scale factor; the catalogue mirrors the
     * PSAGE-MVL configuration (narrow features, moderate sparsity).
     */
    EgoNetBatchModel(double scale, uint64_t seed);
    ~EgoNetBatchModel();

    /** Items in the catalogue (valid query ids are [0, numItems)). */
    int64_t numItems() const { return data_.items; }

    /**
     * One batched forward pass for the given seed items: sample the
     * two-hop ego nets, compact blocks (the inference path keeps the
     * to_block sorts), upload features, and run proj -> SAGE -> SAGE.
     * Returns the mean output embedding value (a cheap checksum that
     * keeps the computation observable). Deterministic in call order
     * for a fixed seed.
     */
    float inferBatch(const std::vector<int32_t> &items);

  private:
    std::optional<Rng> rng_;

    gen::RecsysData data_;
    std::vector<std::vector<int32_t>> itemToUser_;
    std::vector<std::vector<int32_t>> userToItem_;
    std::unique_ptr<RandomWalkSampler> sampler_;

    int64_t hidden_ = 56;
    std::unique_ptr<nn::Linear> proj_;
    std::unique_ptr<SageLayer> sage1_;
    std::unique_ptr<SageLayer> sage2_;
};

} // namespace gnnmark

#endif // GNNMARK_MODELS_EGO_NET_HH
