/**
 * @file
 * PinSAGE workload (PSAGE): random-walk-sampled GraphSAGE for item
 * recommendation on a bipartite user-item graph, after the DGL
 * implementation of Ying et al. Two dataset configurations mirror the
 * paper: MVL (MovieLens-like, narrow features) and NWP
 * (Nowplaying-like, 10x wider features).
 */

#ifndef GNNMARK_MODELS_PINSAGE_HH
#define GNNMARK_MODELS_PINSAGE_HH

#include <memory>
#include <optional>

#include "graph/generators.hh"
#include "graph/samplers.hh"
#include "models/gnn_layers.hh"
#include "models/workload.hh"
#include "nn/optim.hh"

namespace gnnmark {

/** Dataset flavour for the PinSAGE workload. */
enum class PinSageDataset
{
    MVL, ///< MovieLens-like: 64-wide item features, 22% zeros
    NWP, ///< Nowplaying-like: 640-wide item features, 11% zeros
};

/** The PSAGE workload (see file comment); MVL or NWP flavour. */
class PinSage : public Workload
{
  public:
    explicit PinSage(PinSageDataset dataset);

    std::string name() const override;
    std::string modelName() const override { return "PinSAGE"; }
    std::string framework() const override { return "DGL"; }
    std::string domain() const override { return "Recommendation"; }
    std::string datasetName() const override;
    std::string graphType() const override { return "Heterogeneous"; }

    void setup(const WorkloadConfig &config) override;
    float trainIteration() override;
    int64_t iterationsPerEpoch() const override;
    double parameterBytes() const override;
    bool supportsCheckpoint() const override { return true; }
    void visitState(StateVisitor &visitor) override;

    /** The DGL batch sampler replicates under DDP (paper Fig. 9). */
    bool samplerDdpCompatible() const override { return false; }

  private:
    /** Draw a co-clicked positive partner for an item. */
    int32_t samplePositive(int32_t item);

    PinSageDataset dataset_;
    WorkloadConfig cfg_;
    std::optional<Rng> rng_;

    gen::RecsysData data_;
    std::vector<std::vector<int32_t>> itemToUser_;
    std::vector<std::vector<int32_t>> userToItem_;
    std::unique_ptr<RandomWalkSampler> sampler_;

    int64_t hidden_ = 56;
    int64_t batch_ = 192;
    std::unique_ptr<nn::Linear> proj_;
    std::unique_ptr<SageLayer> sage1_;
    std::unique_ptr<SageLayer> sage2_;
    std::unique_ptr<nn::Adam> optim_;

    int64_t cursor_ = 0;
};

} // namespace gnnmark

#endif // GNNMARK_MODELS_PINSAGE_HH
