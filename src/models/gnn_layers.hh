/**
 * @file
 * Reusable GNN layers: GCN (SpMM aggregation) and GraphSAGE (sampled
 * gather/segment aggregation over message-passing blocks).
 */

#ifndef GNNMARK_MODELS_GNN_LAYERS_HH
#define GNNMARK_MODELS_GNN_LAYERS_HH

#include "graph/samplers.hh"
#include "nn/layers.hh"
#include "tensor/csr.hh"

namespace gnnmark {

/** Kipf-Welling GCN layer: H' = act(A_norm H W + b). */
class GcnLayer : public nn::Module
{
  public:
    GcnLayer(int64_t in, int64_t out, Rng &rng);

    /**
     * @param adj   normalised adjacency
     * @param adj_t its transpose (for the backward SpMM)
     */
    Variable forward(const SparseMatrix &adj, const SparseMatrix &adj_t,
                     const Variable &x) const;

  private:
    nn::Linear linear_;
};

/**
 * GraphSAGE layer over a sampled block: destination features are
 * concatenated with the weighted mean of gathered neighbour features,
 * then projected.
 */
class SageLayer : public nn::Module
{
  public:
    SageLayer(int64_t in, int64_t out, Rng &rng);

    /**
     * @param block     sampled neighbourhood structure
     * @param src_feats [block.srcNodes.size(), in] features
     * @param dst_index positions of block.dstNodes within srcNodes
     */
    Variable forward(const SampledBlock &block, const Variable &src_feats,
                     const std::vector<int32_t> &dst_index) const;

  private:
    nn::Linear self_;
    nn::Linear neigh_;
};

} // namespace gnnmark

#endif // GNNMARK_MODELS_GNN_LAYERS_HH
