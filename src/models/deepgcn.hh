/**
 * @file
 * DeepGCN workload (DGCN): a deep residual GCN (Li et al.) for graph
 * property prediction on batches of molecule-like graphs. Each layer
 * does explicit gather/scatter message passing, an MLP update, batch
 * norm and a residual add — the residual plumbing is why DGCN's time
 * is dominated by element-wise operations in the paper (~31%).
 */

#ifndef GNNMARK_MODELS_DEEPGCN_HH
#define GNNMARK_MODELS_DEEPGCN_HH

#include <memory>
#include <optional>

#include "graph/batch.hh"
#include "graph/generators.hh"
#include "models/workload.hh"
#include "nn/layers.hh"
#include "nn/loss.hh"
#include "nn/optim.hh"

namespace gnnmark {

/** One residual message-passing layer of DeepGCN. */
class DeepGcnLayer : public nn::Module
{
  public:
    DeepGcnLayer(int64_t hidden, Rng &rng);

    /**
     * @param h       [N, hidden] node states
     * @param src,dst edge endpoints
     * @param inv_deg [N] reciprocal in-degrees (mean aggregation)
     */
    Variable forward(const Variable &h, const std::vector<int32_t> &src,
                     const std::vector<int32_t> &dst,
                     const Tensor &inv_deg) const;

  private:
    nn::Linear mlp1_;
    nn::BatchNorm1d bn_;
};

/** The DGCN workload: deep residual GCN training. */
class DeepGcn : public Workload
{
  public:
    DeepGcn() = default;

    std::string name() const override { return "DGCN"; }
    std::string modelName() const override { return "DeepGCN"; }
    std::string framework() const override { return "PyG"; }
    std::string domain() const override
    {
        return "Molecular property prediction";
    }
    std::string datasetName() const override
    {
        return "ogbg-mol (synthetic)";
    }
    std::string graphType() const override
    {
        return "Homogeneous (batched)";
    }

    void setup(const WorkloadConfig &config) override;
    float trainIteration() override;
    int64_t iterationsPerEpoch() const override;
    double parameterBytes() const override;
    bool supportsCheckpoint() const override { return true; }
    void visitState(StateVisitor &visitor) override;

  private:
    WorkloadConfig cfg_;
    std::optional<Rng> rng_;

    std::vector<SmallGraph> dataset_;
    int64_t featDim_ = 9;
    int64_t hidden_ = 72;
    int numLayers_ = 14;
    int64_t batch_ = 96;

    std::unique_ptr<nn::Linear> encoder_;
    std::vector<std::unique_ptr<DeepGcnLayer>> layers_;
    std::unique_ptr<nn::Linear> readout_;
    std::unique_ptr<nn::Adam> optim_;

    int64_t cursor_ = 0;
};

} // namespace gnnmark

#endif // GNNMARK_MODELS_DEEPGCN_HH
