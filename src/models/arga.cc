#include "models/arga.hh"

#include "base/logging.hh"
#include "ops/sort.hh"

namespace gnnmark {

void
Arga::setup(const WorkloadConfig &config)
{
    cfg_ = config;
    rng_.emplace(config.seed ^ 0x41524741u); // "ARGA"

    // A scaled Cora: 2708 nodes, 1433 one-hot features at scale 1.
    data_ = gen::cora(*rng_, 0.45 * config.scale);
    adj_ = data_.graph.gcnNormAdjacency();
    adjT_ = adj_;

    const int64_t n = data_.graph.numNodes();
    adjDense_ = Tensor::zeros({n, n});
    for (int64_t v = 0; v < n; ++v) {
        auto [begin, end] = data_.graph.neighbors(v);
        for (const int32_t *p = begin; p != end; ++p)
            adjDense_(v, *p) = 1.0f;
        adjDense_(v, v) = 1.0f;
    }

    const int64_t fdim = data_.features.size(1);
    enc1_ = std::make_unique<GcnLayer>(fdim, hidden_, *rng_);
    enc2_ = std::make_unique<GcnLayer>(hidden_, zDim_, *rng_);
    disc1_ = std::make_unique<nn::Linear>(zDim_, hidden_, *rng_);
    disc2_ = std::make_unique<nn::Linear>(hidden_, 1, *rng_);

    preluSlope_ = Variable::param(Tensor::full({1}, 0.25f));
    std::vector<Variable> enc_params = enc1_->parameters();
    for (const auto &p : enc2_->parameters())
        enc_params.push_back(p);
    enc_params.push_back(preluSlope_);
    optimEnc_ = std::make_unique<nn::Adam>(std::move(enc_params), 1e-3f);

    std::vector<Variable> disc_params = disc1_->parameters();
    for (const auto &p : disc2_->parameters())
        disc_params.push_back(p);
    optimDisc_ =
        std::make_unique<nn::Adam>(std::move(disc_params), 1e-3f);
}

float
Arga::trainIteration()
{
    const int64_t n = data_.graph.numNodes();

    // ARGA ships the whole graph to the GPU every step.
    uploadInput(data_.features, "node_features");
    uploadInput(data_.graph.colIdx(), "edge_index");

    // Negative-edge shuffling for the reconstruction loss runs a
    // device sort over the edge list (ARGA's 6.1% sorting, Fig. 2).
    {
        std::vector<int32_t> edge_perm(data_.graph.numEdges());
        for (size_t i = 0; i < edge_perm.size(); ++i) {
            edge_perm[i] = static_cast<int32_t>(rng_->randint(
                static_cast<uint64_t>(n * n)));
        }
        ops::sortKeys(edge_perm);
    }

    // --- Autoencoder step ---
    Variable x(data_.features);
    // PReLU, as in the ARGA reference (the activation the paper's
    // sparsity discussion calls out).
    Variable h = ag::prelu(enc1_->forward(adj_, adjT_, x), preluSlope_);
    Variable z = enc2_->forward(adj_, adjT_, h);

    // Inner-product decoder over all node pairs.
    Variable logits = ag::gemm(z, z, {.trans_b = true}); // [N, N]
    Variable recon_loss = ag::bceWithLogits(logits, adjDense_);

    // Generator half of the adversarial game: fool the discriminator.
    Variable d_fake =
        disc2_->forward(ag::relu(disc1_->forward(z)));
    Tensor ones_label = Tensor::ones({n, 1});
    Variable gen_loss = ag::bceWithLogits(d_fake, ones_label);

    Variable enc_loss = ag::add(recon_loss, ag::scale(gen_loss, 0.1f));
    if (!cfg_.inferenceOnly) {
        optimEnc_->zeroGrad();
        disc1_->zeroGrad();
        disc2_->zeroGrad();
        enc_loss.backward();
        optimEnc_->step();
    }

    // --- Discriminator step ---
    Tensor prior = Tensor::randn({n, zDim_}, *rng_);
    uploadInput(prior, "gaussian_prior");
    Variable d_real =
        disc2_->forward(ag::relu(disc1_->forward(Variable(prior))));
    Variable d_fake2 = disc2_->forward(
        ag::relu(disc1_->forward(z.detach())));
    Variable disc_loss =
        ag::add(ag::bceWithLogits(d_real, Tensor::ones({n, 1})),
                ag::bceWithLogits(d_fake2, Tensor::zeros({n, 1})));

    if (!cfg_.inferenceOnly) {
        optimDisc_->zeroGrad();
        disc_loss.backward();
        optimDisc_->step();
    }

    return enc_loss.value()(0);
}

int64_t
Arga::iterationsPerEpoch() const
{
    return 1; // full-graph training: one step per epoch
}

double
Arga::parameterBytes() const
{
    return optimEnc_->parameterBytes() + optimDisc_->parameterBytes();
}

void
Arga::visitState(StateVisitor &visitor)
{
    visitor.rng(*rng_);
    visitor.optimizer(*optimEnc_);
    visitor.optimizer(*optimDisc_);
}

} // namespace gnnmark
