#include "models/kgnn.hh"

#include <algorithm>
#include <map>

#include "base/logging.hh"

namespace gnnmark {

SetGraph
buildTwoSets(const Graph &g, const std::vector<int32_t> &node_graph_id)
{
    SetGraph sets;
    // Undirected unique edges u < v, in (u, v) order — grouped by the
    // underlying small graph because batched node ids are contiguous.
    std::map<std::pair<int32_t, int32_t>, int32_t> set_id;
    for (size_t e = 0; e < g.edgeSrc().size(); ++e) {
        int32_t u = g.edgeSrc()[e];
        int32_t v = g.edgeDst()[e];
        if (u >= v)
            continue;
        set_id[{u, v}] = static_cast<int32_t>(sets.memberA.size());
        sets.memberA.push_back(u);
        sets.memberB.push_back(v);
        sets.setGraphId.push_back(node_graph_id[u]);
    }

    // Two 2-sets are adjacent when they share a node.
    std::vector<std::vector<int32_t>> node_sets(g.numNodes());
    for (int64_t s = 0; s < sets.numSets(); ++s) {
        node_sets[sets.memberA[s]].push_back(static_cast<int32_t>(s));
        node_sets[sets.memberB[s]].push_back(static_cast<int32_t>(s));
    }
    std::vector<std::pair<int32_t, int32_t>> edges;
    for (const auto &incident : node_sets) {
        for (size_t i = 0; i < incident.size(); ++i) {
            for (size_t j = i + 1; j < incident.size(); ++j)
                edges.emplace_back(incident[i], incident[j]);
        }
    }
    sets.graph =
        Graph(sets.numSets(), std::move(edges), /*symmetric=*/true);
    return sets;
}

SetGraph
buildThreeSets(const SetGraph &two_sets, int max_per_node)
{
    SetGraph sets;
    // Connected triples arise from pairs of 2-sets sharing a node;
    // capped per node to bound the combinatorial growth.
    const Graph &g2 = two_sets.graph;
    std::vector<std::pair<int32_t, int32_t>> members;
    for (int64_t s = 0; s < g2.numNodes(); ++s) {
        auto [begin, end] = g2.neighbors(s);
        int taken = 0;
        for (const int32_t *p = begin; p != end && taken < max_per_node;
             ++p) {
            if (*p <= s)
                continue;
            members.emplace_back(static_cast<int32_t>(s), *p);
            ++taken;
        }
    }
    for (auto [a, b] : members) {
        sets.memberA.push_back(a);
        sets.memberB.push_back(b);
        sets.setGraphId.push_back(two_sets.setGraphId[a]);
    }

    // 3-sets are adjacent when they share a 2-set.
    std::vector<std::vector<int32_t>> incident(g2.numNodes());
    for (int64_t s = 0; s < sets.numSets(); ++s) {
        incident[sets.memberA[s]].push_back(static_cast<int32_t>(s));
        incident[sets.memberB[s]].push_back(static_cast<int32_t>(s));
    }
    std::vector<std::pair<int32_t, int32_t>> edges;
    for (const auto &list : incident) {
        for (size_t i = 0; i + 1 < list.size(); ++i)
            edges.emplace_back(list[i], list[i + 1]);
    }
    sets.graph =
        Graph(sets.numSets(), std::move(edges), /*symmetric=*/true);
    return sets;
}

namespace {

/** Pool lower-level features into set features (gather + add). */
Variable
poolIntoSets(const Variable &lower, const SetGraph &sets)
{
    Variable a = ag::indexSelectRows(lower, sets.memberA);
    Variable b = ag::indexSelectRows(lower, sets.memberB);
    return ag::add(a, b);
}

/** CSR-style offsets from a sorted graph-id array. */
std::vector<int32_t>
offsetsFromGraphIds(const std::vector<int32_t> &ids, int64_t num_graphs)
{
    std::vector<int32_t> offsets(num_graphs + 1, 0);
    for (int32_t id : ids)
        ++offsets[id + 1];
    for (int64_t g = 0; g < num_graphs; ++g)
        offsets[g + 1] += offsets[g];
    return offsets;
}

} // namespace

KGnn::KGnn(int k) : k_(k)
{
    GNN_ASSERT(k == 2 || k == 3, "KGnn supports k = 2 or 3, got %d", k);
}

std::string
KGnn::name() const
{
    return k_ == 2 ? "KGNNL" : "KGNNH";
}

void
KGnn::setup(const WorkloadConfig &config)
{
    cfg_ = config;
    rng_.emplace(config.seed ^ 0x4b474e4eu); // "KGNN"
    const double s = config.scale;

    const int count = std::max(48, static_cast<int>(384 * s));
    dataset_ = gen::proteins(*rng_, count);

    node1_ = std::make_unique<GcnLayer>(3, hidden_, *rng_);
    node2_ = std::make_unique<GcnLayer>(hidden_, hidden_, *rng_);
    two1_ = std::make_unique<GcnLayer>(hidden_, hidden_, *rng_);
    two2_ = std::make_unique<GcnLayer>(hidden_, hidden_, *rng_);
    if (k_ == 3) {
        three1_ = std::make_unique<GcnLayer>(hidden_, hidden_, *rng_);
        three2_ = std::make_unique<GcnLayer>(hidden_, hidden_, *rng_);
    }
    readout_ = std::make_unique<nn::Linear>(k_ * hidden_, 2, *rng_);

    std::vector<Variable> params;
    for (nn::Module *m : std::initializer_list<nn::Module *>{
             node1_.get(), node2_.get(), two1_.get(), two2_.get()}) {
        for (const auto &p : m->parameters())
            params.push_back(p);
    }
    if (k_ == 3) {
        for (nn::Module *m : std::initializer_list<nn::Module *>{
                 three1_.get(), three2_.get()}) {
            for (const auto &p : m->parameters())
                params.push_back(p);
        }
    }
    for (const auto &p : readout_->parameters())
        params.push_back(p);
    optim_ = std::make_unique<nn::Adam>(std::move(params), 1e-3f);
    cursor_ = 0;
}

float
KGnn::trainIteration()
{
    const int64_t local_batch =
        std::max<int64_t>(1, batch_ / cfg_.worldSize);
    const int64_t n_graphs = static_cast<int64_t>(dataset_.size());
    const int64_t start = cursor_ + cfg_.rank * local_batch;
    cursor_ += batch_;

    std::vector<SmallGraph> chosen;
    chosen.reserve(local_batch);
    for (int64_t i = 0; i < local_batch; ++i)
        chosen.push_back(dataset_[(start + i) % n_graphs]);
    GraphBatch batch = GraphBatch::build(chosen);
    uploadInput(batch.features, "protein_features");

    std::vector<int32_t> node_graph_id(batch.graph.numNodes());
    for (int64_t g = 0; g + 1 < static_cast<int64_t>(
                                    batch.nodeOffsets.size()); ++g) {
        for (int32_t v = batch.nodeOffsets[g];
             v < batch.nodeOffsets[g + 1]; ++v) {
            node_graph_id[v] = static_cast<int32_t>(g);
        }
    }

    // 1-GNN on the node graph.
    SparseMatrix adj1 = batch.graph.gcnNormAdjacency();
    Variable h1 = ag::relu(
        node1_->forward(adj1, adj1, Variable(batch.features)));
    h1 = ag::relu(node2_->forward(adj1, adj1, h1));

    // 2-GNN on connected pairs.
    SetGraph two = buildTwoSets(batch.graph, node_graph_id);
    SparseMatrix adj2 = two.graph.gcnNormAdjacency();
    Variable h2 = poolIntoSets(h1, two);
    h2 = ag::relu(two1_->forward(adj2, adj2, h2));
    h2 = ag::relu(two2_->forward(adj2, adj2, h2));

    const int64_t num_graphs_in_batch = batch.numGraphs();
    Variable pooled = ag::concatCols(
        ag::segmentMeanRows(h1, batch.nodeOffsets),
        ag::segmentMeanRows(
            h2, offsetsFromGraphIds(two.setGraphId,
                                    num_graphs_in_batch)));

    if (k_ == 3) {
        // 3-GNN on connected triples.
        SetGraph three = buildThreeSets(two, /*max_per_node=*/6);
        SparseMatrix adj3 = three.graph.gcnNormAdjacency();
        Variable h3 = poolIntoSets(h2, three);
        h3 = ag::relu(three1_->forward(adj3, adj3, h3));
        h3 = ag::relu(three2_->forward(adj3, adj3, h3));
        pooled = ag::concatCols(
            pooled,
            ag::segmentMeanRows(
                h3, offsetsFromGraphIds(three.setGraphId,
                                        num_graphs_in_batch)));
    }

    Variable logits = readout_->forward(pooled);
    Variable loss = nn::crossEntropy(logits, batch.labels);

    if (!cfg_.inferenceOnly) {
        optim_->zeroGrad();
        loss.backward();
        optim_->step();
    }
    return loss.value()(0);
}

int64_t
KGnn::iterationsPerEpoch() const
{
    return std::max<int64_t>(
        1, static_cast<int64_t>(dataset_.size()) / batch_);
}

double
KGnn::parameterBytes() const
{
    return optim_->parameterBytes();
}

void
KGnn::visitState(StateVisitor &visitor)
{
    visitor.rng(*rng_);
    visitor.scalar(cursor_);
    visitor.optimizer(*optim_);
}

} // namespace gnnmark
