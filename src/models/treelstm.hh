/**
 * @file
 * Tree-LSTM workload (TLSTM): child-sum Tree-LSTM (Tai et al.) for
 * sentiment classification over batched parse trees, following the
 * DGL batching implementation. Execution is a long sequence of small
 * level-wise kernels (gathers, segment sums, tiny GEMMs), giving the
 * suite's lowest arithmetic intensity — the workload that does not
 * benefit from multi-GPU training in the paper.
 */

#ifndef GNNMARK_MODELS_TREELSTM_HH
#define GNNMARK_MODELS_TREELSTM_HH

#include <memory>
#include <optional>

#include "graph/generators.hh"
#include "graph/tree.hh"
#include "models/workload.hh"
#include "nn/layers.hh"
#include "nn/loss.hh"
#include "nn/optim.hh"

namespace gnnmark {

/** The TLSTM workload: batched child-sum Tree-LSTM training. */
class TreeLstm : public Workload
{
  public:
    TreeLstm() = default;

    std::string name() const override { return "TLSTM"; }
    std::string modelName() const override { return "Tree-LSTM"; }
    std::string framework() const override { return "DGL"; }
    std::string domain() const override
    {
        return "Sentiment classification";
    }
    std::string datasetName() const override { return "SST (synthetic)"; }
    std::string graphType() const override { return "Tree (batched)"; }

    void setup(const WorkloadConfig &config) override;
    float trainIteration() override;
    int64_t iterationsPerEpoch() const override;
    double parameterBytes() const override;
    bool supportsCheckpoint() const override { return true; }
    void visitState(StateVisitor &visitor) override;

  private:
    WorkloadConfig cfg_;
    std::optional<Rng> rng_;

    std::vector<Tree> dataset_;
    int64_t vocab_ = 600;
    int64_t hidden_ = 90;
    int numClasses_ = 5;
    int64_t batch_ = 48;

    std::unique_ptr<nn::Embedding> emb_;
    // Child-sum cell projections (unfused, as in the DGL model).
    std::unique_ptr<nn::Linear> wIou_; ///< leaf input -> 3H
    std::unique_ptr<nn::Linear> uIou_; ///< child-sum h -> 3H
    std::unique_ptr<nn::Linear> uF_;   ///< child h -> H (forget gates)
    std::unique_ptr<nn::Linear> cls_;
    std::unique_ptr<nn::Adam> optim_;

    int64_t cursor_ = 0;
};

} // namespace gnnmark

#endif // GNNMARK_MODELS_TREELSTM_HH
