/**
 * @file
 * k-GNN workload (KGNNL / KGNNH): hierarchical higher-order GNNs after
 * Morris et al., classifying protein-like graphs. The 1-GNN runs on
 * nodes; the 2-GNN on connected node pairs; KGNNH adds a 3-GNN on
 * connected triples. Moving up the hierarchy multiplies the
 * index-manipulation (gather/scatter/index-select) work, which is why
 * the paper includes both variants.
 */

#ifndef GNNMARK_MODELS_KGNN_HH
#define GNNMARK_MODELS_KGNN_HH

#include <memory>
#include <optional>

#include "graph/batch.hh"
#include "graph/generators.hh"
#include "models/gnn_layers.hh"
#include "models/workload.hh"
#include "nn/loss.hh"
#include "nn/optim.hh"

namespace gnnmark {

/** A k-set graph derived from a lower-order graph. */
struct SetGraph
{
    /** For each set, the ids of its two lower-level constituents. */
    std::vector<int32_t> memberA;
    std::vector<int32_t> memberB;
    /** Which underlying small graph each set belongs to. */
    std::vector<int32_t> setGraphId;
    Graph graph; ///< adjacency between sets (shared-constituent)

    int64_t numSets() const
    {
        return static_cast<int64_t>(memberA.size());
    }
};

/** Build the connected 2-sets (edges) of `g`, with graph membership. */
SetGraph buildTwoSets(const Graph &g,
                      const std::vector<int32_t> &node_graph_id);

/** Build connected 3-sets (paths of two incident 2-sets), capped. */
SetGraph buildThreeSets(const SetGraph &two_sets, int max_per_node);

/** The KGNNL/KGNNH workload: hierarchical k-GNN training. */
class KGnn : public Workload
{
  public:
    /** @param k 2 for KGNNL, 3 for KGNNH. */
    explicit KGnn(int k);

    std::string name() const override;
    std::string modelName() const override { return "k-GNN"; }
    std::string framework() const override { return "PyG"; }
    std::string domain() const override
    {
        return "Protein classification";
    }
    std::string datasetName() const override
    {
        return "PROTEINS (synthetic)";
    }
    std::string graphType() const override
    {
        return "Homogeneous (batched)";
    }

    void setup(const WorkloadConfig &config) override;
    float trainIteration() override;
    int64_t iterationsPerEpoch() const override;
    double parameterBytes() const override;
    bool supportsCheckpoint() const override { return true; }
    void visitState(StateVisitor &visitor) override;

  private:
    int k_;
    WorkloadConfig cfg_;
    std::optional<Rng> rng_;

    std::vector<SmallGraph> dataset_;
    int64_t hidden_ = 48;
    int64_t batch_ = 24;

    std::unique_ptr<GcnLayer> node1_, node2_;
    std::unique_ptr<GcnLayer> two1_, two2_;
    std::unique_ptr<GcnLayer> three1_, three2_;
    std::unique_ptr<nn::Linear> readout_;
    std::unique_ptr<nn::Adam> optim_;

    int64_t cursor_ = 0;
};

} // namespace gnnmark

#endif // GNNMARK_MODELS_KGNN_HH
