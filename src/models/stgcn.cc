#include "models/stgcn.hh"

#include <cmath>

#include "base/logging.hh"
#include "graph/graph.hh"

namespace gnnmark {

namespace {

/** Kaiming-ish init for a conv filter [K, C, R, S]. */
Tensor
convInit(int64_t k, int64_t c, int64_t r, int64_t s, Rng &rng)
{
    const float std_dev =
        std::sqrt(2.0f / static_cast<float>(c * r * s));
    return Tensor::randn({k, c, r, s}, rng, std_dev);
}

/**
 * Apply the (sparse) graph aggregation along the node axis of a
 * [B, C, T, N] tensor via one large SpMM over [N, B*C*T].
 */
Variable
spatialAggregate(const Variable &x, const SparseMatrix &adj,
                 const SparseMatrix &adj_t)
{
    const auto &shape = x.value().shape();
    const int64_t rows = shape[0] * shape[1] * shape[2];
    const int64_t n = shape[3];
    Variable flat = ag::reshape(x, {rows, n});
    Variable nodes_major = ag::transpose2d(flat);
    Variable agg = ag::spmm(adj, adj_t, nodes_major);
    return ag::reshape(ag::transpose2d(agg), shape);
}

} // namespace

StConvBlock::StConvBlock(int64_t c_in, int64_t c_mid, int64_t c_out,
                         Rng &rng)
    : convA1_(addParam(convInit(c_mid, c_in, 3, 1, rng))),
      convB1_(addParam(convInit(c_mid, c_in, 3, 1, rng))),
      theta_(addParam(convInit(c_mid, c_mid, 1, 1, rng))),
      convA2_(addParam(convInit(c_out, c_mid, 3, 1, rng))),
      convB2_(addParam(convInit(c_out, c_mid, 3, 1, rng)))
{
}

Variable
StConvBlock::temporalGlu(const Variable &x, const Variable &wa,
                         const Variable &wb) const
{
    return nn::glu(ag::conv2d(x, wa), ag::conv2d(x, wb));
}

Variable
StConvBlock::forward(const Variable &x, const SparseMatrix &adj,
                     const SparseMatrix &adj_t) const
{
    Variable t1 = temporalGlu(x, convA1_, convB1_);
    Variable mixed = ag::conv2d(t1, theta_);
    Variable s = ag::relu(spatialAggregate(mixed, adj, adj_t));
    return temporalGlu(s, convA2_, convB2_);
}

void
Stgcn::setup(const WorkloadConfig &config)
{
    cfg_ = config;
    rng_.emplace(config.seed ^ 0x53544743u); // "STGC"
    const double s = config.scale;

    const int64_t sensors = std::max<int64_t>(32, 207 * s);
    const int64_t steps = std::max<int64_t>(64, 600 * s);
    data_ = gen::traffic(*rng_, sensors, steps);
    adj_ = data_.sensors.gcnNormAdjacency();
    adjT_ = adj_; // symmetric by construction
    adj_.csr().validate();

    block1_ = std::make_unique<StConvBlock>(1, 12, 24, *rng_);
    block2_ = std::make_unique<StConvBlock>(24, 24, 36, *rng_);
    // After two blocks the window shrinks 12 -> 4; the output conv
    // collapses the remaining time axis to one step.
    outConv_ = Variable::param(convInit(1, 36, window_ - 8, 1, *rng_));

    std::vector<Variable> params = block1_->parameters();
    for (const auto &p : block2_->parameters())
        params.push_back(p);
    params.push_back(outConv_);
    optim_ = std::make_unique<nn::Adam>(std::move(params), 1e-3f);
}

float
Stgcn::trainIteration()
{
    const int64_t n = data_.sensors.numNodes();
    const int64_t total_steps = data_.series.size(0);

    // Under DDP the global batch is sharded across replicas.
    const int64_t local_batch =
        std::max<int64_t>(1, batch_ / cfg_.worldSize);

    Tensor input = Tensor::zeros({local_batch, 1, window_, n});
    Tensor target = Tensor::zeros({local_batch, n});
    for (int64_t b = 0; b < local_batch; ++b) {
        const int64_t t0 = static_cast<int64_t>(rng_->randint(
            static_cast<uint64_t>(total_steps - window_ - 1)));
        for (int64_t t = 0; t < window_; ++t) {
            for (int64_t v = 0; v < n; ++v)
                input(b, 0, t, v) = data_.series(t0 + t, v);
        }
        for (int64_t v = 0; v < n; ++v)
            target(b, v) = data_.series(t0 + window_, v);
    }
    uploadInput(input, "speed_window");
    uploadInput(target, "speed_target");

    Variable x(input);
    Variable h1 = block1_->forward(x, adj_, adjT_);
    Variable h2 = block2_->forward(h1, adj_, adjT_);
    Variable out = ag::conv2d(h2, outConv_); // [B, 1, 1, N]
    Variable pred = ag::reshape(out, {local_batch, n});

    Variable loss = ag::mseLoss(pred, Variable(target));
    if (!cfg_.inferenceOnly) {
        optim_->zeroGrad();
        loss.backward();
        optim_->step();
    }
    return loss.value()(0);
}

int64_t
Stgcn::iterationsPerEpoch() const
{
    // One pass over the time series in non-overlapping windows.
    return std::max<int64_t>(
        1, data_.series.size(0) / (window_ * batch_));
}

double
Stgcn::parameterBytes() const
{
    return optim_->parameterBytes();
}

void
Stgcn::visitState(StateVisitor &visitor)
{
    visitor.rng(*rng_);
    visitor.optimizer(*optim_);
}

} // namespace gnnmark
