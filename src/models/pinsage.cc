#include "models/pinsage.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "base/logging.hh"
#include "nn/loss.hh"
#include "ops/elementwise.hh"
#include "ops/index.hh"
#include "ops/reduce.hh"
#include "ops/sort.hh"

namespace gnnmark {

namespace {

/** Position of each query id within a sorted unique id list. */
std::vector<int32_t>
positionsIn(const std::vector<int32_t> &sorted_ids,
            const std::vector<int32_t> &queries)
{
    std::vector<int32_t> out;
    out.reserve(queries.size());
    for (int32_t q : queries) {
        auto it = std::lower_bound(sorted_ids.begin(), sorted_ids.end(),
                                   q);
        GNN_ASSERT(it != sorted_ids.end() && *it == q,
                   "id %d missing from unique list", q);
        out.push_back(static_cast<int32_t>(it - sorted_ids.begin()));
    }
    return out;
}

} // namespace

PinSage::PinSage(PinSageDataset dataset) : dataset_(dataset)
{
}

std::string
PinSage::name() const
{
    return dataset_ == PinSageDataset::MVL ? "PSAGE-MVL" : "PSAGE-NWP";
}

std::string
PinSage::datasetName() const
{
    return dataset_ == PinSageDataset::MVL ? "MovieLens (synthetic)"
                                           : "Nowplaying (synthetic)";
}

void
PinSage::setup(const WorkloadConfig &config)
{
    cfg_ = config;
    rng_.emplace(config.seed ^ 0x50534147u); // "PSAG"
    const double s = config.scale;

    // MVL: narrow, moderately sparse features. NWP: 10x wider and
    // denser (the paper's 22% vs 11% zero fractions).
    const bool mvl = dataset_ == PinSageDataset::MVL;
    const int64_t users = std::max<int64_t>(64, (mvl ? 900 : 1200) * s);
    const int64_t items = std::max<int64_t>(64, (mvl ? 700 : 1000) * s);
    const int64_t clicks = std::max<int64_t>(512, (mvl ? 14000 : 20000) * s);
    const int64_t fdim = mvl ? 64 : 640;
    const double zero_frac = mvl ? 0.22 : 0.11;

    data_ = gen::bipartiteRecsys(*rng_, users, items, clicks, fdim,
                                 zero_frac);
    itemToUser_ = data_.graph.relationAdjList(data_.relItemUser);
    userToItem_ = data_.graph.relationAdjList(data_.relUserItem);
    sampler_ = std::make_unique<RandomWalkSampler>(
        itemToUser_, userToItem_, /*walks=*/8, /*walk_length=*/2,
        /*top_t=*/6);

    proj_ = std::make_unique<nn::Linear>(fdim, hidden_, *rng_);
    sage1_ = std::make_unique<SageLayer>(hidden_, hidden_, *rng_);
    sage2_ = std::make_unique<SageLayer>(hidden_, hidden_, *rng_);

    std::vector<Variable> params = proj_->parameters();
    for (const auto &p : sage1_->parameters())
        params.push_back(p);
    for (const auto &p : sage2_->parameters())
        params.push_back(p);
    optim_ = std::make_unique<nn::Adam>(std::move(params), 1e-3f);
    cursor_ = 0;
}

int32_t
PinSage::samplePositive(int32_t item)
{
    const auto &users = itemToUser_[item];
    if (users.empty())
        return item;
    const int32_t user = users[rng_->randint(users.size())];
    const auto &items = userToItem_[user];
    return items[rng_->randint(items.size())];
}

float
PinSage::trainIteration()
{
    // The DGL PinSAGE batch sampler is not DDP-aware: every replica
    // draws the full batch (the replication pathology of Fig. 9).
    const int64_t bsz = batch_;
    std::vector<int32_t> batch(bsz), pos(bsz), neg(bsz);
    for (int64_t i = 0; i < bsz; ++i) {
        batch[i] = static_cast<int32_t>((cursor_ + i) % data_.items);
        pos[i] = samplePositive(batch[i]);
        neg[i] = static_cast<int32_t>(rng_->randint(
            static_cast<uint64_t>(data_.items)));
    }
    cursor_ += bsz;

    // Compact the id space on the device: DGL's to_block() performs
    // sorted unique + relabel, the source of PSAGE's sort time.
    std::vector<int32_t> all_ids;
    all_ids.reserve(3 * bsz);
    all_ids.insert(all_ids.end(), batch.begin(), batch.end());
    all_ids.insert(all_ids.end(), pos.begin(), pos.end());
    all_ids.insert(all_ids.end(), neg.begin(), neg.end());
    std::vector<int32_t> seeds = ops::sortedUnique(all_ids);

    // Two-layer sampled computation graph, built outside-in.
    SampledBlock outer = sampler_->sample(seeds, *rng_);
    SampledBlock inner = sampler_->sample(outer.srcNodes, *rng_);

    // Block construction (DGL to_block): every block compacts its
    // node space with a sorted unique and relabels both endpoint
    // arrays with sorted key/value passes — the source of PSAGE's
    // sorting time (20.7% on MVL in the paper's Fig. 2).
    for (const SampledBlock *block : {&inner, &outer}) {
        std::vector<int32_t> endpoint_ids;
        endpoint_ids.reserve(block->neighbors.size() +
                             block->dstNodes.size());
        for (int32_t p : block->neighbors)
            endpoint_ids.push_back(block->srcNodes[p]);
        endpoint_ids.insert(endpoint_ids.end(), block->dstNodes.begin(),
                            block->dstNodes.end());
        ops::sortedUnique(endpoint_ids);

        std::vector<int32_t> edge_order(block->neighbors.size());
        for (size_t i = 0; i < edge_order.size(); ++i)
            edge_order[i] = static_cast<int32_t>(i);
        std::vector<int32_t> edge_keys = block->neighbors;
        ops::sortKeyValue(edge_keys, edge_order);
    }

    // Host-side feature slicing + upload of the batch's features: the
    // CPU-to-GPU copies whose sparsity Fig. 7 characterises.
    const int64_t fdim = data_.itemFeatures.size(1);
    Tensor raw = Tensor::zeros({static_cast<int64_t>(inner.srcNodes.size()), fdim});
    for (size_t i = 0; i < inner.srcNodes.size(); ++i) {
        const float *src =
            data_.itemFeatures.data() +
            static_cast<int64_t>(inner.srcNodes[i]) * fdim;
        std::copy(src, src + fdim, raw.data() + i * fdim);
    }
    uploadInput(raw, "item_features");
    uploadInput(inner.neighbors, "block_inner");
    uploadInput(outer.neighbors, "block_outer");

    // Feature preprocessing on device: standardise, l2-normalise and
    // dropout the raw features — element-wise passes whose cost scales
    // with the feature width (why PSAGE-NWP is element-wise-dominated
    // at 10x the feature dimension, paper Fig. 2).
    Tensor mean_shifted = ops::addScalar(raw, -0.01f);
    Tensor squared = ops::mul(mean_shifted, mean_shifted);
    Tensor norms = ops::reduceSumRows(squared);
    Tensor inv = Tensor::zeros({norms.size(0)});
    for (int64_t i = 0; i < norms.size(0); ++i)
        inv(i) = 1.0f / std::sqrt(norms(i) + 1e-6f);
    Tensor normalized = ops::mulRowsBy(mean_shifted, inv);
    Tensor clamped = ops::relu(ops::addScalar(normalized, 4.0f));
    Tensor rescaled = ops::addScalar(ops::scale(clamped, 0.25f), -1.0f);
    Tensor dropped = ops::dropout(rescaled, 0.1f, *rng_);

    Variable x(dropped);
    Variable h0 = ag::relu(proj_->forward(x));

    std::vector<int32_t> inner_dst =
        positionsIn(inner.srcNodes, inner.dstNodes);
    Variable h1 = sage1_->forward(inner, h0, inner_dst);

    std::vector<int32_t> outer_dst =
        positionsIn(outer.srcNodes, outer.dstNodes);
    // h1 rows are inner.dstNodes == outer.srcNodes, in order.
    Variable h2 = sage2_->forward(outer, h1, outer_dst);

    // h2 rows follow `seeds`; pull out batch/pos/neg embeddings.
    Variable eb = ag::indexSelectRows(h2, positionsIn(seeds, batch));
    Variable ep = ag::indexSelectRows(h2, positionsIn(seeds, pos));
    Variable en = ag::indexSelectRows(h2, positionsIn(seeds, neg));

    const float dim_scale = static_cast<float>(hidden_);
    Variable pos_score =
        ag::scale(ag::meanRows(ag::mul(eb, ep)), dim_scale);
    Variable neg_score =
        ag::scale(ag::meanRows(ag::mul(eb, en)), dim_scale);
    Variable loss = nn::maxMarginLoss(pos_score, neg_score, 1.0f);

    if (!cfg_.inferenceOnly) {
        optim_->zeroGrad();
        loss.backward();
        optim_->step();
    }
    return loss.value()(0);
}

int64_t
PinSage::iterationsPerEpoch() const
{
    return std::max<int64_t>(1, data_.items / batch_);
}

double
PinSage::parameterBytes() const
{
    return optim_->parameterBytes();
}

void
PinSage::visitState(StateVisitor &visitor)
{
    visitor.rng(*rng_);
    visitor.scalar(cursor_);
    visitor.optimizer(*optim_);
}

} // namespace gnnmark
