#include "models/gnn_layers.hh"

#include "base/logging.hh"

namespace gnnmark {

GcnLayer::GcnLayer(int64_t in, int64_t out, Rng &rng)
    : linear_(in, out, rng)
{
    addChild(&linear_);
}

Variable
GcnLayer::forward(const SparseMatrix &adj, const SparseMatrix &adj_t,
                  const Variable &x) const
{
    return ag::spmm(adj, adj_t, linear_.forward(x));
}

SageLayer::SageLayer(int64_t in, int64_t out, Rng &rng)
    : self_(in, out, rng), neigh_(in, out, rng)
{
    addChild(&self_);
    addChild(&neigh_);
}

Variable
SageLayer::forward(const SampledBlock &block, const Variable &src_feats,
                   const std::vector<int32_t> &dst_index) const
{
    // Gather neighbour features per edge, weight them, segment-sum
    // per destination: the gather/scatter phase of aggregation.
    Variable msgs = ag::gatherRows(src_feats, block.neighbors);
    Tensor w = Tensor::zeros({static_cast<int64_t>(block.weights.size())});
    std::copy(block.weights.begin(), block.weights.end(), w.data());
    Variable weighted = ag::mulRowsByConst(msgs, w);
    Variable agg = ag::segmentSumRows(weighted, block.offsets);

    Variable self_feats = ag::gatherRows(src_feats, dst_index);
    return ag::relu(ag::add(self_.forward(self_feats),
                            neigh_.forward(agg)));
}

} // namespace gnnmark
