#include "models/treelstm.hh"

#include <algorithm>

#include "base/logging.hh"

namespace gnnmark {

void
TreeLstm::setup(const WorkloadConfig &config)
{
    cfg_ = config;
    rng_.emplace(config.seed ^ 0x544c5354u); // "TLST"
    const double s = config.scale;

    const int count = std::max(64, static_cast<int>(768 * s));
    dataset_ = gen::sentimentTrees(*rng_, count, static_cast<int>(vocab_),
                                   /*min_leaves=*/4, /*max_leaves=*/18,
                                   numClasses_);

    emb_ = std::make_unique<nn::Embedding>(vocab_, hidden_, *rng_);
    wIou_ = std::make_unique<nn::Linear>(hidden_, 3 * hidden_, *rng_);
    uIou_ = std::make_unique<nn::Linear>(hidden_, 3 * hidden_, *rng_,
                                         /*bias=*/false);
    uF_ = std::make_unique<nn::Linear>(hidden_, hidden_, *rng_);
    cls_ = std::make_unique<nn::Linear>(hidden_, numClasses_, *rng_);

    std::vector<Variable> params;
    for (nn::Module *m : std::initializer_list<nn::Module *>{
             emb_.get(), wIou_.get(), uIou_.get(), uF_.get(),
             cls_.get()}) {
        for (const auto &p : m->parameters())
            params.push_back(p);
    }
    optim_ = std::make_unique<nn::Adam>(std::move(params), 1e-3f);
    cursor_ = 0;
}

float
TreeLstm::trainIteration()
{
    const int64_t local_batch =
        std::max<int64_t>(1, batch_ / cfg_.worldSize);
    const int64_t n_trees = static_cast<int64_t>(dataset_.size());
    const int64_t start = cursor_ + cfg_.rank * local_batch;
    cursor_ += batch_;

    std::vector<Tree> chosen;
    chosen.reserve(local_batch);
    for (int64_t i = 0; i < local_batch; ++i)
        chosen.push_back(dataset_[(start + i) % n_trees]);
    TreeBatch batch = TreeBatch::build(chosen);
    uploadInput(batch.tokens, "leaf_tokens");
    // DGL ships a leaf mask and the batched level structure alongside
    // the tokens; internal-node entries are zero.
    Tensor leaf_mask = Tensor::zeros({batch.totalNodes});
    for (int64_t v = 0; v < batch.totalNodes; ++v)
        leaf_mask(v) = batch.tokens[v] >= 0 ? 1.0f : 0.0f;
    uploadInput(leaf_mask, "leaf_mask");
    for (const auto &level : batch.levels)
        uploadInput(level.childOffsets, "level_offsets");

    const int64_t total = batch.totalNodes;
    // Node states assembled level by level; levels are disjoint, so
    // scatter-sum into the running state acts as a write.
    Variable h_all(Tensor::zeros({total, hidden_}));
    Variable c_all(Tensor::zeros({total, hidden_}));

    for (size_t li = 0; li < batch.levels.size(); ++li) {
        const TreeBatch::Level &level = batch.levels[li];
        const int64_t n = static_cast<int64_t>(level.nodes.size());

        Variable iou;
        Variable fc_sum; // sum of gated child cell states
        if (li == 0) {
            // Leaves: token embedding drives the gates.
            std::vector<int32_t> tokens(n);
            for (int64_t i = 0; i < n; ++i)
                tokens[i] = batch.tokens[level.nodes[i]];
            iou = wIou_->forward(emb_->forward(tokens));
        } else {
            // Internal nodes: child-sum aggregation.
            Variable h_kids = ag::gatherRows(h_all, level.childIds);
            Variable c_kids = ag::gatherRows(c_all, level.childIds);
            Variable h_sum =
                ag::segmentSumRows(h_kids, level.childOffsets);
            iou = uIou_->forward(h_sum);
            Variable f = ag::sigmoid(uF_->forward(h_kids));
            fc_sum = ag::segmentSumRows(ag::mul(f, c_kids),
                                        level.childOffsets);
        }

        Variable i = ag::sigmoid(ag::sliceCols(iou, 0, hidden_));
        Variable o =
            ag::sigmoid(ag::sliceCols(iou, hidden_, 2 * hidden_));
        Variable u =
            ag::tanh(ag::sliceCols(iou, 2 * hidden_, 3 * hidden_));

        Variable c = ag::mul(i, u);
        if (fc_sum.defined())
            c = ag::add(c, fc_sum);
        Variable h = ag::mul(o, ag::tanh(c));

        h_all = ag::add(h_all,
                        ag::scatterSumRows(h, level.nodes, total));
        c_all = ag::add(c_all,
                        ag::scatterSumRows(c, level.nodes, total));
    }

    Variable root_h = ag::indexSelectRows(h_all, batch.roots);
    Variable logits = cls_->forward(root_h);
    Variable loss = nn::crossEntropy(logits, batch.labels);

    if (!cfg_.inferenceOnly) {
        optim_->zeroGrad();
        loss.backward();
        optim_->step();
    }
    return loss.value()(0);
}

int64_t
TreeLstm::iterationsPerEpoch() const
{
    return std::max<int64_t>(
        1, static_cast<int64_t>(dataset_.size()) / batch_);
}

double
TreeLstm::parameterBytes() const
{
    return optim_->parameterBytes();
}

void
TreeLstm::visitState(StateVisitor &visitor)
{
    visitor.rng(*rng_);
    visitor.scalar(cursor_);
    visitor.optimizer(*optim_);
}

} // namespace gnnmark
