# Empty dependencies file for gnnmark.
# This may be replaced when dependencies are built.
