file(REMOVE_RECURSE
  "CMakeFiles/gnnmark.dir/gnnmark.cpp.o"
  "CMakeFiles/gnnmark.dir/gnnmark.cpp.o.d"
  "gnnmark"
  "gnnmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
