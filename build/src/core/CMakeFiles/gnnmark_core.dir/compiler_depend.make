# Empty compiler generated dependencies file for gnnmark_core.
# This may be replaced when dependencies are built.
