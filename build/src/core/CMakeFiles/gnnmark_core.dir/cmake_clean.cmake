file(REMOVE_RECURSE
  "CMakeFiles/gnnmark_core.dir/characterization.cc.o"
  "CMakeFiles/gnnmark_core.dir/characterization.cc.o.d"
  "CMakeFiles/gnnmark_core.dir/reports.cc.o"
  "CMakeFiles/gnnmark_core.dir/reports.cc.o.d"
  "CMakeFiles/gnnmark_core.dir/suite.cc.o"
  "CMakeFiles/gnnmark_core.dir/suite.cc.o.d"
  "CMakeFiles/gnnmark_core.dir/time_to_train.cc.o"
  "CMakeFiles/gnnmark_core.dir/time_to_train.cc.o.d"
  "libgnnmark_core.a"
  "libgnnmark_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnmark_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
