file(REMOVE_RECURSE
  "libgnnmark_core.a"
)
