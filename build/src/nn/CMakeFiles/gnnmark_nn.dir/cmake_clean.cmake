file(REMOVE_RECURSE
  "CMakeFiles/gnnmark_nn.dir/layers.cc.o"
  "CMakeFiles/gnnmark_nn.dir/layers.cc.o.d"
  "CMakeFiles/gnnmark_nn.dir/loss.cc.o"
  "CMakeFiles/gnnmark_nn.dir/loss.cc.o.d"
  "CMakeFiles/gnnmark_nn.dir/module.cc.o"
  "CMakeFiles/gnnmark_nn.dir/module.cc.o.d"
  "CMakeFiles/gnnmark_nn.dir/optim.cc.o"
  "CMakeFiles/gnnmark_nn.dir/optim.cc.o.d"
  "libgnnmark_nn.a"
  "libgnnmark_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnmark_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
