file(REMOVE_RECURSE
  "libgnnmark_nn.a"
)
