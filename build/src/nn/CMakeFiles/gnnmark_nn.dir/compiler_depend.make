# Empty compiler generated dependencies file for gnnmark_nn.
# This may be replaced when dependencies are built.
