# Empty compiler generated dependencies file for gnnmark_profiler.
# This may be replaced when dependencies are built.
