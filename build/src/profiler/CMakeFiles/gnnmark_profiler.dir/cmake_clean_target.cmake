file(REMOVE_RECURSE
  "libgnnmark_profiler.a"
)
