file(REMOVE_RECURSE
  "CMakeFiles/gnnmark_profiler.dir/profiler.cc.o"
  "CMakeFiles/gnnmark_profiler.dir/profiler.cc.o.d"
  "libgnnmark_profiler.a"
  "libgnnmark_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnmark_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
