file(REMOVE_RECURSE
  "CMakeFiles/gnnmark_graph.dir/batch.cc.o"
  "CMakeFiles/gnnmark_graph.dir/batch.cc.o.d"
  "CMakeFiles/gnnmark_graph.dir/generators.cc.o"
  "CMakeFiles/gnnmark_graph.dir/generators.cc.o.d"
  "CMakeFiles/gnnmark_graph.dir/graph.cc.o"
  "CMakeFiles/gnnmark_graph.dir/graph.cc.o.d"
  "CMakeFiles/gnnmark_graph.dir/hetero_graph.cc.o"
  "CMakeFiles/gnnmark_graph.dir/hetero_graph.cc.o.d"
  "CMakeFiles/gnnmark_graph.dir/samplers.cc.o"
  "CMakeFiles/gnnmark_graph.dir/samplers.cc.o.d"
  "CMakeFiles/gnnmark_graph.dir/tree.cc.o"
  "CMakeFiles/gnnmark_graph.dir/tree.cc.o.d"
  "libgnnmark_graph.a"
  "libgnnmark_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnmark_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
