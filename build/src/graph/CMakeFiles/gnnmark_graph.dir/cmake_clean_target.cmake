file(REMOVE_RECURSE
  "libgnnmark_graph.a"
)
