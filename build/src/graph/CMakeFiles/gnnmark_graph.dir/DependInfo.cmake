
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/batch.cc" "src/graph/CMakeFiles/gnnmark_graph.dir/batch.cc.o" "gcc" "src/graph/CMakeFiles/gnnmark_graph.dir/batch.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/graph/CMakeFiles/gnnmark_graph.dir/generators.cc.o" "gcc" "src/graph/CMakeFiles/gnnmark_graph.dir/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/gnnmark_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/gnnmark_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/hetero_graph.cc" "src/graph/CMakeFiles/gnnmark_graph.dir/hetero_graph.cc.o" "gcc" "src/graph/CMakeFiles/gnnmark_graph.dir/hetero_graph.cc.o.d"
  "/root/repo/src/graph/samplers.cc" "src/graph/CMakeFiles/gnnmark_graph.dir/samplers.cc.o" "gcc" "src/graph/CMakeFiles/gnnmark_graph.dir/samplers.cc.o.d"
  "/root/repo/src/graph/tree.cc" "src/graph/CMakeFiles/gnnmark_graph.dir/tree.cc.o" "gcc" "src/graph/CMakeFiles/gnnmark_graph.dir/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/gnnmark_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/gnnmark_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
