# Empty compiler generated dependencies file for gnnmark_graph.
# This may be replaced when dependencies are built.
