file(REMOVE_RECURSE
  "CMakeFiles/gnnmark_tensor.dir/csr.cc.o"
  "CMakeFiles/gnnmark_tensor.dir/csr.cc.o.d"
  "CMakeFiles/gnnmark_tensor.dir/tensor.cc.o"
  "CMakeFiles/gnnmark_tensor.dir/tensor.cc.o.d"
  "libgnnmark_tensor.a"
  "libgnnmark_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnmark_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
