# Empty dependencies file for gnnmark_tensor.
# This may be replaced when dependencies are built.
