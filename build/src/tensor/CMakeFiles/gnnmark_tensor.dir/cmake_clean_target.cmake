file(REMOVE_RECURSE
  "libgnnmark_tensor.a"
)
