# Empty compiler generated dependencies file for gnnmark_models.
# This may be replaced when dependencies are built.
