file(REMOVE_RECURSE
  "CMakeFiles/gnnmark_models.dir/arga.cc.o"
  "CMakeFiles/gnnmark_models.dir/arga.cc.o.d"
  "CMakeFiles/gnnmark_models.dir/deepgcn.cc.o"
  "CMakeFiles/gnnmark_models.dir/deepgcn.cc.o.d"
  "CMakeFiles/gnnmark_models.dir/gnn_layers.cc.o"
  "CMakeFiles/gnnmark_models.dir/gnn_layers.cc.o.d"
  "CMakeFiles/gnnmark_models.dir/graphwriter.cc.o"
  "CMakeFiles/gnnmark_models.dir/graphwriter.cc.o.d"
  "CMakeFiles/gnnmark_models.dir/kgnn.cc.o"
  "CMakeFiles/gnnmark_models.dir/kgnn.cc.o.d"
  "CMakeFiles/gnnmark_models.dir/pinsage.cc.o"
  "CMakeFiles/gnnmark_models.dir/pinsage.cc.o.d"
  "CMakeFiles/gnnmark_models.dir/stgcn.cc.o"
  "CMakeFiles/gnnmark_models.dir/stgcn.cc.o.d"
  "CMakeFiles/gnnmark_models.dir/treelstm.cc.o"
  "CMakeFiles/gnnmark_models.dir/treelstm.cc.o.d"
  "CMakeFiles/gnnmark_models.dir/workload.cc.o"
  "CMakeFiles/gnnmark_models.dir/workload.cc.o.d"
  "libgnnmark_models.a"
  "libgnnmark_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnmark_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
