
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/arga.cc" "src/models/CMakeFiles/gnnmark_models.dir/arga.cc.o" "gcc" "src/models/CMakeFiles/gnnmark_models.dir/arga.cc.o.d"
  "/root/repo/src/models/deepgcn.cc" "src/models/CMakeFiles/gnnmark_models.dir/deepgcn.cc.o" "gcc" "src/models/CMakeFiles/gnnmark_models.dir/deepgcn.cc.o.d"
  "/root/repo/src/models/gnn_layers.cc" "src/models/CMakeFiles/gnnmark_models.dir/gnn_layers.cc.o" "gcc" "src/models/CMakeFiles/gnnmark_models.dir/gnn_layers.cc.o.d"
  "/root/repo/src/models/graphwriter.cc" "src/models/CMakeFiles/gnnmark_models.dir/graphwriter.cc.o" "gcc" "src/models/CMakeFiles/gnnmark_models.dir/graphwriter.cc.o.d"
  "/root/repo/src/models/kgnn.cc" "src/models/CMakeFiles/gnnmark_models.dir/kgnn.cc.o" "gcc" "src/models/CMakeFiles/gnnmark_models.dir/kgnn.cc.o.d"
  "/root/repo/src/models/pinsage.cc" "src/models/CMakeFiles/gnnmark_models.dir/pinsage.cc.o" "gcc" "src/models/CMakeFiles/gnnmark_models.dir/pinsage.cc.o.d"
  "/root/repo/src/models/stgcn.cc" "src/models/CMakeFiles/gnnmark_models.dir/stgcn.cc.o" "gcc" "src/models/CMakeFiles/gnnmark_models.dir/stgcn.cc.o.d"
  "/root/repo/src/models/treelstm.cc" "src/models/CMakeFiles/gnnmark_models.dir/treelstm.cc.o" "gcc" "src/models/CMakeFiles/gnnmark_models.dir/treelstm.cc.o.d"
  "/root/repo/src/models/workload.cc" "src/models/CMakeFiles/gnnmark_models.dir/workload.cc.o" "gcc" "src/models/CMakeFiles/gnnmark_models.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/gnnmark_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gnnmark_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/gnnmark_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gnnmark_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/gnnmark_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/gnnmark_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
