file(REMOVE_RECURSE
  "libgnnmark_models.a"
)
