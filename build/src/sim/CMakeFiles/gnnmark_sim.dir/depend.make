# Empty dependencies file for gnnmark_sim.
# This may be replaced when dependencies are built.
