file(REMOVE_RECURSE
  "CMakeFiles/gnnmark_sim.dir/cache_model.cc.o"
  "CMakeFiles/gnnmark_sim.dir/cache_model.cc.o.d"
  "CMakeFiles/gnnmark_sim.dir/gpu_config.cc.o"
  "CMakeFiles/gnnmark_sim.dir/gpu_config.cc.o.d"
  "CMakeFiles/gnnmark_sim.dir/gpu_device.cc.o"
  "CMakeFiles/gnnmark_sim.dir/gpu_device.cc.o.d"
  "CMakeFiles/gnnmark_sim.dir/interconnect.cc.o"
  "CMakeFiles/gnnmark_sim.dir/interconnect.cc.o.d"
  "CMakeFiles/gnnmark_sim.dir/op_class.cc.o"
  "CMakeFiles/gnnmark_sim.dir/op_class.cc.o.d"
  "CMakeFiles/gnnmark_sim.dir/stall.cc.o"
  "CMakeFiles/gnnmark_sim.dir/stall.cc.o.d"
  "CMakeFiles/gnnmark_sim.dir/warp_pipeline.cc.o"
  "CMakeFiles/gnnmark_sim.dir/warp_pipeline.cc.o.d"
  "CMakeFiles/gnnmark_sim.dir/warp_trace.cc.o"
  "CMakeFiles/gnnmark_sim.dir/warp_trace.cc.o.d"
  "libgnnmark_sim.a"
  "libgnnmark_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnmark_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
