file(REMOVE_RECURSE
  "libgnnmark_sim.a"
)
