
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache_model.cc" "src/sim/CMakeFiles/gnnmark_sim.dir/cache_model.cc.o" "gcc" "src/sim/CMakeFiles/gnnmark_sim.dir/cache_model.cc.o.d"
  "/root/repo/src/sim/gpu_config.cc" "src/sim/CMakeFiles/gnnmark_sim.dir/gpu_config.cc.o" "gcc" "src/sim/CMakeFiles/gnnmark_sim.dir/gpu_config.cc.o.d"
  "/root/repo/src/sim/gpu_device.cc" "src/sim/CMakeFiles/gnnmark_sim.dir/gpu_device.cc.o" "gcc" "src/sim/CMakeFiles/gnnmark_sim.dir/gpu_device.cc.o.d"
  "/root/repo/src/sim/interconnect.cc" "src/sim/CMakeFiles/gnnmark_sim.dir/interconnect.cc.o" "gcc" "src/sim/CMakeFiles/gnnmark_sim.dir/interconnect.cc.o.d"
  "/root/repo/src/sim/op_class.cc" "src/sim/CMakeFiles/gnnmark_sim.dir/op_class.cc.o" "gcc" "src/sim/CMakeFiles/gnnmark_sim.dir/op_class.cc.o.d"
  "/root/repo/src/sim/stall.cc" "src/sim/CMakeFiles/gnnmark_sim.dir/stall.cc.o" "gcc" "src/sim/CMakeFiles/gnnmark_sim.dir/stall.cc.o.d"
  "/root/repo/src/sim/warp_pipeline.cc" "src/sim/CMakeFiles/gnnmark_sim.dir/warp_pipeline.cc.o" "gcc" "src/sim/CMakeFiles/gnnmark_sim.dir/warp_pipeline.cc.o.d"
  "/root/repo/src/sim/warp_trace.cc" "src/sim/CMakeFiles/gnnmark_sim.dir/warp_trace.cc.o" "gcc" "src/sim/CMakeFiles/gnnmark_sim.dir/warp_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/gnnmark_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
