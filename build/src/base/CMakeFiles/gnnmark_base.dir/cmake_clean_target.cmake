file(REMOVE_RECURSE
  "libgnnmark_base.a"
)
