file(REMOVE_RECURSE
  "CMakeFiles/gnnmark_base.dir/logging.cc.o"
  "CMakeFiles/gnnmark_base.dir/logging.cc.o.d"
  "CMakeFiles/gnnmark_base.dir/rng.cc.o"
  "CMakeFiles/gnnmark_base.dir/rng.cc.o.d"
  "CMakeFiles/gnnmark_base.dir/string_utils.cc.o"
  "CMakeFiles/gnnmark_base.dir/string_utils.cc.o.d"
  "CMakeFiles/gnnmark_base.dir/table.cc.o"
  "CMakeFiles/gnnmark_base.dir/table.cc.o.d"
  "libgnnmark_base.a"
  "libgnnmark_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnmark_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
