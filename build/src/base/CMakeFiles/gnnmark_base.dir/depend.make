# Empty dependencies file for gnnmark_base.
# This may be replaced when dependencies are built.
