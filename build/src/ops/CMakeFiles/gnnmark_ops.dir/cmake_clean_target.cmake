file(REMOVE_RECURSE
  "libgnnmark_ops.a"
)
