
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ops/batchnorm.cc" "src/ops/CMakeFiles/gnnmark_ops.dir/batchnorm.cc.o" "gcc" "src/ops/CMakeFiles/gnnmark_ops.dir/batchnorm.cc.o.d"
  "/root/repo/src/ops/conv2d.cc" "src/ops/CMakeFiles/gnnmark_ops.dir/conv2d.cc.o" "gcc" "src/ops/CMakeFiles/gnnmark_ops.dir/conv2d.cc.o.d"
  "/root/repo/src/ops/elementwise.cc" "src/ops/CMakeFiles/gnnmark_ops.dir/elementwise.cc.o" "gcc" "src/ops/CMakeFiles/gnnmark_ops.dir/elementwise.cc.o.d"
  "/root/repo/src/ops/exec_context.cc" "src/ops/CMakeFiles/gnnmark_ops.dir/exec_context.cc.o" "gcc" "src/ops/CMakeFiles/gnnmark_ops.dir/exec_context.cc.o.d"
  "/root/repo/src/ops/gemm.cc" "src/ops/CMakeFiles/gnnmark_ops.dir/gemm.cc.o" "gcc" "src/ops/CMakeFiles/gnnmark_ops.dir/gemm.cc.o.d"
  "/root/repo/src/ops/index.cc" "src/ops/CMakeFiles/gnnmark_ops.dir/index.cc.o" "gcc" "src/ops/CMakeFiles/gnnmark_ops.dir/index.cc.o.d"
  "/root/repo/src/ops/kernel_common.cc" "src/ops/CMakeFiles/gnnmark_ops.dir/kernel_common.cc.o" "gcc" "src/ops/CMakeFiles/gnnmark_ops.dir/kernel_common.cc.o.d"
  "/root/repo/src/ops/reduce.cc" "src/ops/CMakeFiles/gnnmark_ops.dir/reduce.cc.o" "gcc" "src/ops/CMakeFiles/gnnmark_ops.dir/reduce.cc.o.d"
  "/root/repo/src/ops/softmax.cc" "src/ops/CMakeFiles/gnnmark_ops.dir/softmax.cc.o" "gcc" "src/ops/CMakeFiles/gnnmark_ops.dir/softmax.cc.o.d"
  "/root/repo/src/ops/sort.cc" "src/ops/CMakeFiles/gnnmark_ops.dir/sort.cc.o" "gcc" "src/ops/CMakeFiles/gnnmark_ops.dir/sort.cc.o.d"
  "/root/repo/src/ops/spmm.cc" "src/ops/CMakeFiles/gnnmark_ops.dir/spmm.cc.o" "gcc" "src/ops/CMakeFiles/gnnmark_ops.dir/spmm.cc.o.d"
  "/root/repo/src/ops/var_ops.cc" "src/ops/CMakeFiles/gnnmark_ops.dir/var_ops.cc.o" "gcc" "src/ops/CMakeFiles/gnnmark_ops.dir/var_ops.cc.o.d"
  "/root/repo/src/ops/variable.cc" "src/ops/CMakeFiles/gnnmark_ops.dir/variable.cc.o" "gcc" "src/ops/CMakeFiles/gnnmark_ops.dir/variable.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/gnnmark_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gnnmark_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/gnnmark_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
