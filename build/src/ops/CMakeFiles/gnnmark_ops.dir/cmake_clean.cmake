file(REMOVE_RECURSE
  "CMakeFiles/gnnmark_ops.dir/batchnorm.cc.o"
  "CMakeFiles/gnnmark_ops.dir/batchnorm.cc.o.d"
  "CMakeFiles/gnnmark_ops.dir/conv2d.cc.o"
  "CMakeFiles/gnnmark_ops.dir/conv2d.cc.o.d"
  "CMakeFiles/gnnmark_ops.dir/elementwise.cc.o"
  "CMakeFiles/gnnmark_ops.dir/elementwise.cc.o.d"
  "CMakeFiles/gnnmark_ops.dir/exec_context.cc.o"
  "CMakeFiles/gnnmark_ops.dir/exec_context.cc.o.d"
  "CMakeFiles/gnnmark_ops.dir/gemm.cc.o"
  "CMakeFiles/gnnmark_ops.dir/gemm.cc.o.d"
  "CMakeFiles/gnnmark_ops.dir/index.cc.o"
  "CMakeFiles/gnnmark_ops.dir/index.cc.o.d"
  "CMakeFiles/gnnmark_ops.dir/kernel_common.cc.o"
  "CMakeFiles/gnnmark_ops.dir/kernel_common.cc.o.d"
  "CMakeFiles/gnnmark_ops.dir/reduce.cc.o"
  "CMakeFiles/gnnmark_ops.dir/reduce.cc.o.d"
  "CMakeFiles/gnnmark_ops.dir/softmax.cc.o"
  "CMakeFiles/gnnmark_ops.dir/softmax.cc.o.d"
  "CMakeFiles/gnnmark_ops.dir/sort.cc.o"
  "CMakeFiles/gnnmark_ops.dir/sort.cc.o.d"
  "CMakeFiles/gnnmark_ops.dir/spmm.cc.o"
  "CMakeFiles/gnnmark_ops.dir/spmm.cc.o.d"
  "CMakeFiles/gnnmark_ops.dir/var_ops.cc.o"
  "CMakeFiles/gnnmark_ops.dir/var_ops.cc.o.d"
  "CMakeFiles/gnnmark_ops.dir/variable.cc.o"
  "CMakeFiles/gnnmark_ops.dir/variable.cc.o.d"
  "libgnnmark_ops.a"
  "libgnnmark_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnmark_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
