# Empty compiler generated dependencies file for gnnmark_ops.
# This may be replaced when dependencies are built.
