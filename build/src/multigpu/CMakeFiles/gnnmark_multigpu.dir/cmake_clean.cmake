file(REMOVE_RECURSE
  "CMakeFiles/gnnmark_multigpu.dir/ddp.cc.o"
  "CMakeFiles/gnnmark_multigpu.dir/ddp.cc.o.d"
  "libgnnmark_multigpu.a"
  "libgnnmark_multigpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnmark_multigpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
