# Empty dependencies file for gnnmark_multigpu.
# This may be replaced when dependencies are built.
