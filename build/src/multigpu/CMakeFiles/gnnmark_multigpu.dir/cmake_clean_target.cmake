file(REMOVE_RECURSE
  "libgnnmark_multigpu.a"
)
