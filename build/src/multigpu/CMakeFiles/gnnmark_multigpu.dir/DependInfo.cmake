
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/multigpu/ddp.cc" "src/multigpu/CMakeFiles/gnnmark_multigpu.dir/ddp.cc.o" "gcc" "src/multigpu/CMakeFiles/gnnmark_multigpu.dir/ddp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/models/CMakeFiles/gnnmark_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/gnnmark_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/gnnmark_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gnnmark_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gnnmark_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/gnnmark_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/gnnmark_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
