file(REMOVE_RECURSE
  "CMakeFiles/traffic_forecast.dir/traffic_forecast.cpp.o"
  "CMakeFiles/traffic_forecast.dir/traffic_forecast.cpp.o.d"
  "traffic_forecast"
  "traffic_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
