file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_arch_sensitivity.dir/bench_ext_arch_sensitivity.cpp.o"
  "CMakeFiles/bench_ext_arch_sensitivity.dir/bench_ext_arch_sensitivity.cpp.o.d"
  "bench_ext_arch_sensitivity"
  "bench_ext_arch_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_arch_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
