# Empty dependencies file for bench_ext_arch_sensitivity.
# This may be replaced when dependencies are built.
