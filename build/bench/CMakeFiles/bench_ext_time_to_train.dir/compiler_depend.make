# Empty compiler generated dependencies file for bench_ext_time_to_train.
# This may be replaced when dependencies are built.
