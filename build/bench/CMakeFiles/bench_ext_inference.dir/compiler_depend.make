# Empty compiler generated dependencies file for bench_ext_inference.
# This may be replaced when dependencies are built.
