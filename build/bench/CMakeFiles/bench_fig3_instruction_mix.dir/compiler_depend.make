# Empty compiler generated dependencies file for bench_fig3_instruction_mix.
# This may be replaced when dependencies are built.
