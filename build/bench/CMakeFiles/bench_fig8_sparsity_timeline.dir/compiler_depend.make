# Empty compiler generated dependencies file for bench_fig8_sparsity_timeline.
# This may be replaced when dependencies are built.
