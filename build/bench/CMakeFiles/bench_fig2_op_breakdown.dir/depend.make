# Empty dependencies file for bench_fig2_op_breakdown.
# This may be replaced when dependencies are built.
