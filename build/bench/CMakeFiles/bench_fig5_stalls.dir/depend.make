# Empty dependencies file for bench_fig5_stalls.
# This may be replaced when dependencies are built.
