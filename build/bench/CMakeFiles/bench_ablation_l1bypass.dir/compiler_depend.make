# Empty compiler generated dependencies file for bench_ablation_l1bypass.
# This may be replaced when dependencies are built.
