file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_l1bypass.dir/bench_ablation_l1bypass.cpp.o"
  "CMakeFiles/bench_ablation_l1bypass.dir/bench_ablation_l1bypass.cpp.o.d"
  "bench_ablation_l1bypass"
  "bench_ablation_l1bypass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_l1bypass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
