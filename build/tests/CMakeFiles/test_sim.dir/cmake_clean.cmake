file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_cache_model.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_cache_model.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_config_sensitivity.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_config_sensitivity.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_gpu_device.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_gpu_device.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_interconnect.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_interconnect.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_pipeline.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_pipeline.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_profiler.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_profiler.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_sampling_accuracy.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_sampling_accuracy.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_warp_trace.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_warp_trace.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
