
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ops/test_autograd.cpp" "tests/CMakeFiles/test_ops.dir/ops/test_autograd.cpp.o" "gcc" "tests/CMakeFiles/test_ops.dir/ops/test_autograd.cpp.o.d"
  "/root/repo/tests/ops/test_conv_bn.cpp" "tests/CMakeFiles/test_ops.dir/ops/test_conv_bn.cpp.o" "gcc" "tests/CMakeFiles/test_ops.dir/ops/test_conv_bn.cpp.o.d"
  "/root/repo/tests/ops/test_elementwise.cpp" "tests/CMakeFiles/test_ops.dir/ops/test_elementwise.cpp.o" "gcc" "tests/CMakeFiles/test_ops.dir/ops/test_elementwise.cpp.o.d"
  "/root/repo/tests/ops/test_gemm.cpp" "tests/CMakeFiles/test_ops.dir/ops/test_gemm.cpp.o" "gcc" "tests/CMakeFiles/test_ops.dir/ops/test_gemm.cpp.o.d"
  "/root/repo/tests/ops/test_index_sort.cpp" "tests/CMakeFiles/test_ops.dir/ops/test_index_sort.cpp.o" "gcc" "tests/CMakeFiles/test_ops.dir/ops/test_index_sort.cpp.o.d"
  "/root/repo/tests/ops/test_kernel_common.cpp" "tests/CMakeFiles/test_ops.dir/ops/test_kernel_common.cpp.o" "gcc" "tests/CMakeFiles/test_ops.dir/ops/test_kernel_common.cpp.o.d"
  "/root/repo/tests/ops/test_reduce.cpp" "tests/CMakeFiles/test_ops.dir/ops/test_reduce.cpp.o" "gcc" "tests/CMakeFiles/test_ops.dir/ops/test_reduce.cpp.o.d"
  "/root/repo/tests/ops/test_softmax.cpp" "tests/CMakeFiles/test_ops.dir/ops/test_softmax.cpp.o" "gcc" "tests/CMakeFiles/test_ops.dir/ops/test_softmax.cpp.o.d"
  "/root/repo/tests/ops/test_spmm.cpp" "tests/CMakeFiles/test_ops.dir/ops/test_spmm.cpp.o" "gcc" "tests/CMakeFiles/test_ops.dir/ops/test_spmm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gnnmark_core.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/gnnmark_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/multigpu/CMakeFiles/gnnmark_multigpu.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/gnnmark_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/gnnmark_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/gnnmark_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gnnmark_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gnnmark_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/gnnmark_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/gnnmark_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
