file(REMOVE_RECURSE
  "CMakeFiles/test_ops.dir/ops/test_autograd.cpp.o"
  "CMakeFiles/test_ops.dir/ops/test_autograd.cpp.o.d"
  "CMakeFiles/test_ops.dir/ops/test_conv_bn.cpp.o"
  "CMakeFiles/test_ops.dir/ops/test_conv_bn.cpp.o.d"
  "CMakeFiles/test_ops.dir/ops/test_elementwise.cpp.o"
  "CMakeFiles/test_ops.dir/ops/test_elementwise.cpp.o.d"
  "CMakeFiles/test_ops.dir/ops/test_gemm.cpp.o"
  "CMakeFiles/test_ops.dir/ops/test_gemm.cpp.o.d"
  "CMakeFiles/test_ops.dir/ops/test_index_sort.cpp.o"
  "CMakeFiles/test_ops.dir/ops/test_index_sort.cpp.o.d"
  "CMakeFiles/test_ops.dir/ops/test_kernel_common.cpp.o"
  "CMakeFiles/test_ops.dir/ops/test_kernel_common.cpp.o.d"
  "CMakeFiles/test_ops.dir/ops/test_reduce.cpp.o"
  "CMakeFiles/test_ops.dir/ops/test_reduce.cpp.o.d"
  "CMakeFiles/test_ops.dir/ops/test_softmax.cpp.o"
  "CMakeFiles/test_ops.dir/ops/test_softmax.cpp.o.d"
  "CMakeFiles/test_ops.dir/ops/test_spmm.cpp.o"
  "CMakeFiles/test_ops.dir/ops/test_spmm.cpp.o.d"
  "test_ops"
  "test_ops.pdb"
  "test_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
