file(REMOVE_RECURSE
  "CMakeFiles/test_models.dir/models/test_gnn_layers.cpp.o"
  "CMakeFiles/test_models.dir/models/test_gnn_layers.cpp.o.d"
  "CMakeFiles/test_models.dir/models/test_workloads.cpp.o"
  "CMakeFiles/test_models.dir/models/test_workloads.cpp.o.d"
  "test_models"
  "test_models.pdb"
  "test_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
