/**
 * @file
 * Regenerates the paper's fig2 series (Fig2OpBreakdown) by training
 * the full GNNMark suite on the simulated V100 and printing the same
 * rows the paper reports.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/reports.hh"

using namespace gnnmark;

int
main()
{
    auto profiles = bench::characterizeSuite();
    reports::printFig2OpBreakdown(profiles, std::cout);
    return 0;
}
