/**
 * @file
 * google-benchmark microbenchmarks of the instrumented operator layer.
 * Each benchmark reports, besides the host execution time, the
 * *simulated* GPU time and achieved GFLOPS/GIOPS as counters — the
 * per-operation rates behind the paper's Fig. 4 discussion (GEMM in
 * the mid-300s GFLOPS, gather/reduction far lower).
 */

#include <benchmark/benchmark.h>

#include "base/rng.hh"
#include "ops/elementwise.hh"
#include "ops/exec_context.hh"
#include "ops/gemm.hh"
#include "ops/index.hh"
#include "ops/reduce.hh"
#include "ops/sort.hh"
#include "ops/spmm.hh"
#include "profiler/profiler.hh"

using namespace gnnmark;

namespace {

/** Per-benchmark device + profiler with simulated-time counters. */
struct SimHarness
{
    GpuDevice device;
    Profiler profiler;

    SimHarness() { device.addObserver(&profiler); }

    void
    report(benchmark::State &state)
    {
        const double iters = static_cast<double>(state.iterations());
        state.counters["sim_us"] = benchmark::Counter(
            profiler.totalKernelTimeSec() * 1e6 / iters);
        state.counters["sim_GFLOPS"] =
            benchmark::Counter(profiler.gflops());
        state.counters["sim_GIOPS"] =
            benchmark::Counter(profiler.giops());
        state.counters["l1_hit"] =
            benchmark::Counter(profiler.l1HitRate());
    }
};

} // namespace

static void
BM_Gemm(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(1);
    Tensor a = Tensor::randn({n, n}, rng);
    Tensor b = Tensor::randn({n, n}, rng);
    SimHarness sim;
    ContextGuard guard(&sim.device);
    for (auto _ : state)
        benchmark::DoNotOptimize(ops::gemm(a, b));
    sim.report(state);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

static void
BM_Spmm(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(2);
    std::vector<std::tuple<int32_t, int32_t, float>> triples;
    for (int64_t i = 0; i < n * 8; ++i) {
        triples.emplace_back(
            static_cast<int32_t>(rng.randint(static_cast<uint64_t>(n))),
            static_cast<int32_t>(rng.randint(static_cast<uint64_t>(n))),
            1.0f);
    }
    SparseMatrix csr(csrFromTriples(n, n, std::move(triples)));
    Tensor b = Tensor::randn({n, 64}, rng);
    SimHarness sim;
    ContextGuard guard(&sim.device);
    for (auto _ : state)
        benchmark::DoNotOptimize(ops::spmm(csr, b));
    sim.report(state);
}
BENCHMARK(BM_Spmm)->Arg(1024)->Arg(4096)->Arg(16384);

static void
BM_GatherRows(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(3);
    Tensor table = Tensor::randn({n, 64}, rng);
    std::vector<int32_t> idx(n);
    for (auto &i : idx)
        i = static_cast<int32_t>(rng.randint(static_cast<uint64_t>(n)));
    SimHarness sim;
    ContextGuard guard(&sim.device);
    for (auto _ : state)
        benchmark::DoNotOptimize(ops::gatherRows(table, idx));
    sim.report(state);
}
BENCHMARK(BM_GatherRows)->Arg(4096)->Arg(65536);

static void
BM_ScatterAdd(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(4);
    Tensor out = Tensor::zeros({n, 64});
    Tensor src = Tensor::randn({n, 64}, rng);
    std::vector<int32_t> idx(n);
    for (auto &i : idx)
        i = static_cast<int32_t>(rng.randint(static_cast<uint64_t>(n)));
    SimHarness sim;
    ContextGuard guard(&sim.device);
    for (auto _ : state)
        ops::scatterAddRows(out, idx, src);
    sim.report(state);
}
BENCHMARK(BM_ScatterAdd)->Arg(4096)->Arg(65536);

static void
BM_RadixSort(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(5);
    std::vector<int32_t> keys(n);
    SimHarness sim;
    ContextGuard guard(&sim.device);
    for (auto _ : state) {
        state.PauseTiming();
        for (auto &k : keys) {
            k = static_cast<int32_t>(
                rng.randint(uint64_t{1} << 30));
        }
        state.ResumeTiming();
        ops::sortKeys(keys);
    }
    sim.report(state);
}
BENCHMARK(BM_RadixSort)->Arg(16384)->Arg(131072);

static void
BM_Elementwise(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(6);
    Tensor a = Tensor::randn({n}, rng);
    Tensor b = Tensor::randn({n}, rng);
    SimHarness sim;
    ContextGuard guard(&sim.device);
    for (auto _ : state)
        benchmark::DoNotOptimize(ops::add(a, b));
    sim.report(state);
}
BENCHMARK(BM_Elementwise)->Arg(1 << 16)->Arg(1 << 20);

static void
BM_RowReduce(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(7);
    Tensor a = Tensor::randn({n, 128}, rng);
    SimHarness sim;
    ContextGuard guard(&sim.device);
    for (auto _ : state)
        benchmark::DoNotOptimize(ops::reduceSumRows(a));
    sim.report(state);
}
BENCHMARK(BM_RowReduce)->Arg(1024)->Arg(16384);

BENCHMARK_MAIN();
