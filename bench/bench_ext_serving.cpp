/**
 * @file
 * Extension: SLO-aware serving under faults — the load sweep behind
 * the robustness claim. For each offered-load point (a fraction of
 * the healthy pool's max-batch capacity) the bench runs the serving
 * simulator twice under the same straggler fault plan: once with the
 * full robustness stack (hedging, shedding, cache fallback, circuit
 * breakers) and once with everything off. The headline column is the
 * ratio of SLO-within-deadline goodput between the two — the stack
 * must buy >= 2x at the stressed operating points.
 *
 * With an output path argument the bench also writes a JSONL twin
 * (one "serving" record per run, via reports::servingRecordJson) in
 * which every field derives from simulated time and seeded
 * randomness, so tools/bench_diff gates it exactly (tolerance 0)
 * against bench/baselines/ext_serving.jsonl. The gated configuration
 * is pinned — GNNMARK_SCALE/GNNMARK_ITERS are deliberately ignored
 * here, as they would silently invalidate the baseline.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "base/string_utils.hh"
#include "base/table.hh"
#include "bench_common.hh"
#include "core/reports_json.hh"
#include "models/ego_net.hh"
#include "serve/cost_model.hh"
#include "serve/server.hh"
#include "sim/gpu_device.hh"

using namespace gnnmark;

namespace {

constexpr int kReplicas = 3;
constexpr int kMaxBatch = 8;
constexpr double kDurationSec = 0.5;

/** One replica straggling 6x across most of the arrival window. */
FaultPlan
stragglerPlan()
{
    FaultEvent e;
    e.kind = FaultKind::Straggler;
    e.timeSec = 0.15 * kDurationSec;
    e.durationSec = 0.70 * kDurationSec;
    e.replica = 1;
    e.magnitude = 6.0;
    return FaultPlan({e});
}

serve::ServingReport
runPoint(const serve::BatchCostTable &table, int64_t catalog,
         uint64_t seed, double rate, double slo_sec, bool robust)
{
    serve::ServeOptions opt;
    opt.traffic.ratePerSec = rate;
    opt.traffic.durationSec = kDurationSec;
    opt.traffic.sloSec = slo_sec;
    opt.traffic.seed = seed;
    opt.traffic.catalogItems = catalog;
    opt.replicas = kReplicas;
    opt.maxBatch = kMaxBatch;
    opt.faults = stragglerPlan();
    opt.faultScenario = "straggler";
    opt.hedgeEnabled = robust;
    opt.shedEnabled = robust;
    opt.fallbackEnabled = robust;
    opt.breakerEnabled = robust;
    opt.mirrorMetrics = false; // keep the global registry quiet
    return serve::ServingSimulator(table, opt).run();
}

} // namespace

int
main(int argc, char **argv)
{
    // Seed/scale come from the shared inference-bench configuration,
    // then get pinned (no env overrides) because the JSONL twin is
    // diffed exactly against a committed baseline.
    RunOptions base = bench::inferenceOptions();
    const double scale = 1.0;
    const uint64_t seed = base.seed;

    std::cout << "Pricing ego-net inference batches on the simulated "
                 "V100...\n";
    EgoNetBatchModel model(scale, seed);
    GpuDevice device(GpuConfig::v100(), seed);
    const serve::BatchCostTable table =
        serve::priceBatchCosts(model, device, kMaxBatch, seed);
    const double batch_cost = table.costSec(kMaxBatch);
    const double capacity = kReplicas * kMaxBatch / batch_cost;
    const double slo_sec = 5.0 * batch_cost;
    std::cout << strfmt(
        "Batch cost %.3f ms at size %d -> pool capacity %.0f req/s, "
        "SLO %.2f ms\n\n",
        batch_cost * 1e3, kMaxBatch, capacity, slo_sec * 1e3);

    const std::vector<double> load_fractions = {0.4, 0.7, 1.0, 1.3};

    TablePrinter table_out(strfmt(
        "Goodput under a 6x straggler (%d replicas, batch <= %d): "
        "robustness stack on vs off",
        kReplicas, kMaxBatch));
    table_out.setHeader({"Load", "Offered", "Goodput on", "Goodput off",
                         "Ratio", "p99 on (ms)", "p99 off (ms)", "Shed",
                         "Hedges", "Retries off", "Fallback"});

    std::vector<std::pair<std::string, serve::ServingReport>> records;
    bool sweep_ok = true;
    for (double frac : load_fractions) {
        const double rate = frac * capacity;
        const serve::ServingReport on =
            runPoint(table, model.numItems(), seed, rate, slo_sec,
                     /*robust=*/true);
        const serve::ServingReport off =
            runPoint(table, model.numItems(), seed, rate, slo_sec,
                     /*robust=*/false);
        const double ratio =
            off.goodputPerSec > 0
                ? on.goodputPerSec / off.goodputPerSec
                : (on.goodputPerSec > 0 ? 999.0 : 1.0);
        // The stack must never hurt, and must pay for itself once the
        // straggler actually bites (>= 70% load).
        if (ratio < (frac >= 0.7 ? 2.0 : 0.98))
            sweep_ok = false;
        table_out.addRow(
            {strfmt("%.0f%%", frac * 100),
             strfmt("%lld", (long long)on.offered),
             fixed(on.goodputPerSec, 0), fixed(off.goodputPerSec, 0),
             fixed(ratio, 2), fixed(on.p99Ms, 2), fixed(off.p99Ms, 2),
             strfmt("%lld", (long long)on.shed),
             strfmt("%lld", (long long)on.hedgesLaunched),
             strfmt("%lld", (long long)off.retries),
             strfmt("%lld", (long long)on.fallback)});
        records.emplace_back(strfmt("straggler-%03.0f-on", frac * 100),
                             on);
        records.emplace_back(strfmt("straggler-%03.0f-off", frac * 100),
                             off);
    }
    table_out.print(std::cout);
    std::cout << "\nThe all-off baseline keeps answering late (or "
                 "losing work to the straggler);\nthe stack sheds "
                 "infeasible requests, hedges slow batches and serves "
                 "cache\nfallbacks, so deadline-met goodput holds up "
                 "under the same offered load.\n";
    if (!sweep_ok)
        std::cout << "\nWARNING: robustness win below the expected "
                     "margin at some operating point.\n";

    if (argc > 1) {
        std::ofstream out(argv[1]);
        if (!out) {
            std::cerr << "cannot open " << argv[1]
                      << " for writing\n";
            return 2;
        }
        for (const auto &rec : records)
            out << reports::servingRecordJson(rec.first, rec.second)
                << "\n";
        std::cout << "\nWrote serving records to " << argv[1] << "\n";
    }
    return sweep_ok ? 0 : 1;
}
