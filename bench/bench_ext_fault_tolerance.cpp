/**
 * @file
 * Extension: fault-tolerant DDP training. Injects a fixed fault
 * scenario — straggler, degraded link, transient kernel failure,
 * replica crash — into multi-GPU training of three workloads, then
 * sweeps the checkpoint interval under the same plan to expose the
 * write-often/replay-little trade-off.
 */

#include <iostream>
#include <utility>
#include <vector>

#include "bench_common.hh"
#include "core/reports.hh"
#include "multigpu/ddp.hh"

using namespace gnnmark;

namespace {

/**
 * The shared fault scenario, scheduled at fixed fractions of the
 * workload's healthy run so the same pressure lands on every model.
 */
FaultPlan
scenario(double horizon_sec, int world)
{
    std::vector<FaultEvent> events;
    FaultEvent straggler;
    straggler.kind = FaultKind::Straggler;
    straggler.timeSec = 0.20 * horizon_sec;
    straggler.durationSec = 0.12 * horizon_sec;
    straggler.replica = 1;
    straggler.magnitude = 2.5;
    events.push_back(straggler);

    FaultEvent link;
    link.kind = FaultKind::DegradedLink;
    link.timeSec = 0.40 * horizon_sec;
    link.durationSec = 0.12 * horizon_sec;
    link.magnitude = 0.25;
    events.push_back(link);

    FaultEvent transient;
    transient.kind = FaultKind::TransientKernel;
    transient.timeSec = 0.50 * horizon_sec;
    events.push_back(transient);

    FaultEvent crash;
    crash.kind = FaultKind::ReplicaCrash;
    crash.timeSec = 0.65 * horizon_sec;
    crash.replica = world - 1;
    events.push_back(crash);
    return FaultPlan(std::move(events));
}

} // namespace

int
main()
{
    RunOptions opt = bench::benchOptions();
    WorkloadConfig base;
    base.seed = opt.seed;
    base.scale = opt.scale;

    DdpTrainer trainer;
    const int world = 4;
    const std::vector<std::string> names = {"DGCN", "STGCN", "KGNNL"};
    const std::vector<int> intervals = {0, 4, 8, 12, 24};

    std::cout << "Fault-injected DDP training on " << world
              << " simulated GPUs (scale " << base.scale << ")...\n\n";

    for (const std::string &name : names) {
        auto wl = BenchmarkSuite::create(name);
        std::cout << "Probing " << name << "..." << std::flush;
        ScalingResult probe = trainer.measure(*wl, base, world, 2);
        const double iter_sec =
            probe.epochTimeSec /
            static_cast<double>(wl->iterationsPerEpoch());
        std::cout << " done\n";

        FaultRecoveryOptions ft;
        ft.iterations = 48;
        const FaultPlan plan =
            scenario(iter_sec * ft.iterations, world);

        FaultToleranceResult run =
            trainer.runWithFaults(*wl, base, world, plan, ft);
        reports::printFaultTolerance(run, std::cout);

        std::vector<std::pair<int, FaultToleranceResult>> sweep;
        for (int interval : intervals) {
            FaultRecoveryOptions swept = ft;
            swept.checkpointInterval = interval;
            sweep.emplace_back(interval,
                               trainer.runWithFaults(*wl, base, world,
                                                     plan, swept));
        }
        reports::printCheckpointSweep(sweep, std::cout);
    }

    std::cout << "Short checkpoint intervals trade steady-state write "
                 "time for fewer replayed\niterations after the crash; "
                 "the sweet spot moves with the crash position.\n";
    return 0;
}
