/**
 * @file
 * Extension: host allocator behaviour. Two angles on the caching
 * arena vs. plain posix_memalign:
 *
 *   1. A pure tensor-churn loop (allocate / drop a deterministic mix
 *      of buffer sizes) isolating allocator overhead from training.
 *   2. Steady-state training iterations of two allocation-heavy
 *      workloads (PinSAGE sampling, STGCN conv pipeline) run once per
 *      allocator mode via RunOptions::allocator.
 *
 * With an output path argument the bench additionally writes a JSONL
 * twin containing only allocator *counters* (requests, heap calls,
 * cache hits, peak bytes) — all deterministic for a fixed build, so
 * tools/bench_diff can gate them exactly (--tol 0) against
 * bench/baselines/ext_allocator.jsonl. Wall-clock numbers stay in the
 * human table only.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "base/allocator.hh"
#include "base/string_utils.hh"
#include "base/table.hh"
#include "base/units.hh"
#include "bench_common.hh"
#include "obs/json.hh"
#include "ops/exec_context.hh"
#include "tensor/tensor.hh"

using namespace gnnmark;

namespace {

struct ChurnResult
{
    std::string mode;
    double wallMs = 0.0;
    AllocStats delta; ///< stats accrued by the churn loop alone
};

/**
 * Allocate and drop a deterministic mix of tensor sizes, keeping a
 * small live window so free lists actually get exercised. Mirrors the
 * lifetime pattern of a training tape: most buffers die young, a few
 * persist across the round.
 */
ChurnResult
churn(Allocator &alloc, int rounds)
{
    ContextGuard guard(nullptr, &alloc);
    const AllocStats before = alloc.stats();
    const auto t0 = std::chrono::steady_clock::now();

    std::vector<Tensor> live;
    for (int r = 0; r < rounds; ++r) {
        live.clear();
        for (int i = 0; i < 64; ++i) {
            const int64_t rows = 1 + (i * 37 + r * 11) % 512;
            const int64_t cols = 1 + (i * 13) % 128;
            Tensor t = Tensor::empty({rows, cols});
            t.data()[0] = 1.0f; // touch the block
            if (i % 8 == 0)
                live.push_back(t); // survives to end of round
        }
    }
    live.clear();

    const auto t1 = std::chrono::steady_clock::now();
    const AllocStats after = alloc.stats();
    ChurnResult res;
    res.mode = alloc.name();
    res.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    res.delta.requests = after.requests - before.requests;
    res.delta.releases = after.releases - before.releases;
    res.delta.cacheHits = after.cacheHits - before.cacheHits;
    res.delta.heapCalls = after.heapCalls - before.heapCalls;
    return res;
}

struct WorkloadResult
{
    std::string workload;
    AllocSummary mem;
    double wallSec = 0.0;
};

WorkloadResult
runWorkload(const std::string &name, Allocator &alloc,
            const RunOptions &base)
{
    RunOptions opt = base;
    opt.allocator = &alloc;
    const auto t0 = std::chrono::steady_clock::now();
    CharacterizationRunner runner(opt);
    WorkloadProfile profile = runner.run(name);
    const auto t1 = std::chrono::steady_clock::now();
    WorkloadResult res;
    res.workload = name;
    res.mem = profile.memStats;
    res.wallSec = std::chrono::duration<double>(t1 - t0).count();
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    const int kChurnRounds = 200;
    // The JSONL twin is diffed *exactly* against a committed baseline,
    // so the gated configuration is pinned rather than env-overridable
    // (GNNMARK_SCALE/GNNMARK_ITERS still shape the defaults the other
    // ext benches use; here they would silently invalidate the gate).
    RunOptions opt = bench::benchOptions();
    opt.scale = 0.25;
    opt.iterations = 4;

    std::cout << "Host allocator behaviour: caching arena vs plain "
                 "heap calls...\n\n";

    const ChurnResult churn_sys = churn(systemAllocator(), kChurnRounds);
    const ChurnResult churn_cached =
        churn(cachingAllocator(), kChurnRounds);

    TablePrinter churn_table(
        strfmt("Tensor churn, %d rounds x 64 buffers", kChurnRounds));
    churn_table.setHeader(
        {"Mode", "Wall ms", "Requests", "Heap calls", "Cache hits"});
    for (const ChurnResult *c : {&churn_sys, &churn_cached})
        churn_table.addRow({c->mode, fixed(c->wallMs, 2),
                            strfmt("%llu", (unsigned long long)
                                               c->delta.requests),
                            strfmt("%llu", (unsigned long long)
                                               c->delta.heapCalls),
                            strfmt("%llu", (unsigned long long)
                                               c->delta.cacheHits)});
    churn_table.print(std::cout);

    const std::vector<std::string> workloads = {"PSAGE-MVL", "STGCN"};
    std::vector<WorkloadResult> results;
    std::cout << "\n";
    for (const std::string &wl : workloads) {
        for (Allocator *alloc :
             {&systemAllocator(), &cachingAllocator()}) {
            std::cout << "  " << wl << " (" << alloc->name() << ")..."
                      << std::flush;
            results.push_back(runWorkload(wl, *alloc, opt));
            std::cout << " done\n";
        }
    }
    std::cout << "\n";

    TablePrinter table(strfmt(
        "Steady-state training allocations (scale %.2f, %d iters)",
        opt.scale, opt.iterations));
    table.setHeader({"Workload", "Mode", "Allocs/iter", "Reqs/iter",
                     "Hit rate", "Peak bytes", "Wall s"});
    for (const WorkloadResult &r : results)
        table.addRow(
            {r.workload, r.mem.mode,
             strfmt("%llu", (unsigned long long)
                                r.mem.steadyAllocCallsPerIter),
             strfmt("%llu", (unsigned long long)
                                r.mem.steadyRequestsPerIter),
             percent(r.mem.cacheHitRate), formatBytes(r.mem.bytesPeak),
             fixed(r.wallSec, 2)});
    table.print(std::cout);
    std::cout << "\nSteady-state iterations under the caching arena "
                 "recycle every tape buffer\nfreed by the previous "
                 "iteration, so heap traffic collapses to (near) "
                 "zero.\n";

    if (argc > 1) {
        std::ofstream out(argv[1]);
        if (!out) {
            std::cerr << "cannot open " << argv[1] << " for writing\n";
            return 2;
        }
        for (const ChurnResult *c : {&churn_sys, &churn_cached}) {
            obs::JsonWriter w;
            w.beginObject();
            w.key("type").value("allocator_churn");
            w.key("mode").value(c->mode);
            w.key("requests").value((int64_t)c->delta.requests);
            w.key("releases").value((int64_t)c->delta.releases);
            w.key("heap_calls").value((int64_t)c->delta.heapCalls);
            w.key("cache_hits").value((int64_t)c->delta.cacheHits);
            w.endObject();
            out << w.str() << "\n";
        }
        for (const WorkloadResult &r : results) {
            obs::JsonWriter w;
            w.beginObject();
            w.key("type").value("allocator_workload");
            w.key("workload").value(r.workload);
            w.key("mode").value(r.mem.mode);
            w.key("steady_alloc_calls_per_iter")
                .value((int64_t)r.mem.steadyAllocCallsPerIter);
            w.key("steady_requests_per_iter")
                .value((int64_t)r.mem.steadyRequestsPerIter);
            w.key("requests_total")
                .value((int64_t)r.mem.requestsTotal);
            w.key("heap_calls_total")
                .value((int64_t)r.mem.heapCallsTotal);
            w.key("cache_hit_rate").value(r.mem.cacheHitRate);
            w.key("bytes_peak").value((int64_t)r.mem.bytesPeak);
            w.key("slabs_mapped").value((int64_t)r.mem.slabsMapped);
            w.endObject();
            out << w.str() << "\n";
        }
        std::cout << "\nWrote allocator counters to " << argv[1]
                  << "\n";
    }
    return 0;
}
