/**
 * @file
 * Extension: MLPerf-style time-to-train (the paper's Sec. VII plan).
 * Each workload trains until its smoothed loss falls to 85% of its
 * initial value; the simulated V100 wall time to that point is the
 * metric.
 */

#include <iostream>

#include "base/table.hh"
#include "bench_common.hh"
#include "core/time_to_train.hh"

using namespace gnnmark;

int
main()
{
    RunOptions opt = bench::benchOptions();
    TimeToTrainOptions tto;
    tto.seed = opt.seed;
    tto.scale = opt.scale;
    tto.maxIterations = 120;

    std::cout << "Time-to-train (to 85% of the initial smoothed "
                 "loss)...\n\n";

    TablePrinter table("MLPerf-style time-to-train on the simulated "
                       "V100");
    table.setHeader({"Workload", "Converged", "Steps", "Sim time (ms)",
                     "Loss start", "Loss end"});
    for (const std::string &name : BenchmarkSuite::workloadNames()) {
        std::cout << "  " << name << "..." << std::flush;
        auto wl = BenchmarkSuite::create(name);
        TimeToTrainResult r = measureTimeToTrain(*wl, tto);
        std::cout << (r.converged ? " converged\n" : " hit step cap\n");
        table.addRow({r.name, r.converged ? "yes" : "no",
                      strfmt("%d", r.iterations),
                      fixed(r.simulatedTimeSec * 1e3, 1),
                      fixed(r.initialLoss, 3), fixed(r.finalLoss, 3)});
    }
    std::cout << "\n";
    table.print(std::cout);
    return 0;
}
