/**
 * @file
 * Shared driver for the figure/table benches: trains the whole suite
 * on the simulated V100 under a profiler and hands the per-workload
 * profiles to the report printer of the specific figure.
 */

#ifndef GNNMARK_BENCH_BENCH_COMMON_HH
#define GNNMARK_BENCH_BENCH_COMMON_HH

#include <cstdlib>
#include <iostream>
#include <vector>

#include "base/logging.hh"
#include "core/characterization.hh"
#include "core/suite.hh"

namespace gnnmark {
namespace bench {

/** Run options shared by the figure benches (env-overridable). */
inline RunOptions
benchOptions()
{
    RunOptions opt;
    opt.scale = 1.0;
    opt.iterations = 6;
    opt.warmupIterations = 1;
    opt.seed = 2021; // the paper's year
    if (const char *s = std::getenv("GNNMARK_SCALE"))
        opt.scale = std::atof(s);
    if (const char *s = std::getenv("GNNMARK_ITERS"))
        opt.iterations = std::atoi(s);
    return opt;
}

/**
 * Inference-mode twin of benchOptions(): forward passes only, the
 * shorter iteration budget the inference-path benches share. The
 * training/inference contrast bench and the serving bench both start
 * from this so the two stay on the same configuration.
 */
inline RunOptions
inferenceOptions()
{
    RunOptions opt = benchOptions();
    opt.iterations = 4;
    opt.inferenceOnly = true;
    return opt;
}

/** Characterize the full suite (Table I order). */
inline std::vector<WorkloadProfile>
characterizeSuite()
{
    RunOptions opt = benchOptions();
    std::cout << "Training the GNNMark suite on a simulated V100 "
              << "(scale " << opt.scale << ", " << opt.iterations
              << " measured iterations per workload)...\n\n";
    CharacterizationRunner runner(opt);
    std::vector<WorkloadProfile> profiles;
    for (const std::string &name : BenchmarkSuite::workloadNames()) {
        std::cout << "  " << name << "..." << std::flush;
        profiles.push_back(runner.run(name));
        std::cout << " done\n";
    }
    std::cout << "\n";
    return profiles;
}

} // namespace bench
} // namespace gnnmark

#endif // GNNMARK_BENCH_BENCH_COMMON_HH
