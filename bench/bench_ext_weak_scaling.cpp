/**
 * @file
 * Extension: weak scaling of GNN training (the paper's Sec. VII
 * future-work item). The per-GPU batch stays fixed while the world
 * grows; efficiency measures how much of the extra throughput the
 * all-reduce gives back.
 */

#include <iostream>

#include "base/table.hh"
#include "bench_common.hh"
#include "multigpu/ddp.hh"

using namespace gnnmark;

int
main()
{
    RunOptions opt = bench::benchOptions();
    WorkloadConfig base;
    base.seed = opt.seed;
    base.scale = opt.scale;

    DdpTrainer trainer;
    TablePrinter table(
        "Weak scaling: fixed per-GPU batch, growing world "
        "(efficiency = t1 / tw)");
    table.setHeader({"Workload", "GPUs", "Epoch (ms)", "Comm (ms)",
                     "Efficiency"});
    for (const std::string &name : BenchmarkSuite::workloadNames()) {
        auto wl = BenchmarkSuite::create(name);
        if (!wl->supportsMultiGpu())
            continue;
        std::cout << "Weak-scaling " << name << "..." << std::flush;
        auto curve = trainer.weakScalingCurve(*wl, base, {1, 2, 4}, 2);
        std::cout << " done\n";
        for (const ScalingResult &r : curve) {
            table.addRow({name, strfmt("%d", r.worldSize),
                          fixed(r.epochTimeSec * 1e3, 2),
                          fixed(r.commTimeSec * 1e3, 2),
                          fixed(r.speedup, 3)});
        }
    }
    std::cout << "\n";
    table.print(std::cout);
    std::cout << "\nCompute-per-GPU stays constant, so efficiency is "
                 "set by the per-iteration all-reduce-to-compute "
                 "ratio:\nshort-iteration workloads (PSAGE-MVL, KGNNL) "
                 "lose the most.\n";
    return 0;
}
