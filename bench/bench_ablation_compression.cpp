/**
 * @file
 * Ablation: zero-value compression of CPU-to-GPU transfers — the
 * optimisation the paper's sparsity study (Figs. 7-8) motivates.
 * Sparse-input workloads (ARGA's one-hot features) gain the most.
 */

#include <iostream>

#include "base/table.hh"
#include "bench_common.hh"

using namespace gnnmark;

int
main()
{
    RunOptions plain = bench::benchOptions();
    plain.iterations = 4;
    RunOptions compressed = plain;
    compressed.deviceConfig.h2dCompression = true;

    std::cout << "Transfer-compression ablation (paper Sec. V-D "
                 "takeaway)...\n\n";

    TablePrinter table("Zero-value compression of H2D transfers");
    table.setHeader({"Workload", "Sparsity", "Transfer time x",
                     "Predicted x (1 - sparsity + 1/32)"});
    for (const std::string &name : BenchmarkSuite::workloadNames()) {
        std::cout << "  " << name << "..." << std::flush;
        WorkloadProfile a =
            CharacterizationRunner(plain).run(name);
        WorkloadProfile b =
            CharacterizationRunner(compressed).run(name);
        std::cout << " done\n";

        const double sparsity = a.profiler.avgTransferSparsity();
        table.addRow({name, percent(sparsity),
                      fixed(b.profiler.totalTransferTimeSec() /
                                a.profiler.totalTransferTimeSec(), 3),
                      fixed(1.0 - sparsity + 1.0 / 32.0, 3)});
    }
    std::cout << "\n";
    table.print(std::cout);
    std::cout << "Compression helps exactly where Fig. 7 shows high "
                 "sparsity (ARGA most, PSAGE-NWP least).\n";
    return 0;
}
