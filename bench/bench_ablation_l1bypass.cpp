/**
 * @file
 * Ablation: L1 bypass for irregular operators. The paper's cache
 * takeaway suggests bypassing the (nearly useless) L1 for the
 * gather/scatter/SpMM class of kernels; this bench measures the
 * effect on cache traffic and kernel time across the suite.
 */

#include <iostream>

#include "base/table.hh"
#include "bench_common.hh"

using namespace gnnmark;

int
main()
{
    RunOptions base = bench::benchOptions();
    base.iterations = 4;

    RunOptions bypass = base;
    bypass.deviceConfig.l1BypassIrregular = true;

    std::cout << "L1-bypass ablation (irregular kernels skip the L1, "
                 "paper SsV-C takeaway)...\n\n";

    TablePrinter table("L1 bypass for irregular operators");
    table.setHeader({"Workload", "L1 hit (base)", "L1 hit (bypass)",
                     "L2 accesses x", "Kernel time x"});
    for (const std::string &name : BenchmarkSuite::workloadNames()) {
        std::cout << "  " << name << "..." << std::flush;
        WorkloadProfile a = CharacterizationRunner(base).run(name);
        WorkloadProfile b = CharacterizationRunner(bypass).run(name);
        std::cout << " done\n";

        double l2_ratio = 1.0;
        // L2 sees more traffic when loads skip the L1.
        const OpClassStats &ga =
            a.profiler.classStats(OpClass::Gather);
        const OpClassStats &gb =
            b.profiler.classStats(OpClass::Gather);
        if (ga.l2Accesses > 0)
            l2_ratio = gb.l2Accesses / ga.l2Accesses;
        table.addRow(
            {name, percent(a.profiler.l1HitRate()),
             percent(b.profiler.l1HitRate()),
             fixed(l2_ratio, 2),
             fixed(b.profiler.totalKernelTimeSec() /
                       a.profiler.totalKernelTimeSec(), 3)});
    }
    std::cout << "\n";
    table.print(std::cout);
    return 0;
}
