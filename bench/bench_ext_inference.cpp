/**
 * @file
 * Extension: training vs. inference characterization. The paper's
 * central framing is that *training* looks nothing like the inference
 * profiles of prior work (Yan et al.): inference is GEMM-dominated
 * (>50% of time) while training spends only ~25% in GEMM/SpMM. This
 * bench runs every workload in both modes and shows that contrast
 * emerging from the same models.
 */

#include <iostream>

#include "base/table.hh"
#include "bench_common.hh"

using namespace gnnmark;

namespace {

double
gemmShare(const WorkloadProfile &p)
{
    auto b = p.profiler.opTimeBreakdown();
    return b[static_cast<size_t>(OpClass::Gemm)] +
           b[static_cast<size_t>(OpClass::Gemv)] +
           b[static_cast<size_t>(OpClass::SpMM)] +
           b[static_cast<size_t>(OpClass::Conv)];
}

} // namespace

int
main()
{
    RunOptions infer = bench::inferenceOptions();
    RunOptions train = infer;
    train.inferenceOnly = false;

    std::cout << "Training vs. inference characterization (the paper's "
                 "contrast with prior inference studies)...\n\n";

    TablePrinter table("GEMM+SpMM+Conv share and step time: training "
                       "vs inference");
    table.setHeader({"Workload", "Train GEMM-ish", "Infer GEMM-ish",
                     "Train fp32", "Infer fp32", "Infer step x"});
    double mean_train = 0, mean_infer = 0;
    int count = 0;
    for (const std::string &name : BenchmarkSuite::workloadNames()) {
        std::cout << "  " << name << "..." << std::flush;
        WorkloadProfile t = CharacterizationRunner(train).run(name);
        WorkloadProfile i = CharacterizationRunner(infer).run(name);
        std::cout << " done\n";
        table.addRow(
            {name, percent(gemmShare(t)), percent(gemmShare(i)),
             percent(t.profiler.instructionMix().fp32Frac),
             percent(i.profiler.instructionMix().fp32Frac),
             fixed(i.wallTimeSec / t.wallTimeSec, 2)});
        mean_train += gemmShare(t);
        mean_infer += gemmShare(i);
        ++count;
    }
    std::cout << "\n";
    table.print(std::cout);
    std::cout << strfmt(
        "\nSuite mean GEMM-ish share: training %.1f%%, inference "
        "%.1f%%\n",
        mean_train / count * 100.0, mean_infer / count * 100.0);
    std::cout
        << "Forward-only steps run 2-3x faster and keep the forward\n"
           "op mix (sampling sorts, gathers); the >50% inference-GEMM\n"
           "figure the paper cites is specific to plain-GCN inference\n"
           "(Yan et al.) - see examples/custom_workload for that model.\n";
    return 0;
}
