/**
 * @file
 * Extension: architectural sensitivity. The paper's takeaways argue
 * for specific hardware changes (better integer throughput, better
 * instruction fetch, bigger/better caches). This bench quantifies a
 * few of those levers by re-running representative workloads on
 * modified device configurations:
 *   - V100 vs. an A100-like part (more SMs, 6.5x the L2, 1.7x HBM bw)
 *   - L2 capacity sweep (the cache takeaway)
 *   - instruction-fetch penalty sweep (the fetch takeaway)
 */

#include <iostream>

#include "base/table.hh"
#include "bench_common.hh"

using namespace gnnmark;

namespace {

WorkloadProfile
profileWith(const std::string &name, const GpuConfig &cfg)
{
    RunOptions opt = bench::benchOptions();
    opt.iterations = 4;
    opt.deviceConfig = cfg;
    return CharacterizationRunner(opt).run(name);
}

const std::vector<std::string> kRepresentative = {
    "PSAGE-MVL", "STGCN", "DGCN", "GW", "TLSTM"};

} // namespace

int
main()
{
    // --- V100 vs A100-like ---
    TablePrinter gens("Generation sensitivity: V100 vs A100-like");
    gens.setHeader({"Workload", "V100 kernel ms", "A100 kernel ms",
                    "Speedup", "V100 L2 hit", "A100 L2 hit"});
    for (const std::string &name : kRepresentative) {
        std::cout << "  " << name << " (V100/A100)..." << std::flush;
        WorkloadProfile v = profileWith(name, GpuConfig::v100());
        WorkloadProfile a = profileWith(name, GpuConfig::a100());
        std::cout << " done\n";
        gens.addRow({name,
                     fixed(v.profiler.totalKernelTimeSec() * 1e3, 2),
                     fixed(a.profiler.totalKernelTimeSec() * 1e3, 2),
                     fixed(v.profiler.totalKernelTimeSec() /
                               a.profiler.totalKernelTimeSec(), 2),
                     percent(v.profiler.l2HitRate()),
                     percent(a.profiler.l2HitRate())});
    }
    std::cout << "\n";
    gens.print(std::cout);

    // --- L2 capacity sweep on an irregular workload ---
    TablePrinter l2("L2 capacity sweep (DGCN)");
    l2.setHeader({"L2 size", "L2 hit", "Kernel ms"});
    for (int mib : {2, 6, 12, 24, 48}) {
        GpuConfig cfg = GpuConfig::v100();
        cfg.l2SizeBytes = static_cast<uint64_t>(mib) * MiB;
        WorkloadProfile p = profileWith("DGCN", cfg);
        l2.addRow({strfmt("%d MiB", mib),
                   percent(p.profiler.l2HitRate()),
                   fixed(p.profiler.totalKernelTimeSec() * 1e3, 2)});
    }
    std::cout << "\n";
    l2.print(std::cout);

    // --- Instruction-fetch penalty sweep on a short-kernel workload ---
    TablePrinter ifetch(
        "Cold instruction-fetch penalty sweep (TLSTM)");
    ifetch.setHeader({"Cold fetch cycles", "IFetch stall share",
                      "Kernel ms"});
    for (int cycles : {60, 120, 180, 360}) {
        GpuConfig cfg = GpuConfig::v100();
        cfg.ifetchColdCycles = cycles;
        WorkloadProfile p = profileWith("TLSTM", cfg);
        StallVector stalls = p.profiler.stallBreakdown();
        ifetch.addRow(
            {strfmt("%d", cycles),
             percent(stalls[static_cast<size_t>(
                 StallReason::InstructionFetch)]),
             fixed(p.profiler.totalKernelTimeSec() * 1e3, 2)});
    }
    std::cout << "\n";
    ifetch.print(std::cout);
    std::cout << "\nBigger L2 and cheaper instruction fetch directly "
                 "attack the paper's two cache takeaways.\n";
    return 0;
}
