/**
 * @file
 * Regenerates the paper's fig3 series (Fig3InstructionMix) by training
 * the full GNNMark suite on the simulated V100 and printing the same
 * rows the paper reports.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/reports.hh"

using namespace gnnmark;

int
main()
{
    auto profiles = bench::characterizeSuite();
    reports::printFig3InstructionMix(profiles, std::cout);
    return 0;
}
