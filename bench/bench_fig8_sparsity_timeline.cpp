/**
 * @file
 * Regenerates Fig. 8: transfer sparsity as a function of training
 * iteration, showing the repeating per-iteration pattern the paper
 * highlights as an opportunity for adaptive compression.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/reports.hh"

using namespace gnnmark;

int
main()
{
    RunOptions opt = bench::benchOptions();
    opt.iterations = 16; // a longer window to expose the pattern
    CharacterizationRunner runner(opt);

    std::cout << "Training representative workloads for "
              << opt.iterations << " iterations...\n\n";
    std::vector<WorkloadProfile> profiles;
    for (const char *name : {"PSAGE-MVL", "DGCN", "ARGA", "TLSTM"})
        profiles.push_back(runner.run(name));

    reports::printFig8SparsityTimeline(profiles, std::cout,
                                       opt.iterations);

    // Per-transfer detail for one workload: the intra-iteration cycle.
    const WorkloadProfile &p = profiles[0];
    std::cout << "Per-transfer sparsity cycle for " << p.name
              << " (first 12 transfers):\n";
    int shown = 0;
    for (const SparsitySample &s : p.profiler.sparsityTimeline()) {
        if (s.iteration >= 1 && shown < 12) {
            std::cout << "  it" << s.iteration << " " << s.tag << ": "
                      << s.zeroFraction * 100.0 << "% zeros\n";
            ++shown;
        }
    }
    return 0;
}
