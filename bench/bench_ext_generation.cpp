/**
 * @file
 * Extension: chunked graph-generation throughput. Streams one
 * medium-sized graph per family through ChunkedEdgeStream, reporting
 * edges/sec, peak resident bytes against the chunk budget, and the
 * degree-distribution shape.
 *
 * With an output path argument the bench additionally writes a JSONL
 * twin containing only *deterministic* fields — edge counts, the
 * order-dependent stream checksum (hi/lo halves), degree statistics —
 * which are bit-identical for a fixed seed across thread counts and
 * chunk granularities, so tools/bench_diff can gate them exactly
 * (--tol 0) against bench/baselines/ext_generation.jsonl. Wall-clock
 * throughput stays in the human table only.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "base/string_utils.hh"
#include "base/table.hh"
#include "base/units.hh"
#include "gen/config.hh"
#include "gen/degree_stats.hh"
#include "gen/edge_stream.hh"
#include "obs/json.hh"

using namespace gnnmark;

namespace {

std::vector<gen::GeneratorConfig>
benchConfigs()
{
    std::vector<gen::GeneratorConfig> configs;
    {
        gen::GeneratorConfig cfg;
        cfg.family = gen::Family::Rmat;
        cfg.n = 1 << 17;
        cfg.m = 1 << 21;
        cfg.chunks = 32;
        configs.push_back(cfg);
    }
    {
        gen::GeneratorConfig cfg;
        cfg.family = gen::Family::Rgg2d;
        cfg.n = 200000;
        cfg.avgDegree = 12.0;
        cfg.chunks = 32;
        configs.push_back(cfg);
    }
    {
        gen::GeneratorConfig cfg;
        cfg.family = gen::Family::Hyperbolic;
        cfg.n = 200000;
        cfg.m = 1 << 21;
        cfg.chunks = 32;
        configs.push_back(cfg);
    }
    {
        gen::GeneratorConfig cfg;
        cfg.family = gen::Family::Grid2d;
        cfg.gridRows = 500;
        cfg.gridCols = 800;
        cfg.gridWrap = true;
        cfg.chunks = 32;
        configs.push_back(cfg);
    }
    return configs;
}

struct FamilyResult
{
    gen::GeneratorConfig cfg;
    int64_t edges = 0;
    uint64_t checksum = 0;
    int64_t peakResidentBytes = 0;
    double wallSec = 0;
    double edgesPerSec = 0;
    gen::DegreeStats degrees;
};

FamilyResult
runFamily(const gen::GeneratorConfig &cfg)
{
    FamilyResult res;
    res.cfg = cfg;
    gen::ChunkedEdgeStream stream(cfg);
    gen::DegreeAccumulator acc(gen::resolvedVertices(cfg));
    gen::EdgeBlock block;
    while (stream.next(block))
        acc.accumulate(block);
    res.edges = stream.edgesEmitted();
    res.checksum = stream.checksum();
    res.peakResidentBytes = stream.peakResidentBytes();
    res.wallSec = stream.generateSec();
    res.edgesPerSec = stream.edgesPerSec();
    res.degrees = acc.finalize();
    return res;
}

std::string
recordJson(const FamilyResult &res)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("type").value("generation");
    w.key("family").value(gen::familyName(res.cfg.family));
    w.key("n").value(gen::resolvedVertices(res.cfg));
    w.key("chunks").value(res.cfg.chunks);
    w.key("seed").value(static_cast<int64_t>(res.cfg.seed));
    w.key("edges").value(res.edges);
    w.key("checksum_hi")
        .value(static_cast<int64_t>(res.checksum >> 32));
    w.key("checksum_lo")
        .value(static_cast<int64_t>(res.checksum & 0xffffffffULL));
    w.key("degree_min").value(res.degrees.minDegree);
    w.key("degree_max").value(res.degrees.maxDegree);
    w.key("degree_mean").value(res.degrees.meanDegree);
    w.key("degree_distinct").value(res.degrees.distinctDegrees);
    w.key("slope_valid").value(res.degrees.slopeValid);
    w.key("loglog_slope").value(res.degrees.powerLawSlope);
    w.endObject();
    return w.str();
}

} // namespace

int
main(int argc, char **argv)
{
    std::cout << "Chunked graph generation, one medium config per "
                 "family (seed 42, 32 chunks)...\n\n";

    std::vector<FamilyResult> results;
    for (const gen::GeneratorConfig &cfg : benchConfigs())
        results.push_back(runFamily(cfg));

    TablePrinter table("Generation throughput");
    table.setHeader({"Family", "Vertices", "Edges", "Medges/s",
                     "Peak res (MiB)", "Budget (MiB)", "Max deg",
                     "LogLog slope"});
    for (const FamilyResult &r : results) {
        table.addRow(
            {gen::familyName(r.cfg.family),
             strfmt("%lld", (long long)gen::resolvedVertices(r.cfg)),
             strfmt("%lld", (long long)r.edges),
             strfmt("%.1f", r.edgesPerSec / 1e6),
             strfmt("%.2f", static_cast<double>(r.peakResidentBytes) /
                                MiB),
             strfmt("%.2f",
                    static_cast<double>(
                        gen::residentBudgetBytes(r.cfg)) /
                        MiB),
             strfmt("%lld", (long long)r.degrees.maxDegree),
             r.degrees.slopeValid
                 ? strfmt("%.3f", r.degrees.powerLawSlope)
                 : std::string("n/a")});
    }
    table.print(std::cout);

    if (argc > 1) {
        std::ofstream out(argv[1]);
        if (!out) {
            std::cerr << "cannot open " << argv[1] << "\n";
            return 1;
        }
        for (const FamilyResult &r : results)
            out << recordJson(r) << "\n";
        std::cout << "\ndeterministic records written to " << argv[1]
                  << "\n";
    }
    return 0;
}
