/**
 * @file
 * Ablation: half-precision training (the paper's future-work item).
 * fp16 halves every element's footprint: transfers shrink, cache
 * lines cover twice the elements, and bandwidth-bound kernels speed
 * up.
 */

#include <iostream>

#include "base/table.hh"
#include "bench_common.hh"

using namespace gnnmark;

int
main()
{
    RunOptions fp32 = bench::benchOptions();
    fp32.iterations = 4;
    RunOptions fp16 = fp32;
    fp16.deviceConfig.elemBytes = 2;

    std::cout << "Half-precision-training ablation (paper Sec. VII "
                 "future work)...\n\n";

    TablePrinter table("fp16 training vs fp32");
    table.setHeader({"Workload", "H2D bytes x", "DRAM-bound time x",
                     "L1 hit (fp32)", "L1 hit (fp16)"});
    for (const std::string &name : BenchmarkSuite::workloadNames()) {
        std::cout << "  " << name << "..." << std::flush;
        WorkloadProfile a = CharacterizationRunner(fp32).run(name);
        WorkloadProfile b = CharacterizationRunner(fp16).run(name);
        std::cout << " done\n";
        table.addRow(
            {name,
             fixed(b.profiler.totalTransferBytes() /
                       a.profiler.totalTransferBytes(), 2),
             fixed(b.profiler.totalKernelTimeSec() /
                       a.profiler.totalKernelTimeSec(), 3),
             percent(a.profiler.l1HitRate()),
             percent(b.profiler.l1HitRate())});
    }
    std::cout << "\n";
    table.print(std::cout);
    std::cout << "fp16 halves the transferred bytes; time gains land "
                 "mostly in bandwidth-bound kernels.\n";
    return 0;
}
