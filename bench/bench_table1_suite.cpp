/**
 * @file
 * Regenerates Table I (the suite inventory) plus per-workload model
 * statistics: parameter footprint and steps per epoch at bench scale.
 */

#include <iostream>

#include "base/table.hh"
#include "base/units.hh"
#include "bench_common.hh"
#include "core/reports.hh"

using namespace gnnmark;

int
main()
{
    reports::printTableOne(std::cout);
    std::cout << "\n";

    // Companion statistics (model sizes at bench scale).
    RunOptions opt = bench::benchOptions();
    TablePrinter stats("Workload statistics at bench scale");
    stats.setHeader({"Workload", "Parameters", "Steps/epoch",
                     "DDP-capable", "Sampler DDP-safe"});
    for (const std::string &name : BenchmarkSuite::workloadNames()) {
        auto wl = BenchmarkSuite::create(name);
        WorkloadConfig cfg;
        cfg.seed = opt.seed;
        cfg.scale = opt.scale;
        wl->setup(cfg);
        stats.addRow({name, formatBytes(wl->parameterBytes()),
                      strfmt("%lld", static_cast<long long>(
                                         wl->iterationsPerEpoch())),
                      wl->supportsMultiGpu() ? "yes" : "no",
                      wl->samplerDdpCompatible() ? "yes" : "no"});
    }
    stats.print(std::cout);
    return 0;
}
