/**
 * @file
 * Regenerates the paper's fig7 series (Fig7Sparsity) by training
 * the full GNNMark suite on the simulated V100 and printing the same
 * rows the paper reports.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/reports.hh"

using namespace gnnmark;

int
main()
{
    auto profiles = bench::characterizeSuite();
    reports::printFig7Sparsity(profiles, std::cout);
    return 0;
}
