/**
 * @file
 * Extension bench: the trace-once/analyze-many workflow. For a set of
 * workloads, records one run, verifies the replay reproduces the live
 * characterization exactly, measures the trace encoding against a raw
 * struct dump, and times a 4-point L2-size sensitivity sweep done live
 * (re-training per point) vs. trace-driven (cache-model replays of one
 * recording) — the paper's motivation for capturing nvprof/NVBit
 * traces once and studying architecture offline.
 */

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "base/table.hh"
#include "base/units.hh"
#include "bench_common.hh"
#include "core/trace_capture.hh"
#include "trace/toolkit.hh"

using namespace gnnmark;

namespace {

double
seconds(std::chrono::steady_clock::time_point begin)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - begin)
        .count();
}

/** The aggregates a replay must reproduce bitwise. */
bool
replayMatchesLive(const WorkloadProfile &live,
                  const WorkloadProfile &replayed)
{
    return live.profiler.totalLaunches() ==
               replayed.profiler.totalLaunches() &&
           live.profiler.totalKernelTimeSec() ==
               replayed.profiler.totalKernelTimeSec() &&
           live.profiler.l1HitRate() == replayed.profiler.l1HitRate() &&
           live.profiler.l2HitRate() == replayed.profiler.l2HitRate() &&
           live.profiler.avgIpc() == replayed.profiler.avgIpc() &&
           live.wallTimeSec == replayed.wallTimeSec;
}

} // namespace

int
main()
{
    const std::vector<std::string> workloads = {"STGCN", "DGCN", "GW",
                                                "KGNNL", "ARGA"};
    const std::vector<double> l2_points_mib = {2, 4, 6, 12};
    RunOptions opt = bench::benchOptions();

    std::cout << "Trace-driven architecture sweeps (scale " << opt.scale
              << ", " << opt.iterations
              << " measured iterations; L2 sweep over 2/4/6/12 MiB)"
              << "...\n\n";

    TablePrinter table("Record/replay vs live re-simulation");
    table.setHeader({"Workload", "trace size", "vs raw", "fidelity",
                     "record (s)", "live sweep (s)", "replay sweep (s)",
                     "speedup"});

    bool all_exact = true;
    int fast_count = 0;
    for (const std::string &name : workloads) {
        std::cout << "  " << name << ": recording..." << std::flush;
        auto begin = std::chrono::steady_clock::now();
        WorkloadProfile live;
        const trace::RecordedTrace trace =
            recordWorkloadTrace(name, opt, &live);
        const double record_sec = seconds(begin);

        const bool exact = replayMatchesLive(
            live, toWorkloadProfile(trace::replayTrace(trace)));
        all_exact = all_exact && exact;

        const uint64_t encoded = trace::serializeTrace(trace).size();
        const uint64_t naive = trace::naiveSizeBytes(trace);

        std::cout << " live sweep..." << std::flush;
        begin = std::chrono::steady_clock::now();
        for (double mib : l2_points_mib) {
            RunOptions point = opt;
            point.deviceConfig.l2SizeBytes =
                static_cast<uint64_t>(mib * MiB);
            CharacterizationRunner runner(point);
            (void)runner.run(name);
        }
        const double live_sec = seconds(begin);

        std::cout << " replay sweep..." << std::flush;
        std::vector<GpuConfig> configs;
        for (double mib : l2_points_mib) {
            GpuConfig cfg = trace.header.config;
            cfg.l2SizeBytes = static_cast<uint64_t>(mib * MiB);
            configs.push_back(cfg);
        }
        begin = std::chrono::steady_clock::now();
        (void)trace::sweepTrace(trace, configs);
        const double replay_sec = seconds(begin);
        std::cout << " done\n";

        const double speedup = replay_sec > 0 ? live_sec / replay_sec
                                              : 0.0;
        if (speedup >= 5.0)
            ++fast_count;
        table.addRow(
            {name, formatBytes(static_cast<double>(encoded)),
             strfmt("%.1fx", static_cast<double>(naive) /
                                 static_cast<double>(encoded)),
             exact ? "bitwise" : "MISMATCH",
             strfmt("%.2f", record_sec), strfmt("%.2f", live_sec),
             strfmt("%.2f", replay_sec), strfmt("%.1fx", speedup)});
    }

    std::cout << "\n";
    table.print(std::cout);
    std::cout << "\nReplay fidelity: "
              << (all_exact ? "every aggregate bitwise-identical "
                              "to the recording run"
                            : "MISMATCH — replay diverged from the "
                              "recording run")
              << "\nSweep speedup:  " << fast_count << "/"
              << workloads.size()
              << " workloads >= 5x vs live (target: at least 3). "
                 "Replay cost is pure simulation, so the ceiling is "
                 "(math + sim) / sim — compute-light workloads sit "
                 "lower.\n";
    return all_exact && fast_count >= 3 ? 0 : 1;
}
