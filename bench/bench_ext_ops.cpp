/**
 * @file
 * Extension: op-level host-kernel autotuning. Times the scalar and
 * SIMD/register-blocked variants of GEMM and CSR SpMM head to head
 * (min-of-N host wall time) and cross-checks every sparse storage
 * format for bitwise-identical output.
 *
 * With an output path argument the bench additionally writes a JSONL
 * twin containing only *deterministic* fields — shapes, nnz, the
 * FNV-1a checksum of the baseline variant's output (hi/lo halves),
 * and the bitwise-equality verdicts across variants and formats —
 * which are identical for a fixed seed across thread counts and SIMD
 * availability, so tools/bench_diff can gate them exactly (--tol 0)
 * against bench/baselines/ext_ops.jsonl. Wall-clock speedups stay in
 * the human table only.
 *
 * When AVX2 is available the bench *asserts* that the tuned variant
 * beats the scalar baseline on at least two GEMM and two SpMM
 * configs — the acceptance bar for shipping the vectorized kernels.
 */

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "base/io.hh"
#include "base/rng.hh"
#include "base/string_utils.hh"
#include "base/table.hh"
#include "obs/json.hh"
#include "ops/cpu_kernels.hh"
#include "tensor/sparse.hh"

using namespace gnnmark;

namespace {

constexpr int kRepeats = 5;

/** Minimum wall milliseconds of `fn` over kRepeats runs. */
template <typename Fn>
double
minMs(Fn &&fn)
{
    double best = 1e30;
    for (int i = 0; i < kRepeats; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        best = std::min(best, ms);
    }
    return best;
}

std::vector<float>
denseOperand(Rng &rng, int64_t elems)
{
    std::vector<float> v(elems);
    for (float &x : v)
        x = rng.uniform(-1.0f, 1.0f);
    return v;
}

CsrMatrix
randomCsr(Rng &rng, int64_t rows, int64_t cols, double density)
{
    std::vector<std::tuple<int32_t, int32_t, float>> triples;
    for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = 0; c < cols; ++c) {
            if (rng.bernoulli(density)) {
                triples.emplace_back(static_cast<int32_t>(r),
                                     static_cast<int32_t>(c),
                                     rng.uniform(-1.0f, 1.0f));
            }
        }
    }
    return csrFromTriples(rows, cols, std::move(triples));
}

uint64_t
checksumFloats(const std::vector<float> &v)
{
    return fnv1a(reinterpret_cast<const uint8_t *>(v.data()),
                 v.size() * sizeof(float));
}

bool
bitwiseEqual(const std::vector<float> &a, const std::vector<float> &b)
{
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(),
                       a.size() * sizeof(float)) == 0;
}

struct BenchRow
{
    std::string op;     ///< "gemm" | "spmm"
    std::string shape;
    double density = 1.0;
    int64_t nnz = 0;
    uint64_t checksum = 0;   ///< baseline-variant output
    bool variantsEqual = false; ///< tuned output == baseline, bitwise
    bool formatsEqual = true;   ///< coo/bell == csr (spmm only)
    double baseMs = 0;       ///< scalar/naive, min over repeats
    double tunedMs = 0;      ///< tiled/vector, min over repeats
};

std::string
recordJson(const BenchRow &row)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("type").value("ops_bench");
    w.key("op").value(row.op);
    w.key("shape").value(row.shape);
    w.key("density").value(row.density);
    w.key("nnz").value(row.nnz);
    w.key("checksum_hi")
        .value(static_cast<int64_t>(row.checksum >> 32));
    w.key("checksum_lo")
        .value(static_cast<int64_t>(row.checksum & 0xffffffffULL));
    w.key("variants_bitwise_equal").value(row.variantsEqual);
    w.key("formats_bitwise_equal").value(row.formatsEqual);
    w.endObject();
    return w.str();
}

} // namespace

int
main(int argc, char **argv)
{
    const bool simd = ops::kern::simdActive();
    std::cout << "Host-kernel variant timing (min of " << kRepeats
              << " runs, " << (simd ? "AVX2 active" : "scalar only")
              << ")...\n\n";

    std::vector<BenchRow> rows;

    // --- GEMM: naive vs register-tiled/AVX2 ---
    struct GemmCase { int64_t m, n, k; };
    const std::vector<GemmCase> gemm_cases = {
        {128, 128, 128}, {256, 256, 256}, {384, 384, 384}};
    for (const GemmCase &gc : gemm_cases) {
        Rng rng(1000 + gc.m);
        const std::vector<float> a = denseOperand(rng, gc.m * gc.k);
        const std::vector<float> b = denseOperand(rng, gc.k * gc.n);
        std::vector<float> c_naive(gc.m * gc.n);
        std::vector<float> c_tiled(gc.m * gc.n);
        BenchRow row;
        row.op = "gemm";
        row.shape = strfmt("%lldx%lldx%lld", (long long)gc.m,
                           (long long)gc.n, (long long)gc.k);
        row.nnz = gc.m * gc.k;
        row.baseMs = minMs([&] {
            std::fill(c_naive.begin(), c_naive.end(), 0.0f);
            ops::kern::gemmNaive(a.data(), b.data(), c_naive.data(),
                                 gc.m, gc.n, gc.k);
        });
        row.tunedMs = minMs([&] {
            std::fill(c_tiled.begin(), c_tiled.end(), 0.0f);
            ops::kern::gemmTiled(a.data(), b.data(), c_tiled.data(),
                                 gc.m, gc.n, gc.k);
        });
        row.checksum = checksumFloats(c_naive);
        row.variantsEqual = bitwiseEqual(c_naive, c_tiled);
        rows.push_back(row);
    }

    // --- SpMM: CSR scalar vs vector, plus COO/blocked-ELL parity ---
    struct SpmmCase { int64_t rows, cols, f; double density; };
    const std::vector<SpmmCase> spmm_cases = {
        {2048, 2048, 64, 0.01},
        {4096, 4096, 128, 0.005},
        {1024, 1024, 32, 0.05}};
    for (const SpmmCase &sc : spmm_cases) {
        Rng rng(2000 + sc.rows);
        const CsrMatrix csr =
            randomCsr(rng, sc.rows, sc.cols, sc.density);
        const CooMatrix coo = cooFromCsr(csr);
        const BlockedEllMatrix bell = bellFromCsr(csr);
        const std::vector<float> b =
            denseOperand(rng, sc.cols * sc.f);
        const size_t out_elems =
            static_cast<size_t>(sc.rows) * sc.f;
        std::vector<float> c_scalar(out_elems);
        std::vector<float> c_vector(out_elems);
        std::vector<float> c_coo(out_elems, 0.0f);
        std::vector<float> c_bell(out_elems, 0.0f);
        BenchRow row;
        row.op = "spmm";
        row.shape = strfmt("%lldx%lldx%lld", (long long)sc.rows,
                           (long long)sc.cols, (long long)sc.f);
        row.density = sc.density;
        row.nnz = csr.nnz();
        row.baseMs = minMs([&] {
            std::fill(c_scalar.begin(), c_scalar.end(), 0.0f);
            ops::kern::spmmCsrScalar(csr, b.data(), c_scalar.data(),
                                     sc.f);
        });
        row.tunedMs = minMs([&] {
            std::fill(c_vector.begin(), c_vector.end(), 0.0f);
            ops::kern::spmmCsrVector(csr, b.data(), c_vector.data(),
                                     sc.f);
        });
        ops::kern::spmmCoo(coo, b.data(), c_coo.data(), sc.f);
        ops::kern::spmmBell(bell, b.data(), c_bell.data(), sc.f);
        row.checksum = checksumFloats(c_scalar);
        row.variantsEqual = bitwiseEqual(c_scalar, c_vector);
        row.formatsEqual = bitwiseEqual(c_scalar, c_coo) &&
                           bitwiseEqual(c_scalar, c_bell);
        rows.push_back(row);
    }

    TablePrinter table("Variant timing (host)");
    table.setHeader({"Op", "Shape", "Density", "nnz", "Scalar ms",
                     "Tuned ms", "Speedup", "Bitwise"});
    int gemm_wins = 0, spmm_wins = 0;
    bool all_equal = true;
    for (const BenchRow &row : rows) {
        const double speedup =
            row.tunedMs > 0 ? row.baseMs / row.tunedMs : 0.0;
        if (speedup > 1.0)
            (row.op == "gemm" ? gemm_wins : spmm_wins)++;
        all_equal &= row.variantsEqual && row.formatsEqual;
        table.addRow({row.op, row.shape, strfmt("%.3g", row.density),
                      strfmt("%lld", (long long)row.nnz),
                      strfmt("%.3f", row.baseMs),
                      strfmt("%.3f", row.tunedMs),
                      strfmt("%.2fx", speedup),
                      row.variantsEqual && row.formatsEqual ? "yes"
                                                            : "NO"});
    }
    table.print(std::cout);

    if (!all_equal) {
        std::cerr << "\nFATAL: a tuned variant or storage format "
                     "diverged bitwise from the scalar baseline\n";
        return 1;
    }
    if (simd && (gemm_wins < 2 || spmm_wins < 2)) {
        std::cerr << "\nFATAL: tuned variants won only " << gemm_wins
                  << " gemm / " << spmm_wins
                  << " spmm configs (need >= 2 each with AVX2)\n";
        return 1;
    }
    std::cout << "\ntuned variants won " << gemm_wins << "/"
              << gemm_cases.size() << " gemm and " << spmm_wins << "/"
              << spmm_cases.size()
              << " spmm configs, all outputs bitwise equal\n";

    if (argc > 1) {
        std::ofstream out(argv[1]);
        if (!out) {
            std::cerr << "cannot open " << argv[1] << "\n";
            return 1;
        }
        for (const BenchRow &row : rows)
            out << recordJson(row) << "\n";
        std::cout << "deterministic records written to " << argv[1]
                  << "\n";
    }
    return 0;
}
