/**
 * @file
 * Regenerates Fig. 9: strong scaling of the suite under (simulated)
 * PyTorch DistributedDataParallel on 1/2/4 NVLink-connected V100s.
 * ARGA is excluded exactly as in the paper (whole-graph training).
 */

#include <iostream>

#include "bench_common.hh"
#include "core/reports.hh"
#include "multigpu/ddp.hh"

using namespace gnnmark;

int
main()
{
    RunOptions opt = bench::benchOptions();
    WorkloadConfig base;
    base.seed = opt.seed;
    base.scale = opt.scale;

    DdpTrainer trainer;
    std::vector<std::pair<std::string, std::vector<ScalingResult>>>
        curves;
    for (const std::string &name : BenchmarkSuite::workloadNames()) {
        auto wl = BenchmarkSuite::create(name);
        if (!wl->supportsMultiGpu()) {
            std::cout << name
                      << ": excluded (whole-graph training, as in the "
                         "paper)\n";
            continue;
        }
        std::cout << "Scaling " << name << " over 1/2/4 GPUs..."
                  << std::flush;
        curves.emplace_back(
            name, trainer.scalingCurve(*wl, base, {1, 2, 4},
                                       /*measured_iterations=*/3));
        std::cout << " done\n";
    }
    std::cout << "\n";
    reports::printFig9Scaling(curves, std::cout);
    std::cout
        << "Expected shape (paper): DGCN/STGCN/GW gain, TLSTM flat,\n"
        << "PSAGE degrades because its batch sampler replicates work\n"
        << "across replicas instead of sharding it.\n";
    return 0;
}
