/** @file Optimiser tests. */

#include <gtest/gtest.h>

#include "nn/optim.hh"
#include "ops/var_ops.hh"

using namespace gnnmark;

namespace {

/** One SGD/Adam step against a known quadratic. */
Variable
quadraticLoss(const Variable &x)
{
    // L = sum((x - 3)^2)
    return ag::sumAll(
        ag::mul(ag::addScalar(x, -3.0f), ag::addScalar(x, -3.0f)));
}

} // namespace

TEST(Sgd, SingleStepMath)
{
    Variable p = Variable::param(Tensor::full({2}, 1.0f));
    nn::Sgd opt({p}, /*lr=*/0.1f);
    quadraticLoss(p).backward();
    // dL/dp = 2(p - 3) = -4.
    opt.step();
    EXPECT_NEAR(p.value()(0), 1.0f - 0.1f * (-4.0f), 1e-5f);
}

TEST(Sgd, SkipsParamsWithoutGrad)
{
    Variable p = Variable::param(Tensor::full({2}, 1.0f));
    nn::Sgd opt({p}, 0.1f);
    opt.step(); // no backward happened
    EXPECT_FLOAT_EQ(p.value()(0), 1.0f);
}

TEST(Sgd, MomentumAccumulates)
{
    Variable p = Variable::param(Tensor::full({1}, 0.0f));
    nn::Sgd opt({p}, 0.1f, /*momentum=*/0.9f);
    for (int i = 0; i < 3; ++i) {
        opt.zeroGrad();
        // Constant gradient of 1.
        Variable l = ag::sumAll(p);
        l.backward();
        opt.step();
    }
    // Velocity: 1, 1.9, 2.71 -> p = -0.1*(1 + 1.9 + 2.71).
    EXPECT_NEAR(p.value()(0), -0.1f * (1.0f + 1.9f + 2.71f), 1e-5f);
}

TEST(Adam, ConvergesOnQuadratic)
{
    Variable p = Variable::param(Tensor::full({4}, 10.0f));
    nn::Adam opt({p}, 0.2f);
    for (int i = 0; i < 300; ++i) {
        opt.zeroGrad();
        quadraticLoss(p).backward();
        opt.step();
    }
    for (int64_t j = 0; j < 4; ++j)
        EXPECT_NEAR(p.value()(j), 3.0f, 0.05f);
}

TEST(Adam, FirstStepIsLrSized)
{
    Variable p = Variable::param(Tensor::full({1}, 0.0f));
    nn::Adam opt({p}, 0.01f);
    opt.zeroGrad();
    ag::sumAll(ag::scale(p, 5.0f)).backward();
    opt.step();
    // Bias-corrected Adam moves ~lr on the first step.
    EXPECT_NEAR(p.value()(0), -0.01f, 1e-4f);
}

TEST(Optimizer, ParameterBytes)
{
    Variable a = Variable::param(Tensor::zeros({10, 10}));
    Variable b = Variable::param(Tensor::zeros({5}));
    nn::Sgd opt({a, b}, 0.1f);
    EXPECT_DOUBLE_EQ(opt.parameterBytes(), (100 + 5) * 4.0);
}

TEST(Optimizer, ZeroGradClearsAll)
{
    Variable p = Variable::param(Tensor::full({2}, 1.0f));
    nn::Adam opt({p}, 0.1f);
    ag::sumAll(p).backward();
    EXPECT_TRUE(p.hasGrad());
    opt.zeroGrad();
    EXPECT_FALSE(p.hasGrad());
}

TEST(OptimizerDeath, RejectsNonTrainableParams)
{
    Variable frozen(Tensor::zeros({2}));
    EXPECT_DEATH(nn::Sgd({frozen}, 0.1f), "non-trainable");
}
