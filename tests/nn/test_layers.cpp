/** @file Layer tests: Linear, Embedding, LSTM cell, attention, norms. */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.hh"
#include "nn/loss.hh"
#include "ops/elementwise.hh"

using namespace gnnmark;

TEST(Linear, ShapeAndBias)
{
    Rng rng(71);
    nn::Linear lin(8, 3, rng);
    Variable x(Tensor::randn({5, 8}, rng));
    Variable y = lin.forward(x);
    EXPECT_EQ(y.value().shape(), (std::vector<int64_t>{5, 3}));
    EXPECT_EQ(lin.parameterCount(), 8 * 3 + 3);
}

TEST(Linear, NoBiasVariant)
{
    Rng rng(72);
    nn::Linear lin(4, 4, rng, /*bias=*/false);
    EXPECT_EQ(lin.parameterCount(), 16);
    Variable zero(Tensor::zeros({2, 4}));
    Variable y = lin.forward(zero);
    EXPECT_FLOAT_EQ(maxAbsDiff(y.value(), Tensor::zeros({2, 4})), 0.0f);
}

TEST(Linear, TrainsOnLeastSquares)
{
    Rng rng(73);
    nn::Linear lin(3, 1, rng);
    // Target function y = 2x0 - x1 + 0.5x2 + 1.
    Tensor xs = Tensor::randn({64, 3}, rng);
    Tensor ys = Tensor::zeros({64, 1});
    for (int64_t i = 0; i < 64; ++i) {
        ys(i, 0) = 2 * xs(i, 0) - xs(i, 1) + 0.5f * xs(i, 2) + 1.0f;
    }
    float first_loss = 0, last_loss = 0;
    for (int step = 0; step < 200; ++step) {
        lin.zeroGrad();
        Variable loss = ag::mseLoss(lin.forward(Variable(xs)),
                                    Variable(ys));
        loss.backward();
        auto params = lin.parameters();
        for (Variable &p : params) {
            float *v = p.value().data();
            const float *g = p.grad().data();
            for (int64_t j = 0; j < p.value().numel(); ++j)
                v[j] -= 0.05f * g[j];
        }
        if (step == 0)
            first_loss = loss.value()(0);
        last_loss = loss.value()(0);
    }
    EXPECT_LT(last_loss, first_loss * 0.05f);
}

TEST(Embedding, LooksUpAndTrains)
{
    Rng rng(74);
    nn::Embedding emb(10, 4, rng);
    Variable rows = emb.forward({3, 3, 7});
    EXPECT_EQ(rows.value().shape(), (std::vector<int64_t>{3, 4}));
    EXPECT_TRUE(allClose(
        ops::sliceRows(rows.value(), 0, 1),
        ops::sliceRows(rows.value(), 1, 2)));

    ag::sumAll(rows).backward();
    // Row 3 was used twice: gradient 2, row 7 once: gradient 1.
    Variable table = emb.parameters()[0];
    EXPECT_NEAR(table.grad()(3, 0), 2.0f, 1e-5f);
    EXPECT_NEAR(table.grad()(7, 0), 1.0f, 1e-5f);
    EXPECT_NEAR(table.grad()(0, 0), 0.0f, 1e-5f);
}

TEST(BatchNorm1dModule, Normalises)
{
    Rng rng(75);
    nn::BatchNorm1d bn(4);
    Variable x(Tensor::randn({100, 4}, rng, 5.0f));
    Variable y = bn.forward(x);
    double sum = 0;
    for (int64_t i = 0; i < 100; ++i)
        sum += y.value()(i, 0);
    EXPECT_NEAR(sum / 100, 0.0, 1e-3);
}

TEST(LstmCell, StateShapesAndBounds)
{
    Rng rng(76);
    nn::LstmCell cell(6, 8, rng);
    auto s0 = cell.initial(3);
    Variable x(Tensor::randn({3, 6}, rng));
    auto s1 = cell.forward(x, s0);
    EXPECT_EQ(s1.h.value().shape(), (std::vector<int64_t>{3, 8}));
    EXPECT_EQ(s1.c.value().shape(), (std::vector<int64_t>{3, 8}));
    // h = o * tanh(c) is bounded by (-1, 1).
    for (int64_t i = 0; i < s1.h.value().numel(); ++i)
        EXPECT_LT(std::abs(s1.h.value().data()[i]), 1.0f);
}

TEST(LstmCell, GradientsReachAllParams)
{
    Rng rng(77);
    nn::LstmCell cell(4, 4, rng);
    auto s0 = cell.initial(2);
    Variable x = Variable::param(Tensor::randn({2, 4}, rng));
    auto s1 = cell.forward(x, s0);
    auto s2 = cell.forward(x, s1); // two steps, shared weights
    ag::sumAll(s2.h).backward();
    EXPECT_TRUE(x.hasGrad());
    for (const Variable &p : cell.parameters())
        EXPECT_TRUE(p.hasGrad());
}

TEST(Attention, OutputShapeAndGrad)
{
    Rng rng(78);
    nn::MultiheadAttention attn(16, 4, rng);
    Variable q = Variable::param(Tensor::randn({6, 16}, rng));
    Variable kv(Tensor::randn({10, 16}, rng));
    Variable out = attn.forward(q, kv, kv);
    EXPECT_EQ(out.value().shape(), (std::vector<int64_t>{6, 16}));
    ag::sumAll(out).backward();
    EXPECT_TRUE(q.hasGrad());
}

TEST(AttentionDeath, HeadsMustDivideDim)
{
    Rng rng(79);
    EXPECT_DEATH(nn::MultiheadAttention(10, 3, rng), "divisible");
}

TEST(Glu, GatesCorrectly)
{
    Variable a(Tensor::full({2, 2}, 3.0f));
    Variable b(Tensor::zeros({2, 2})); // zeros: sigmoid = 0.5
    Variable y = nn::glu(a, b);
    EXPECT_NEAR(y.value()(0, 0), 1.5f, 1e-6f);
}

TEST(Loss, CrossEntropyUniformBaseline)
{
    Tensor logits = Tensor::zeros({4, 8}); // all zeros: uniform distribution
    Variable loss =
        nn::crossEntropy(Variable(logits), {0, 1, 2, 3});
    EXPECT_NEAR(loss.value()(0), std::log(8.0f), 1e-4f);
}

TEST(Loss, MaxMarginZeroWhenWellSeparated)
{
    Variable pos(Tensor::full({4}, 10.0f));
    Variable neg(Tensor::full({4}, -10.0f));
    Variable loss = nn::maxMarginLoss(pos, neg, 1.0f);
    EXPECT_FLOAT_EQ(loss.value()(0), 0.0f);
}

TEST(Loss, AccuracyMetric)
{
    Tensor logits = Tensor::fromVector({2, 3},
                                       {0.1f, 0.9f, 0.0f,
                                        0.8f, 0.1f, 0.1f});
    EXPECT_DOUBLE_EQ(nn::accuracy(logits, {1, 0}), 1.0);
    EXPECT_DOUBLE_EQ(nn::accuracy(logits, {0, 0}), 0.5);
}
