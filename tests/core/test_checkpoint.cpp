/** @file Checkpoint/resume tests: a restored run must continue the
 *  training stream bitwise-identically to an uninterrupted one. */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "base/io.hh"
#include "common/file_corruption.hh"
#include "core/checkpoint.hh"
#include "core/suite.hh"
#include "ops/exec_context.hh"
#include "sim/gpu_device.hh"

using namespace gnnmark;

namespace {

WorkloadConfig
smallConfig()
{
    WorkloadConfig cfg;
    cfg.seed = 77;
    cfg.scale = 0.25;
    return cfg;
}

/** Train `iters` steps under a bound device, collecting losses. */
std::vector<float>
train(Workload &wl, GpuDevice &dev, int iters)
{
    ContextGuard guard(&dev);
    std::vector<float> losses;
    for (int i = 0; i < iters; ++i)
        losses.push_back(wl.trainIteration());
    return losses;
}

} // namespace

/** Bitwise-deterministic resume, per ISSUE acceptance: >= 2 models. */
class CheckpointResume : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CheckpointResume, ResumedRunIsBitwiseIdentical)
{
    // Uninterrupted reference: 4 + 4 iterations straight through.
    auto ref = BenchmarkSuite::create(GetParam());
    ref->setup(smallConfig());
    ASSERT_TRUE(ref->supportsCheckpoint());
    GpuDevice ref_dev(GpuConfig::v100(), 9);
    train(*ref, ref_dev, 4);
    Checkpoint mid = captureCheckpoint(*ref, 4);
    std::vector<float> ref_losses = train(*ref, ref_dev, 4);
    Checkpoint ref_final = captureCheckpoint(*ref, 8);

    // Interrupted run: fresh process state, restore, same 4 tail steps.
    auto resumed = BenchmarkSuite::create(GetParam());
    resumed->setup(smallConfig());
    EXPECT_EQ(restoreCheckpoint(*resumed, mid), 4u);
    GpuDevice resumed_dev(GpuConfig::v100(), 9);
    std::vector<float> resumed_losses = train(*resumed, resumed_dev, 4);
    Checkpoint resumed_final = captureCheckpoint(*resumed, 8);

    EXPECT_EQ(ref_losses, resumed_losses);
    ASSERT_EQ(ref_final.state.size(), resumed_final.state.size());
    EXPECT_EQ(ref_final.state, resumed_final.state); // bitwise
}

INSTANTIATE_TEST_SUITE_P(Suite, CheckpointResume,
                         ::testing::Values("STGCN", "KGNNL", "ARGA"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

TEST(Checkpoint, EverySuiteWorkloadRoundTrips)
{
    for (const std::string &name : BenchmarkSuite::workloadNames()) {
        auto wl = BenchmarkSuite::create(name);
        wl->setup(smallConfig());
        ASSERT_TRUE(wl->supportsCheckpoint()) << name;
        GpuDevice dev;
        train(*wl, dev, 1);
        Checkpoint ckpt = captureCheckpoint(*wl, 1);
        EXPECT_GT(ckpt.sizeBytes(), 0) << name;
        // Restoring a freshly captured image into the same workload
        // must reproduce the image exactly.
        EXPECT_EQ(restoreCheckpoint(*wl, ckpt), 1u) << name;
        Checkpoint again = captureCheckpoint(*wl, 1);
        EXPECT_EQ(ckpt.state, again.state) << name;
    }
}

TEST(Checkpoint, FileRoundTrip)
{
    auto wl = BenchmarkSuite::create("STGCN");
    wl->setup(smallConfig());
    GpuDevice dev;
    train(*wl, dev, 2);
    Checkpoint ckpt = captureCheckpoint(*wl, 2);

    const std::string path =
        ::testing::TempDir() + "gnnmark_ckpt_roundtrip.bin";
    writeCheckpointFile(path, ckpt);
    Checkpoint loaded = readCheckpointFile(path);
    std::remove(path.c_str());

    EXPECT_EQ(loaded.workload, ckpt.workload);
    EXPECT_EQ(loaded.step, ckpt.step);
    EXPECT_EQ(loaded.state, ckpt.state);
}

TEST(CheckpointDeath, WorkloadNameMismatchIsFatal)
{
    auto a = BenchmarkSuite::create("STGCN");
    a->setup(smallConfig());
    Checkpoint ckpt = captureCheckpoint(*a, 0);

    auto b = BenchmarkSuite::create("KGNNL");
    b->setup(smallConfig());
    EXPECT_EXIT(restoreCheckpoint(*b, ckpt),
                ::testing::ExitedWithCode(1), "KGNNL");
}

/** Writes one checkpoint file per test and cleans it up. */
class CheckpointFile : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto wl = BenchmarkSuite::create("STGCN");
        wl->setup(smallConfig());
        path_ = ::testing::TempDir() + "gnnmark_ckpt_io.bin";
        writeCheckpointFile(path_, captureCheckpoint(*wl, 0));
    }

    void TearDown() override { std::remove(path_.c_str()); }

    /** Read expecting a typed failure; returns the error's kind. */
    IoError::Kind
    readKind()
    {
        try {
            readCheckpointFile(path_);
        } catch (const IoError &e) {
            return e.kind();
        }
        ADD_FAILURE() << "readCheckpointFile accepted a corrupt file";
        return IoError::Kind::OpenFailed;
    }

    std::string path_;
};

TEST_F(CheckpointFile, CorruptedPayloadIsTypedError)
{
    test::flipByteAt(path_, -3);
    EXPECT_EQ(readKind(), IoError::Kind::Corrupt);
}

TEST_F(CheckpointFile, TruncatedFileIsTypedError)
{
    test::truncateToFraction(path_, 0.5);
    EXPECT_EQ(readKind(), IoError::Kind::ShortRead);
}

TEST_F(CheckpointFile, WrongMagicIsTypedError)
{
    test::flipByteAt(path_, 0);
    EXPECT_EQ(readKind(), IoError::Kind::BadMagic);
}

TEST_F(CheckpointFile, FutureVersionIsTypedError)
{
    test::flipByteAt(path_, 8); // first byte of the version word
    EXPECT_EQ(readKind(), IoError::Kind::BadVersion);
}

TEST_F(CheckpointFile, TrailingBytesAreTypedError)
{
    test::appendGarbage(path_, 7);
    EXPECT_EQ(readKind(), IoError::Kind::TrailingBytes);
}

TEST_F(CheckpointFile, MissingFileIsTypedError)
{
    std::remove(path_.c_str());
    EXPECT_EQ(readKind(), IoError::Kind::OpenFailed);
}
