/** @file Suite registry and report emitter tests. */

#include <gtest/gtest.h>

#include <sstream>

#include "core/reports.hh"
#include "core/suite.hh"

using namespace gnnmark;

TEST(Suite, RegistryHasAllNineConfigs)
{
    const auto &names = BenchmarkSuite::workloadNames();
    EXPECT_EQ(names.size(), 9u);
    EXPECT_EQ(names.front(), "PSAGE-MVL");
    EXPECT_EQ(names.back(), "TLSTM");
}

TEST(Suite, CreateAllInstantiatesEverything)
{
    auto all = BenchmarkSuite::createAll();
    EXPECT_EQ(all.size(), BenchmarkSuite::workloadNames().size());
    for (size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i]->name(), BenchmarkSuite::workloadNames()[i]);
}

TEST(SuiteDeath, UnknownWorkloadIsFatal)
{
    EXPECT_EXIT(BenchmarkSuite::create("NOPE"),
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(Reports, TableOnePrintsEveryWorkload)
{
    std::ostringstream os;
    reports::printTableOne(os);
    for (const std::string &name : BenchmarkSuite::workloadNames())
        EXPECT_NE(os.str().find(name), std::string::npos) << name;
    EXPECT_NE(os.str().find("PinSAGE"), std::string::npos);
    EXPECT_NE(os.str().find("DGL"), std::string::npos);
    EXPECT_NE(os.str().find("Heterogeneous"), std::string::npos);
}
