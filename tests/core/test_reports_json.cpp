/** @file Tests for the JSON report twins and end-to-end telemetry. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/characterization.hh"
#include "core/reports_json.hh"
#include "obs/bench_compare.hh"
#include "obs/json.hh"
#include "obs/telemetry.hh"

using namespace gnnmark;

namespace {

WorkloadProfile
tinyRun(obs::TelemetrySink *telemetry = nullptr)
{
    RunOptions opt;
    opt.scale = 0.25;
    opt.iterations = 2;
    opt.telemetry = telemetry;
    CharacterizationRunner runner(opt);
    return runner.run("STGCN");
}

} // namespace

TEST(ReportsJson, FiguresDocumentCoversEveryPaperFigure)
{
    const WorkloadProfile profile = tinyRun();
    const std::string doc = reports::figuresJson({profile});
    const obs::JsonValue root = obs::parseJson(doc);
    const obs::JsonValue *wl = root.find("workloads")->find("STGCN");
    ASSERT_NE(wl, nullptr);
    for (const char *key :
         {"fig2_op_time_breakdown", "fig3_instruction_mix",
          "fig4_throughput", "fig5_stall_breakdown", "fig6_cache",
          "fig7_sparsity", "losses", "epoch_time_sec",
          "parameter_bytes"}) {
        EXPECT_NE(wl->find(key), nullptr) << "missing " << key;
    }
    EXPECT_EQ(wl->find("losses")->array.size(), 2u);
    // Op-time shares are a distribution.
    double share_sum = 0;
    for (const auto &[name, v] :
         wl->find("fig2_op_time_breakdown")->object)
        share_sum += v.number;
    EXPECT_NEAR(share_sum, 1.0, 1e-9);
}

TEST(ReportsJson, ManifestRecordCarriesConfigAndProfile)
{
    const WorkloadProfile profile = tinyRun();
    RunOptions opt;
    opt.scale = 0.25;
    opt.iterations = 2;
    const std::string line =
        reports::runManifestJson(profile, opt, /*threads=*/3,
                                 /*host_wall_us=*/123.0);
    const obs::JsonValue m = obs::parseJson(line);
    EXPECT_EQ(m.find("type")->string, "manifest");
    EXPECT_EQ(m.find("workload")->string, "STGCN");
    EXPECT_DOUBLE_EQ(m.find("seed")->number, 42);
    EXPECT_DOUBLE_EQ(m.find("scale")->number, 0.25);
    EXPECT_DOUBLE_EQ(m.find("threads")->number, 3);
    EXPECT_DOUBLE_EQ(m.find("host_wall_us")->number, 123);
    ASSERT_NE(m.find("profile"), nullptr);
    EXPECT_NE(m.find("profile")->find("fig4_throughput"), nullptr);
}

TEST(Telemetry, RunnerWritesOneRecordPerIterationPlusNothingElse)
{
    const std::string path =
        ::testing::TempDir() + "gnnmark_reports_json_tele.jsonl";
    {
        obs::TelemetrySink sink(path);
        tinyRun(&sink);
        EXPECT_EQ(sink.recordCount(), 2); // iterations only; the CLI
                                          // appends the manifest
    }
    std::ifstream in(path);
    std::string line;
    int iterations = 0;
    while (std::getline(in, line)) {
        const obs::JsonValue rec = obs::parseJson(line);
        EXPECT_EQ(rec.find("type")->string, "iteration");
        EXPECT_EQ(rec.find("workload")->string, "STGCN");
        EXPECT_DOUBLE_EQ(rec.find("iteration")->number, iterations);
        EXPECT_GT(rec.find("sim_time_us")->number, 0);
        EXPECT_GT(rec.find("kernels")->number, 0);
        ASSERT_NE(rec.find("metrics"), nullptr);
        EXPECT_GT(rec.find("metrics")
                      ->find("counters")
                      ->find("sim.kernel_launches")
                      ->number,
                  0);
        ++iterations;
    }
    std::remove(path.c_str());
    EXPECT_EQ(iterations, 2);
}

TEST(Telemetry, SameSeedSameProcessIsDeterministic)
{
    const std::string base = ::testing::TempDir();
    const std::string path_a = base + "gnnmark_tele_det_a.jsonl";
    const std::string path_b = base + "gnnmark_tele_det_b.jsonl";
    {
        obs::TelemetrySink a(path_a);
        tinyRun(&a);
    }
    {
        obs::TelemetrySink b(path_b);
        tinyRun(&b);
    }
    // The determinism contract: the numeric stream (losses, kernel
    // and transfer counts, bytes moved) is exactly reproducible for a
    // fixed seed; cache/timing metrics hash real heap addresses, so
    // they drift by a few percent between runs and the regression
    // gate covers them with a tolerance.
    const auto flat_a = obs::flattenTelemetryFile(path_a);
    const auto flat_b = obs::flattenTelemetryFile(path_b);
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
    for (const char *key :
         {"iteration.STGCN.0.loss", "iteration.STGCN.1.loss",
          "iteration.STGCN.0.kernels", "iteration.STGCN.1.kernels",
          "iteration.STGCN.1.metrics.counters.sim.kernel_launches",
          "iteration.STGCN.1.metrics.counters.sim.transfer_bytes"}) {
        ASSERT_EQ(flat_a.count(key), 1u) << key;
        EXPECT_DOUBLE_EQ(flat_a.at(key), flat_b.at(key)) << key;
    }
    obs::CompareOptions opts;
    opts.defaultTolerance = 0.05;
    opts.absoluteFloor = 1e-4;
    // Kernel-time histogram buckets sit on log2 boundaries, so the
    // few-percent timing jitter can move whole kernels between
    // buckets; the per-bucket counts are not gate material.
    opts.ignoreSubstrings.push_back(".metrics.histograms.");
    const obs::CompareResult r =
        compareMetricMaps(flat_a, flat_b, opts);
    for (const obs::CompareFailure &f : r.failures)
        ADD_FAILURE() << describeFailure(f);
    EXPECT_GT(r.comparedKeys, 20);
}

TEST(ReportsJson, ScalingDocumentShapesFig9)
{
    std::vector<std::pair<std::string, std::vector<ScalingResult>>>
        curves(1);
    curves[0].first = "STGCN";
    ScalingResult one;
    one.worldSize = 1;
    one.epochTimeSec = 2.0;
    one.speedup = 1.0;
    ScalingResult two;
    two.worldSize = 2;
    two.epochTimeSec = 1.2;
    two.speedup = 2.0 / 1.2;
    curves[0].second = {one, two};

    const obs::JsonValue doc =
        obs::parseJson(reports::scalingJson(curves));
    const obs::JsonValue *curve =
        doc.find("fig9_scaling")->find("STGCN");
    ASSERT_NE(curve, nullptr);
    ASSERT_EQ(curve->array.size(), 2u);
    EXPECT_DOUBLE_EQ(curve->array[1].find("world_size")->number, 2);
    // JSON numbers round-trip through %.12g, so allow that much slack.
    EXPECT_NEAR(curve->array[1].find("speedup")->number, 2.0 / 1.2,
                1e-9);
}

TEST(ReportsJson, ScalingDocumentCarriesOverlapSplit)
{
    ScalingResult p;
    p.worldSize = 2;
    p.epochTimeSec = 1.5;
    p.computeTimeSec = 1.0;
    p.commTimeSec = 0.8;
    p.commExposedSec = 0.5;
    p.overlapFrac = 0.375;
    p.speedup = 0.9;
    const std::string doc = reports::scalingJson({{"DGCN", {p}}});
    const obs::JsonValue root = obs::parseJson(doc);
    const obs::JsonValue *curve =
        root.find("fig9_scaling")->find("DGCN");
    ASSERT_NE(curve, nullptr);
    ASSERT_EQ(curve->array.size(), 1u);
    const obs::JsonValue &point = curve->array[0];
    EXPECT_EQ(point.find("comm_time_sec")->number, 0.8);
    EXPECT_EQ(point.find("comm_exposed_sec")->number, 0.5);
    EXPECT_EQ(point.find("overlap_frac")->number, 0.375);
}

TEST(ReportsJson, ScalingRecordNestsDdpKeysPerWorldSize)
{
    ScalingResult a;
    a.worldSize = 1;
    a.epochTimeSec = 1.0;
    a.computeTimeSec = 1.0;
    a.speedup = 1.0;
    ScalingResult b;
    b.worldSize = 4;
    b.epochTimeSec = 0.5;
    b.computeTimeSec = 0.4;
    b.commTimeSec = 0.2;
    b.commExposedSec = 0.1;
    b.overlapFrac = 0.5;
    b.speedup = 2.0;
    const std::string line = reports::scalingRecordJson(
        "GW", /*weak=*/false, /*overlap_on=*/true, {a, b});
    const obs::JsonValue root = obs::parseJson(line);
    EXPECT_EQ(root.find("type")->string, "scaling");
    EXPECT_EQ(root.find("workload")->string, "GW");
    EXPECT_EQ(root.find("mode")->string, "strong");
    EXPECT_EQ(root.find("overlap")->string, "on");
    const obs::JsonValue *w4 = root.find("w4");
    ASSERT_NE(w4, nullptr);
    const obs::JsonValue *ddp = w4->find("ddp");
    ASSERT_NE(ddp, nullptr);
    EXPECT_EQ(ddp->find("comm_total_sec")->number, 0.2);
    EXPECT_EQ(ddp->find("comm_exposed_sec")->number, 0.1);
    EXPECT_EQ(ddp->find("overlap_frac")->number, 0.5);
    // Flattened by bench_compare these become
    // scaling.GW.w4.ddp.comm_total_sec etc. — the keys bench_diff
    // baselines gate on.
}
