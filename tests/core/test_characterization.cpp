/** @file Characterization-runner integration tests: the metrics the
 *  figure benches consume are well formed and deterministic. */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/characterization.hh"
#include "core/reports.hh"

using namespace gnnmark;

namespace {

RunOptions
tinyOptions()
{
    RunOptions opt;
    opt.scale = 0.2;
    opt.iterations = 3;
    opt.warmupIterations = 1;
    opt.seed = 77;
    return opt;
}

} // namespace

TEST(Characterization, ProfileWellFormed)
{
    CharacterizationRunner runner(tinyOptions());
    WorkloadProfile p = runner.run("DGCN");

    EXPECT_EQ(p.name, "DGCN");
    EXPECT_EQ(p.losses.size(), 3u);
    EXPECT_GT(p.wallTimeSec, 0);
    EXPECT_GT(p.epochTimeSec, 0);
    EXPECT_GT(p.iterationsPerEpoch, 0);
    EXPECT_GT(p.parameterBytes, 0);

    // Fig. 2 breakdown: fractions sum to 1.
    auto breakdown = p.profiler.opTimeBreakdown();
    double total = 0;
    for (double f : breakdown) {
        EXPECT_GE(f, 0);
        total += f;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);

    // Fig. 3 mix sums to 1.
    auto mix = p.profiler.instructionMix();
    EXPECT_NEAR(mix.int32Frac + mix.fp32Frac + mix.otherFrac, 1.0,
                1e-9);

    // Fig. 5 stalls sum to 1.
    StallVector stalls = p.profiler.stallBreakdown();
    double stall_total = 0;
    for (double s : stalls)
        stall_total += s;
    EXPECT_NEAR(stall_total, 1.0, 1e-9);

    // Fig. 6 rates are probabilities.
    EXPECT_GE(p.profiler.l1HitRate(), 0);
    EXPECT_LE(p.profiler.l1HitRate(), 1);
    EXPECT_GE(p.profiler.l2HitRate(), 0);
    EXPECT_LE(p.profiler.l2HitRate(), 1);
    EXPECT_GE(p.profiler.divergentLoadFraction(), 0);
    EXPECT_LE(p.profiler.divergentLoadFraction(), 1);

    // Fig. 7 sparsity is a fraction and something was uploaded.
    EXPECT_GT(p.profiler.totalTransferBytes(), 0);
    EXPECT_GE(p.profiler.avgTransferSparsity(), 0);
    EXPECT_LE(p.profiler.avgTransferSparsity(), 1);

    // Fig. 8 timeline covers the measured iterations.
    EXPECT_FALSE(p.profiler.sparsityTimeline().empty());

    EXPECT_FALSE(p.profiler.kernelStats().empty());
}

TEST(Characterization, DeterministicAcrossRuns)
{
    CharacterizationRunner runner(tinyOptions());
    WorkloadProfile a = runner.run("KGNNL");
    WorkloadProfile b = runner.run("KGNNL");
    ASSERT_EQ(a.losses.size(), b.losses.size());
    for (size_t i = 0; i < a.losses.size(); ++i)
        EXPECT_FLOAT_EQ(a.losses[i], b.losses[i]);
    EXPECT_EQ(a.profiler.totalLaunches(), b.profiler.totalLaunches());
    // Timing is deterministic only up to allocator state (address
    // reuse changes cache behaviour, as on real hardware).
    EXPECT_NEAR(a.profiler.totalKernelTimeSec(),
                b.profiler.totalKernelTimeSec(),
                a.profiler.totalKernelTimeSec() * 0.10);
}

TEST(Characterization, GwIsTheFp32DominatedWorkload)
{
    CharacterizationRunner runner(tinyOptions());
    WorkloadProfile gw = runner.run("GW");
    WorkloadProfile kgnn = runner.run("KGNNH");
    auto gw_mix = gw.profiler.instructionMix();
    auto kg_mix = kgnn.profiler.instructionMix();
    // The paper's headline reversal: GW is fp-dominant, the
    // higher-order GNN is int-dominant.
    EXPECT_GT(gw_mix.fp32Frac, gw_mix.int32Frac);
    EXPECT_GT(kg_mix.int32Frac, kg_mix.fp32Frac);
}

TEST(Characterization, ArgaTransfersAreHighlySparse)
{
    CharacterizationRunner runner(tinyOptions());
    WorkloadProfile arga = runner.run("ARGA");
    EXPECT_GT(arga.profiler.avgTransferSparsity(), 0.7);
}

TEST(Characterization, ReportsRenderForProfiles)
{
    CharacterizationRunner runner(tinyOptions());
    std::vector<WorkloadProfile> profiles;
    profiles.push_back(runner.run("DGCN"));
    profiles.push_back(runner.run("TLSTM"));

    std::ostringstream os;
    reports::printFig2OpBreakdown(profiles, os);
    reports::printFig3InstructionMix(profiles, os);
    reports::printFig4Throughput(profiles, os);
    reports::printFig5Stalls(profiles, os);
    reports::printFig6Cache(profiles, os);
    reports::printFig7Sparsity(profiles, os);
    reports::printFig8SparsityTimeline(profiles, os, 3);
    reports::printKernelTable(profiles[0], os);
    const std::string out = os.str();
    EXPECT_NE(out.find("Fig. 2"), std::string::npos);
    EXPECT_NE(out.find("Fig. 7"), std::string::npos);
    EXPECT_NE(out.find("DGCN"), std::string::npos);
    EXPECT_NE(out.find("TLSTM"), std::string::npos);
    EXPECT_NE(out.find("GEMM"), std::string::npos);
}

TEST(Characterization, HalfPrecisionAblationMovesFewerBytes)
{
    RunOptions fp32 = tinyOptions();
    RunOptions fp16 = tinyOptions();
    fp16.deviceConfig.elemBytes = 2;
    WorkloadProfile a = CharacterizationRunner(fp32).run("DGCN");
    WorkloadProfile b = CharacterizationRunner(fp16).run("DGCN");
    EXPECT_LT(b.profiler.totalTransferBytes(),
              a.profiler.totalTransferBytes() * 0.75);
}
