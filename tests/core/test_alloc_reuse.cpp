/**
 * @file
 * Tape-aware buffer reuse: with the caching arena bound, a steady-state
 * training iteration performs (almost) no heap calls, because every
 * buffer the iteration allocates was freed by the previous iteration
 * and comes back from a free list. The system allocator is the
 * baseline the >=90% reduction is measured against.
 */

#include <gtest/gtest.h>

#include <string>

#include "base/allocator.hh"
#include "core/characterization.hh"

using namespace gnnmark;

namespace {

AllocSummary
runWith(const std::string &workload, Allocator &alloc)
{
    RunOptions opt;
    opt.scale = 0.25;
    opt.iterations = 3;
    opt.allocator = &alloc;
    CharacterizationRunner runner(opt);
    return runner.run(workload).memStats;
}

} // namespace

class AllocReuse : public ::testing::TestWithParam<const char *>
{
};

TEST_P(AllocReuse, CachingCutsSteadyStateHeapCallsBy90Percent)
{
    const AllocSummary sys = runWith(GetParam(), systemAllocator());
    const AllocSummary cached =
        runWith(GetParam(), cachingAllocator());

    EXPECT_EQ(sys.mode, "system");
    EXPECT_EQ(cached.mode, "caching");

    // In system mode every allocation request is a heap call.
    ASSERT_GT(sys.steadyAllocCallsPerIter, 0u);
    EXPECT_EQ(sys.steadyAllocCallsPerIter, sys.steadyRequestsPerIter);

    // Identical op sequence => identical request stream.
    EXPECT_EQ(cached.steadyRequestsPerIter, sys.steadyRequestsPerIter);

    // The acceptance bar: >=90% fewer heap calls per steady iteration.
    EXPECT_LE(cached.steadyAllocCallsPerIter,
              sys.steadyAllocCallsPerIter / 10)
        << "steady-state iteration still hits the heap "
        << cached.steadyAllocCallsPerIter << " times (system: "
        << sys.steadyAllocCallsPerIter << ")";

    // And the arena should be serving most requests from free lists.
    EXPECT_GT(cached.cacheHitRate, 0.5);
    EXPECT_GT(cached.bytesPeak, 0u);
}

INSTANTIATE_TEST_SUITE_P(Suite, AllocReuse,
                         ::testing::Values("PSAGE-MVL", "STGCN"));
