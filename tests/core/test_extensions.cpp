/** @file Tests for the future-work extensions: time-to-train, weak
 *  scaling, and inference-only characterization. */

#include <gtest/gtest.h>

#include "core/characterization.hh"
#include "core/suite.hh"
#include "core/time_to_train.hh"
#include "multigpu/ddp.hh"

using namespace gnnmark;

TEST(TimeToTrain, ConvergesOnLearnableWorkload)
{
    auto wl = BenchmarkSuite::create("DGCN");
    TimeToTrainOptions opt;
    opt.scale = 0.25;
    opt.maxIterations = 60;
    TimeToTrainResult r = measureTimeToTrain(*wl, opt);
    EXPECT_TRUE(r.converged);
    EXPECT_GT(r.iterations, 1);
    EXPECT_LE(r.iterations, 60);
    EXPECT_GT(r.simulatedTimeSec, 0);
    EXPECT_LT(r.finalLoss, r.initialLoss);
}

TEST(TimeToTrain, RespectsIterationCap)
{
    auto wl = BenchmarkSuite::create("STGCN");
    TimeToTrainOptions opt;
    opt.scale = 0.25;
    opt.lossFraction = 0.0001; // unreachable
    opt.maxIterations = 4;
    TimeToTrainResult r = measureTimeToTrain(*wl, opt);
    EXPECT_FALSE(r.converged);
    EXPECT_EQ(r.iterations, 4);
}

TEST(TimeToTrainDeath, BadOptionsPanic)
{
    auto wl = BenchmarkSuite::create("DGCN");
    TimeToTrainOptions opt;
    opt.lossFraction = 1.5;
    EXPECT_DEATH(measureTimeToTrain(*wl, opt), "loss fraction");
}

TEST(InferenceMode, SkipsBackwardAndOptimizer)
{
    RunOptions train;
    train.scale = 0.25;
    train.iterations = 3;
    RunOptions infer = train;
    infer.inferenceOnly = true;

    WorkloadProfile t = CharacterizationRunner(train).run("KGNNL");
    WorkloadProfile i = CharacterizationRunner(infer).run("KGNNL");
    // Forward-only launches far fewer kernels and is faster.
    EXPECT_LT(i.profiler.totalLaunches(),
              t.profiler.totalLaunches() * 0.7);
    EXPECT_LT(i.wallTimeSec, t.wallTimeSec);
    // No optimiser kernels in inference mode.
    for (const auto &[name, stats] : i.profiler.kernelStats())
        EXPECT_EQ(name.find("optim_"), std::string::npos) << name;
}

TEST(InferenceMode, LossStaysFlat)
{
    auto wl = BenchmarkSuite::create("DGCN");
    WorkloadConfig cfg;
    cfg.scale = 0.25;
    cfg.inferenceOnly = true;
    wl->setup(cfg);
    // Without optimiser steps, repeated passes over the same data give
    // the same loss trajectory start (weights frozen).
    float a = wl->trainIteration();
    for (int i = 0; i < 3; ++i)
        wl->trainIteration();
    auto wl2 = BenchmarkSuite::create("DGCN");
    wl2->setup(cfg);
    EXPECT_FLOAT_EQ(wl2->trainIteration(), a);
}

TEST(WeakScaling, EfficiencyAtMostOneAndCommGrows)
{
    auto wl = BenchmarkSuite::create("DGCN");
    WorkloadConfig base;
    base.scale = 0.3;
    DdpTrainer trainer;
    auto curve = trainer.weakScalingCurve(*wl, base, {1, 2, 4}, 2);
    ASSERT_EQ(curve.size(), 3u);
    EXPECT_NEAR(curve[0].speedup, 1.0, 1e-9);
    EXPECT_EQ(curve[0].commTimeSec, 0);
    // Efficiency cannot exceed 1 by much and decays with world size.
    EXPECT_LE(curve[1].speedup, 1.1);
    EXPECT_LE(curve[2].speedup, curve[1].speedup + 0.1);
    EXPECT_GT(curve[2].commTimeSec, 0);
}

TEST(WeakScaling, ComputeStaysConstant)
{
    auto wl = BenchmarkSuite::create("KGNNL");
    WorkloadConfig base;
    base.scale = 0.3;
    DdpTrainer trainer;
    ScalingResult one = trainer.measureWeak(*wl, base, 1, 2);
    ScalingResult four = trainer.measureWeak(*wl, base, 4, 2);
    // Per-GPU compute identical up to sampling noise.
    EXPECT_NEAR(four.computeTimeSec, one.computeTimeSec,
                one.computeTimeSec * 0.2);
}
