/** @file Elastic fault-recovery tests: timeout detection, world
 *  shrink, checkpoint rollback and deterministic accounting. */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/suite.hh"
#include "multigpu/ddp.hh"

using namespace gnnmark;

namespace {

WorkloadConfig
smallConfig()
{
    WorkloadConfig cfg;
    cfg.seed = 5;
    cfg.scale = 0.25;
    return cfg;
}

FaultRecoveryOptions
quickOptions()
{
    FaultRecoveryOptions opt;
    opt.iterations = 12;
    opt.checkpointInterval = 4;
    return opt;
}

/**
 * The device's cache model keys on real host allocation addresses, so
 * re-setup() runs carry sub-0.1%% wall-time jitter; structural results
 * (events, iteration counts, detection/re-shard costs) are exact.
 */
void
expectClose(double a, double b, double rel = 1e-2)
{
    EXPECT_NEAR(a, b, rel * std::max(std::abs(a), std::abs(b)));
}

FaultEvent
crashAt(double t, int replica)
{
    FaultEvent e;
    e.kind = FaultKind::ReplicaCrash;
    e.timeSec = t;
    e.replica = replica;
    return e;
}

} // namespace

TEST(FaultRecovery, FaultFreeRunMatchesIdeal)
{
    auto wl = BenchmarkSuite::create("KGNNL");
    DdpTrainer trainer;
    FaultRecoveryOptions opt = quickOptions();
    opt.checkpointInterval = 0; // no periodic writes either
    FaultToleranceResult r = trainer.runWithFaults(
        *wl, smallConfig(), 2, FaultPlan{}, opt);

    EXPECT_EQ(r.worldStart, 2);
    EXPECT_EQ(r.worldEnd, 2);
    EXPECT_EQ(r.executedIterations, opt.iterations);
    EXPECT_EQ(r.replayedIterations, 0);
    EXPECT_TRUE(r.events.empty());
    EXPECT_EQ(r.checkpointTimeSec, 0);
    EXPECT_EQ(r.recoveryTimeSec, 0);
    expectClose(r.totalTimeSec, r.idealTimeSec);
    expectClose(r.goodput, 1.0);
}

TEST(FaultRecovery, CrashShrinksWorldAndCompletes)
{
    auto wl = BenchmarkSuite::create("STGCN");
    DdpTrainer trainer;
    // Crash one of four replicas immediately: detected after the
    // first iteration's all-reduce.
    FaultPlan plan({crashAt(0.0, 3)});
    FaultToleranceResult r = trainer.runWithFaults(
        *wl, smallConfig(), 4, plan, quickOptions());

    EXPECT_EQ(r.worldStart, 4);
    EXPECT_EQ(r.worldEnd, 3);
    ASSERT_EQ(r.events.size(), 1u);
    const FaultRecord &e = r.events[0];
    EXPECT_EQ(e.kind, FaultKind::ReplicaCrash);
    EXPECT_EQ(e.replica, 3);
    EXPECT_EQ(e.worldBefore, 4);
    EXPECT_EQ(e.worldAfter, 3);
    EXPECT_GT(e.detectionSec, 0);
    EXPECT_GT(e.reshardSec, 0);

    // The run still completes every target iteration on the
    // shrunken world, and pays for the recovery.
    EXPECT_EQ(r.targetIterations, quickOptions().iterations);
    EXPECT_GE(r.executedIterations, r.targetIterations);
    EXPECT_GT(r.recoveryTimeSec, 0);
    EXPECT_GT(r.totalTimeSec, r.idealTimeSec);
    EXPECT_LT(r.goodput, 1.0);
    EXPECT_GT(r.goodput, 0.0);
}

TEST(FaultRecovery, DetectionFollowsTimeoutAndBackoff)
{
    auto wl = BenchmarkSuite::create("KGNNL");
    DdpTrainer trainer;
    FaultRecoveryOptions opt = quickOptions();
    opt.allReduceTimeoutSec = 7e-3;
    opt.maxRetries = 3;
    opt.backoffBaseSec = 2e-3;
    FaultToleranceResult r = trainer.runWithFaults(
        *wl, smallConfig(), 2, FaultPlan({crashAt(0.0, 1)}), opt);

    ASSERT_EQ(r.events.size(), 1u);
    // timeout + 3 retries of (backoff*2^k + timeout):
    // 7 + (2+7) + (4+7) + (8+7) = 42 ms.
    EXPECT_NEAR(r.events[0].detectionSec, 42e-3, 1e-12);
}

TEST(FaultRecovery, RollbackReplaysFromLastCheckpoint)
{
    auto wl = BenchmarkSuite::create("KGNNL");
    DdpTrainer trainer;

    // Late crash, so several iterations sit past the last checkpoint.
    FaultRecoveryOptions opt = quickOptions();
    FaultToleranceResult probe = trainer.runWithFaults(
        *wl, smallConfig(), 2, FaultPlan{}, opt);
    const double late = 0.9 * probe.idealTimeSec;

    FaultToleranceResult r = trainer.runWithFaults(
        *wl, smallConfig(), 2, FaultPlan({crashAt(late, 1)}), opt);
    ASSERT_EQ(r.events.size(), 1u);
    EXPECT_LT(r.events[0].lostIterations, opt.checkpointInterval);
    EXPECT_EQ(r.replayedIterations, r.events[0].lostIterations);
    EXPECT_EQ(r.executedIterations,
              opt.iterations + r.replayedIterations + 1);
    EXPECT_EQ(r.worldEnd, 1); // survivor finishes solo

    // Without checkpoints the same crash replays the whole prefix.
    FaultRecoveryOptions none = opt;
    none.checkpointInterval = 0;
    FaultToleranceResult r0 = trainer.runWithFaults(
        *wl, smallConfig(), 2, FaultPlan({crashAt(late, 1)}), none);
    ASSERT_EQ(r0.events.size(), 1u);
    EXPECT_GT(r0.replayedIterations, 0);
    EXPECT_GE(r0.replayedIterations, r.replayedIterations);
}

TEST(FaultRecovery, DeterministicAcrossRuns)
{
    FaultPlan plan({crashAt(1e-3, 0)});
    auto run = [&]() {
        auto wl = BenchmarkSuite::create("STGCN");
        DdpTrainer trainer;
        return trainer.runWithFaults(*wl, smallConfig(), 4, plan,
                                     quickOptions());
    };
    FaultToleranceResult a = run();
    FaultToleranceResult b = run();
    expectClose(a.totalTimeSec, b.totalTimeSec);
    expectClose(a.goodput, b.goodput);
    EXPECT_EQ(a.worldEnd, b.worldEnd);
    EXPECT_EQ(a.executedIterations, b.executedIterations);
    EXPECT_EQ(a.replayedIterations, b.replayedIterations);
    ASSERT_EQ(a.events.size(), b.events.size());
    for (size_t i = 0; i < a.events.size(); ++i) {
        // Detection/rollback/re-shard derive from the options and the
        // checkpoint image size, not from sampled kernel times: exact.
        EXPECT_EQ(a.events[i].kind, b.events[i].kind);
        EXPECT_DOUBLE_EQ(a.events[i].detectionSec,
                         b.events[i].detectionSec);
        EXPECT_DOUBLE_EQ(a.events[i].rollbackSec,
                         b.events[i].rollbackSec);
        EXPECT_DOUBLE_EQ(a.events[i].reshardSec,
                         b.events[i].reshardSec);
        EXPECT_EQ(a.events[i].lostIterations,
                  b.events[i].lostIterations);
    }
}

TEST(FaultRecovery, StragglerDragsWithoutShrinking)
{
    auto wl = BenchmarkSuite::create("KGNNL");
    DdpTrainer trainer;
    FaultEvent slow;
    slow.kind = FaultKind::Straggler;
    slow.timeSec = 0;
    slow.durationSec = 0; // permanent
    slow.replica = 1;
    slow.magnitude = 3.0;
    FaultToleranceResult r = trainer.runWithFaults(
        *wl, smallConfig(), 2, FaultPlan({slow}), quickOptions());

    EXPECT_EQ(r.worldEnd, 2);
    ASSERT_EQ(r.events.size(), 1u);
    EXPECT_EQ(r.events[0].kind, FaultKind::Straggler);
    EXPECT_GT(r.events[0].slowdownSec, 0);
    EXPECT_GT(r.totalTimeSec, r.idealTimeSec);
    EXPECT_EQ(r.replayedIterations, 0);
}

TEST(FaultRecovery, TransientFailureChargesRetry)
{
    auto wl = BenchmarkSuite::create("KGNNL");
    DdpTrainer trainer;
    FaultEvent blip;
    blip.kind = FaultKind::TransientKernel;
    blip.timeSec = 1e-4;
    FaultToleranceResult r = trainer.runWithFaults(
        *wl, smallConfig(), 2, FaultPlan({blip}), quickOptions());

    ASSERT_EQ(r.events.size(), 1u);
    EXPECT_EQ(r.events[0].kind, FaultKind::TransientKernel);
    EXPECT_GT(r.events[0].detectionSec, 0);
    EXPECT_GT(r.events[0].rollbackSec, 0); // the recomputed iteration
    EXPECT_EQ(r.worldEnd, 2);
    EXPECT_GT(r.totalTimeSec, r.idealTimeSec);
}

TEST(FaultRecovery, SoloRunIgnoresPeerCrashes)
{
    // With world == 1 there is no all-reduce to time out on, so crash
    // events cannot be observed; the run simply completes.
    auto wl = BenchmarkSuite::create("KGNNL");
    DdpTrainer trainer;
    FaultToleranceResult r = trainer.runWithFaults(
        *wl, smallConfig(), 1, FaultPlan({crashAt(0.0, 0)}),
        quickOptions());
    EXPECT_EQ(r.worldEnd, 1);
    EXPECT_EQ(r.executedIterations, quickOptions().iterations);
    EXPECT_TRUE(r.events.empty());
}
