/** @file DDP strong-scaling simulation tests (paper Fig. 9 shapes). */

#include <gtest/gtest.h>

#include "core/suite.hh"
#include "multigpu/ddp.hh"

using namespace gnnmark;

namespace {

WorkloadConfig
benchConfig()
{
    // Strong scaling needs the full-size datasets: at tiny scales
    // every workload is dispatch-bound and nothing scales (which is
    // itself the TLSTM story, but not the DGCN/STGCN/GW one).
    WorkloadConfig cfg;
    cfg.seed = 5;
    cfg.scale = 1.0;
    return cfg;
}

std::vector<ScalingResult>
curve(const std::string &name)
{
    auto wl = BenchmarkSuite::create(name);
    DdpTrainer trainer;
    return trainer.scalingCurve(*wl, benchConfig(), {1, 2, 4},
                                /*measured_iterations=*/2);
}

} // namespace

TEST(Ddp, SingleGpuBaseline)
{
    auto wl = BenchmarkSuite::create("DGCN");
    DdpTrainer trainer;
    ScalingResult r = trainer.measure(*wl, benchConfig(), 1, 2);
    EXPECT_EQ(r.commTimeSec, 0);
    EXPECT_GT(r.epochTimeSec, 0);
    EXPECT_DOUBLE_EQ(r.epochTimeSec, r.computeTimeSec);
}

TEST(Ddp, MultiGpuPaysCommunication)
{
    auto wl = BenchmarkSuite::create("DGCN");
    DdpTrainer trainer;
    ScalingResult r = trainer.measure(*wl, benchConfig(), 4, 2);
    EXPECT_GT(r.commTimeSec, 0);
}

TEST(Ddp, ComputeBoundWorkloadsScale)
{
    // DGCN, STGCN and GW benefit from multi-GPU training (Fig. 9).
    // GW's bar is lower: at reproduction scale its sequential LSTM
    // decoder is latency-bound (1-block kernels do not shrink when
    // the batch shards), muting the speedup relative to the paper's
    // full-size model; see EXPERIMENTS.md.
    for (const char *name : {"DGCN", "STGCN"}) {
        auto points = curve(name);
        ASSERT_EQ(points.size(), 3u);
        EXPECT_GT(points[2].speedup, 1.3) << name << " at 4 GPUs";
        EXPECT_GE(points[1].speedup, 1.0) << name << " at 2 GPUs";
    }
    auto gw = curve("GW");
    EXPECT_GT(gw[2].speedup, 1.15) << "GW at 4 GPUs";
}

TEST(Ddp, PinSageDegradesWithReplication)
{
    auto points = curve("PSAGE-MVL");
    // The DDP-incompatible sampler replicates work: 4 GPUs are slower
    // than 1 (the paper's Fig. 9 pathology).
    EXPECT_LT(points[2].speedup, 1.0);
    EXPECT_LT(points[2].speedup, points[1].speedup + 0.2);
}

TEST(Ddp, TreeLstmBarelyScales)
{
    auto points = curve("TLSTM");
    // Low arithmetic intensity: far from linear scaling.
    EXPECT_LT(points[2].speedup, 2.5);
}

TEST(Ddp, SpeedupRelativeToOneGpu)
{
    auto points = curve("DGCN");
    EXPECT_NEAR(points[0].speedup, 1.0, 1e-9);
}

TEST(Ddp, ScalingCurveWithoutSingleGpuPoint)
{
    // Regression: with no world_size == 1 entry the old code never set
    // base_time and reported speedup == 0 for every point. The fallback
    // extrapolates the single-GPU time from the first measured point
    // assuming linear scaling, so that point's speedup is exactly its
    // world size.
    auto wl = BenchmarkSuite::create("DGCN");
    DdpTrainer trainer;
    auto points = trainer.scalingCurve(*wl, benchConfig(), {2, 4}, 2);
    ASSERT_EQ(points.size(), 2u);
    EXPECT_NEAR(points[0].speedup, 2.0, 1e-9);
    EXPECT_GT(points[1].speedup, 0.0);
}

TEST(Ddp, WeakScalingCurveWithoutSingleGpuPoint)
{
    // Same regression for the weak-scaling curve: per-GPU work is
    // constant, so the first measured point is its own reference and
    // gets efficiency exactly 1.
    auto wl = BenchmarkSuite::create("DGCN");
    DdpTrainer trainer;
    auto points =
        trainer.weakScalingCurve(*wl, benchConfig(), {2, 4}, 2);
    ASSERT_EQ(points.size(), 2u);
    EXPECT_NEAR(points[0].speedup, 1.0, 1e-9);
    EXPECT_GT(points[1].speedup, 0.0);
}

TEST(DdpDeath, InvalidWorldPanics)
{
    auto wl = BenchmarkSuite::create("DGCN");
    DdpTrainer trainer;
    EXPECT_DEATH(trainer.measure(*wl, benchConfig(), 0, 1),
                 "world size");
}

TEST(Ddp, SingleGpuPinSagePaysNoReplication)
{
    // The replication penalty for DDP-incompatible samplers only
    // exists when there are peers to replicate for.
    auto wl = BenchmarkSuite::create("PSAGE-MVL");
    ASSERT_FALSE(wl->samplerDdpCompatible());
    DdpTrainer trainer;
    ScalingResult r = trainer.measure(*wl, benchConfig(), 1, 2);
    EXPECT_EQ(r.commTimeSec, 0);
    EXPECT_DOUBLE_EQ(r.epochTimeSec, r.computeTimeSec);
}

TEST(Ddp, ReplicationPathExceedsAllReduceLowerBound)
{
    // For a DDP-incompatible sampler the per-iteration comm must carry
    // strictly more than the pure gradient all-reduce, because every
    // peer re-pulls the full input batch.
    auto wl = BenchmarkSuite::create("PSAGE-MVL");
    DdpTrainer trainer;
    const int world = 4;
    ScalingResult r = trainer.measure(*wl, benchConfig(), world, 2);

    Interconnect link{InterconnectConfig{}};
    const double all_reduce_floor =
        link.allReduceTime(wl->parameterBytes(), world);
    const double iters =
        static_cast<double>(wl->iterationsPerEpoch());
    EXPECT_GT(r.commTimeSec, all_reduce_floor * iters);
}

TEST(Ddp, DegradedLinkSlowsCollectives)
{
    auto wl = BenchmarkSuite::create("DGCN");
    InterconnectConfig slow;
    slow.degradedHopFactor = 0.25;
    DdpTrainer healthy(GpuConfig::v100(), InterconnectConfig{});
    DdpTrainer degraded(GpuConfig::v100(), slow);

    ScalingResult h = healthy.measure(*wl, benchConfig(), 4, 2);
    ScalingResult d = degraded.measure(*wl, benchConfig(), 4, 2);
    EXPECT_GT(d.commTimeSec, h.commTimeSec);
    // Compute is untouched by the link (small jitter from the
    // host-address-sensitive cache model aside).
    EXPECT_NEAR(d.computeTimeSec, h.computeTimeSec,
                0.03 * h.computeTimeSec);

    // A degraded hop gates the ring but not single-GPU training.
    ScalingResult solo_h = healthy.measure(*wl, benchConfig(), 1, 2);
    ScalingResult solo_d = degraded.measure(*wl, benchConfig(), 1, 2);
    EXPECT_EQ(solo_d.commTimeSec, 0);
    EXPECT_NEAR(solo_d.epochTimeSec, solo_h.epochTimeSec,
                0.03 * solo_h.epochTimeSec);
}

// ---------------------------------------------------------------------
// Bucketed all-reduce cost helpers (shared by every pricing path).

TEST(DdpBuckets, CountEdgesAtBucketBoundaries)
{
    const double B = ddp::kBucketBytes;
    // Exact multiples of the bucket size must not spill an extra
    // (empty) bucket through the double->int truncation.
    EXPECT_EQ(ddp::bucketCount(B), 1);
    EXPECT_EQ(ddp::bucketCount(2 * B), 2);
    EXPECT_EQ(ddp::bucketCount(7 * B), 7);
    // One byte past a boundary opens the next bucket.
    EXPECT_EQ(ddp::bucketCount(B + 1), 2);
    EXPECT_EQ(ddp::bucketCount(2 * B + 1), 3);
    // Degenerate sizes still occupy one bucket.
    EXPECT_EQ(ddp::bucketCount(0), 1);
    EXPECT_EQ(ddp::bucketCount(1), 1);
    EXPECT_EQ(ddp::bucketCount(B - 1), 1);
}

TEST(DdpBuckets, OverlapSizesCoverBytesWithinBounds)
{
    DdpOptions opt;
    // Large gradients split to the 25 MB PyTorch cap.
    {
        auto sizes = ddp::overlapBucketSizes(100.0 * ddp::kBucketBytes,
                                             opt);
        double sum = 0;
        for (double s : sizes) {
            EXPECT_LE(s, ddp::kBucketBytes * (1 + 1e-12));
            sum += s;
        }
        EXPECT_NEAR(sum, 100.0 * ddp::kBucketBytes, 1.0);
    }
    // Small gradients respect the minimum bucket granularity.
    {
        auto sizes = ddp::overlapBucketSizes(32.0 * 1024, opt);
        EXPECT_EQ(sizes.size(), 2u);
        for (double s : sizes)
            EXPECT_GE(s, opt.minBucketBytes * 0.5);
    }
    EXPECT_TRUE(ddp::overlapBucketSizes(0, opt).empty());
}

// ---------------------------------------------------------------------
// Overlap model invariants.

namespace {

IterationTimeline
syntheticTimeline()
{
    IterationTimeline t;
    t.kernelSec = 10e-3;
    t.transferSec = 1e-3;
    t.kernelCount = 100;
    t.launchOverheadSec = 1e-6;
    t.backwardBeginKernelSec = 4e-3;
    t.backwardEndKernelSec = 10e-3;
    for (int i = 1; i <= 60; ++i)
        t.backwardKernelEnds.push_back(4e-3 + i * 0.1e-3);
    return t;
}

} // namespace

TEST(DdpOverlap, ExposedNeverExceedsTotal)
{
    Interconnect link{InterconnectConfig{}};
    const IterationTimeline t = syntheticTimeline();
    DdpOptions opt;
    for (double bytes : {16e3, 1e6, 20e6, 200e6}) {
        for (int world : {2, 4, 8}) {
            ddp::CommCost c =
                ddp::overlapCommCost(link, bytes, world, t, opt);
            EXPECT_LE(c.exposedSec, c.totalSec + 1e-15)
                << bytes << " bytes on " << world << " GPUs";
            EXPECT_GE(c.exposedSec, ddp::kDdpOverheadSec);
        }
    }
}

TEST(DdpOverlap, WorldOneIsFree)
{
    Interconnect link{InterconnectConfig{}};
    ddp::CommCost c = ddp::overlapCommCost(
        link, 20e6, 1, syntheticTimeline(), DdpOptions{});
    EXPECT_EQ(c.totalSec, 0);
    EXPECT_EQ(c.exposedSec, 0);
}

TEST(DdpOverlap, EarlyBucketsHideBehindBackward)
{
    // 64 KB splits into four 16 KB buckets; the first three become
    // ready while backward is still running and hide entirely. The
    // final bucket is only ready at backward end, so exposure is
    // exactly its drain cost plus the fixed host-side bookkeeping.
    Interconnect link{InterconnectConfig{}};
    const int world = 2;
    const double bytes = 64.0 * 1024;
    ddp::CommCost c = ddp::overlapCommCost(
        link, bytes, world, syntheticTimeline(), DdpOptions{});
    EXPECT_LT(c.exposedSec, c.totalSec);

    const double lat = link.config().messageLatencySec;
    const double steps = 2.0 * (world - 1);
    const double last_bucket =
        std::max(0.0, link.allReduceTime(bytes / 4, world) -
                          steps * lat) +
        lat;
    // NEAR, not DOUBLE_EQ: exposure subtracts two ~10 ms wall-clock
    // points, so a few ULPs of cancellation noise are expected.
    EXPECT_NEAR(c.exposedSec, last_bucket + ddp::kDdpOverheadSec,
                1e-12);
}

TEST(DdpOverlap, NoBackwardWindowIsFullyExposed)
{
    // Inference-style timeline: buckets only become ready at stream
    // end, so nothing hides and exposed == total.
    IterationTimeline t;
    t.kernelSec = 5e-3;
    t.kernelCount = 50;
    t.launchOverheadSec = 1e-6;
    Interconnect link{InterconnectConfig{}};
    ddp::CommCost c =
        ddp::overlapCommCost(link, 20e6, 4, t, DdpOptions{});
    EXPECT_DOUBLE_EQ(c.exposedSec, c.totalSec);
}

TEST(DdpOverlap, MeasuredExposureStaysBounded)
{
    auto wl = BenchmarkSuite::create("DGCN");
    DdpTrainer trainer;
    for (int world : {2, 4}) {
        ScalingResult r = trainer.measure(*wl, benchConfig(), world, 2);
        EXPECT_GT(r.commTimeSec, 0);
        EXPECT_LE(r.commExposedSec, r.commTimeSec * (1 + 1e-12));
        EXPECT_DOUBLE_EQ(r.epochTimeSec,
                         r.computeTimeSec + r.commExposedSec);
        EXPECT_GE(r.overlapFrac, 0.0);
        EXPECT_LT(r.overlapFrac, 1.0);
    }
}

TEST(DdpOverlap, OverlapOffReproducesLegacyModelBitwise)
{
    // The sync path must keep the historical cost expression exactly:
    // allReduceTime + bucketCount * messageLatency + fixed overhead,
    // fully serialized after compute.
    DdpOptions off;
    off.overlapComm = false;
    auto wl = BenchmarkSuite::create("DGCN");
    DdpTrainer trainer(GpuConfig::v100(), InterconnectConfig{}, off);
    const int world = 4;
    ScalingResult r = trainer.measure(*wl, benchConfig(), world, 2);

    Interconnect link{InterconnectConfig{}};
    const double bytes = wl->parameterBytes();
    const double legacy_iter =
        link.allReduceTime(bytes, world) +
        ddp::bucketCount(bytes) * link.config().messageLatencySec +
        ddp::kDdpOverheadSec;
    const double iters =
        static_cast<double>(wl->iterationsPerEpoch());
    EXPECT_EQ(r.commTimeSec, legacy_iter * iters);
    EXPECT_EQ(r.commExposedSec, r.commTimeSec);
    EXPECT_EQ(r.epochTimeSec, r.computeTimeSec + r.commTimeSec);
    EXPECT_EQ(r.overlapFrac, 0.0);
}

TEST(DdpOverlap, StrictlyFasterThanSyncForCompatibleWorkloads)
{
    // Holding one measured run's compute fixed, the overlapped epoch
    // must be strictly cheaper than what the synchronous model would
    // charge for the same point. (Comparing two separate measured runs
    // would confound this with the host-address-sensitive cache
    // model's jitter.)
    Interconnect link{InterconnectConfig{}};
    for (const char *name : {"DGCN", "STGCN", "GW"}) {
        auto wl = BenchmarkSuite::create(name);
        ASSERT_TRUE(wl->samplerDdpCompatible()) << name;
        DdpTrainer trainer;
        ScalingResult on = trainer.measure(*wl, benchConfig(), 4, 2);
        const double sync_epoch =
            on.computeTimeSec +
            ddp::syncCommCost(link, wl->parameterBytes(), 4) *
                static_cast<double>(wl->iterationsPerEpoch());
        EXPECT_LT(on.epochTimeSec, sync_epoch) << name;
        EXPECT_GT(on.overlapFrac, 0.0) << name;
    }
}

TEST(DdpOverlap, WeakScalingChargesReplicationPenalty)
{
    // Regression: measureWeak() used to skip the replicated-input
    // penalty that measure() charges for DDP-incompatible samplers,
    // silently flattering PinSAGE's weak-scaling efficiency. With the
    // shared implementation the weak-mode comm must now exceed the
    // pure bucketed all-reduce.
    DdpOptions off;
    off.overlapComm = false;
    auto wl = BenchmarkSuite::create("PSAGE-MVL");
    ASSERT_FALSE(wl->samplerDdpCompatible());
    DdpTrainer trainer(GpuConfig::v100(), InterconnectConfig{}, off);
    const int world = 4;
    ScalingResult r = trainer.measureWeak(*wl, benchConfig(), world, 2);

    Interconnect link{InterconnectConfig{}};
    const double sync_only =
        ddp::syncCommCost(link, wl->parameterBytes(), world) *
        static_cast<double>(wl->iterationsPerEpoch());
    EXPECT_GT(r.commTimeSec, sync_only);
}

TEST(DdpOverlap, ScalingFromTimelinesInvariants)
{
    Interconnect link{InterconnectConfig{}};
    std::vector<IterationTimeline> timelines = {syntheticTimeline(),
                                                syntheticTimeline()};
    const double epoch_compute = 1.0;
    const double iters = 100;
    const double bytes = 20e6;

    auto curve = ddp::scalingFromTimelines(
        link, timelines, epoch_compute, iters, bytes,
        /*sampler_ddp_compatible=*/true, {1, 2, 4}, DdpOptions{});
    ASSERT_EQ(curve.size(), 3u);
    EXPECT_EQ(curve[0].commTimeSec, 0);
    EXPECT_NEAR(curve[0].speedup, 1.0, 1e-12);
    for (const ScalingResult &r : curve) {
        EXPECT_LE(r.commExposedSec, r.commTimeSec * (1 + 1e-12));
        EXPECT_DOUBLE_EQ(r.epochTimeSec,
                         r.computeTimeSec + r.commExposedSec);
        EXPECT_EQ(r.computeTimeSec, epoch_compute);
    }

    // An incompatible sampler pays the replication penalty on top.
    auto degraded = ddp::scalingFromTimelines(
        link, timelines, epoch_compute, iters, bytes,
        /*sampler_ddp_compatible=*/false, {1, 2, 4}, DdpOptions{});
    EXPECT_GT(degraded[2].commTimeSec, curve[2].commTimeSec);
    EXPECT_GT(degraded[2].commExposedSec, curve[2].commExposedSec);
}
