/** @file DDP strong-scaling simulation tests (paper Fig. 9 shapes). */

#include <gtest/gtest.h>

#include "core/suite.hh"
#include "multigpu/ddp.hh"

using namespace gnnmark;

namespace {

WorkloadConfig
benchConfig()
{
    // Strong scaling needs the full-size datasets: at tiny scales
    // every workload is dispatch-bound and nothing scales (which is
    // itself the TLSTM story, but not the DGCN/STGCN/GW one).
    WorkloadConfig cfg;
    cfg.seed = 5;
    cfg.scale = 1.0;
    return cfg;
}

std::vector<ScalingResult>
curve(const std::string &name)
{
    auto wl = BenchmarkSuite::create(name);
    DdpTrainer trainer;
    return trainer.scalingCurve(*wl, benchConfig(), {1, 2, 4},
                                /*measured_iterations=*/2);
}

} // namespace

TEST(Ddp, SingleGpuBaseline)
{
    auto wl = BenchmarkSuite::create("DGCN");
    DdpTrainer trainer;
    ScalingResult r = trainer.measure(*wl, benchConfig(), 1, 2);
    EXPECT_EQ(r.commTimeSec, 0);
    EXPECT_GT(r.epochTimeSec, 0);
    EXPECT_DOUBLE_EQ(r.epochTimeSec, r.computeTimeSec);
}

TEST(Ddp, MultiGpuPaysCommunication)
{
    auto wl = BenchmarkSuite::create("DGCN");
    DdpTrainer trainer;
    ScalingResult r = trainer.measure(*wl, benchConfig(), 4, 2);
    EXPECT_GT(r.commTimeSec, 0);
}

TEST(Ddp, ComputeBoundWorkloadsScale)
{
    // DGCN, STGCN and GW benefit from multi-GPU training (Fig. 9).
    // GW's bar is lower: at reproduction scale its sequential LSTM
    // decoder is latency-bound (1-block kernels do not shrink when
    // the batch shards), muting the speedup relative to the paper's
    // full-size model; see EXPERIMENTS.md.
    for (const char *name : {"DGCN", "STGCN"}) {
        auto points = curve(name);
        ASSERT_EQ(points.size(), 3u);
        EXPECT_GT(points[2].speedup, 1.3) << name << " at 4 GPUs";
        EXPECT_GE(points[1].speedup, 1.0) << name << " at 2 GPUs";
    }
    auto gw = curve("GW");
    EXPECT_GT(gw[2].speedup, 1.15) << "GW at 4 GPUs";
}

TEST(Ddp, PinSageDegradesWithReplication)
{
    auto points = curve("PSAGE-MVL");
    // The DDP-incompatible sampler replicates work: 4 GPUs are slower
    // than 1 (the paper's Fig. 9 pathology).
    EXPECT_LT(points[2].speedup, 1.0);
    EXPECT_LT(points[2].speedup, points[1].speedup + 0.2);
}

TEST(Ddp, TreeLstmBarelyScales)
{
    auto points = curve("TLSTM");
    // Low arithmetic intensity: far from linear scaling.
    EXPECT_LT(points[2].speedup, 2.5);
}

TEST(Ddp, SpeedupRelativeToOneGpu)
{
    auto points = curve("DGCN");
    EXPECT_NEAR(points[0].speedup, 1.0, 1e-9);
}

TEST(Ddp, ScalingCurveWithoutSingleGpuPoint)
{
    // Regression: with no world_size == 1 entry the old code never set
    // base_time and reported speedup == 0 for every point. The fallback
    // extrapolates the single-GPU time from the first measured point
    // assuming linear scaling, so that point's speedup is exactly its
    // world size.
    auto wl = BenchmarkSuite::create("DGCN");
    DdpTrainer trainer;
    auto points = trainer.scalingCurve(*wl, benchConfig(), {2, 4}, 2);
    ASSERT_EQ(points.size(), 2u);
    EXPECT_NEAR(points[0].speedup, 2.0, 1e-9);
    EXPECT_GT(points[1].speedup, 0.0);
}

TEST(Ddp, WeakScalingCurveWithoutSingleGpuPoint)
{
    // Same regression for the weak-scaling curve: per-GPU work is
    // constant, so the first measured point is its own reference and
    // gets efficiency exactly 1.
    auto wl = BenchmarkSuite::create("DGCN");
    DdpTrainer trainer;
    auto points =
        trainer.weakScalingCurve(*wl, benchConfig(), {2, 4}, 2);
    ASSERT_EQ(points.size(), 2u);
    EXPECT_NEAR(points[0].speedup, 1.0, 1e-9);
    EXPECT_GT(points[1].speedup, 0.0);
}

TEST(DdpDeath, InvalidWorldPanics)
{
    auto wl = BenchmarkSuite::create("DGCN");
    DdpTrainer trainer;
    EXPECT_DEATH(trainer.measure(*wl, benchConfig(), 0, 1),
                 "world size");
}

TEST(Ddp, SingleGpuPinSagePaysNoReplication)
{
    // The replication penalty for DDP-incompatible samplers only
    // exists when there are peers to replicate for.
    auto wl = BenchmarkSuite::create("PSAGE-MVL");
    ASSERT_FALSE(wl->samplerDdpCompatible());
    DdpTrainer trainer;
    ScalingResult r = trainer.measure(*wl, benchConfig(), 1, 2);
    EXPECT_EQ(r.commTimeSec, 0);
    EXPECT_DOUBLE_EQ(r.epochTimeSec, r.computeTimeSec);
}

TEST(Ddp, ReplicationPathExceedsAllReduceLowerBound)
{
    // For a DDP-incompatible sampler the per-iteration comm must carry
    // strictly more than the pure gradient all-reduce, because every
    // peer re-pulls the full input batch.
    auto wl = BenchmarkSuite::create("PSAGE-MVL");
    DdpTrainer trainer;
    const int world = 4;
    ScalingResult r = trainer.measure(*wl, benchConfig(), world, 2);

    Interconnect link{InterconnectConfig{}};
    const double all_reduce_floor =
        link.allReduceTime(wl->parameterBytes(), world);
    const double iters =
        static_cast<double>(wl->iterationsPerEpoch());
    EXPECT_GT(r.commTimeSec, all_reduce_floor * iters);
}

TEST(Ddp, DegradedLinkSlowsCollectives)
{
    auto wl = BenchmarkSuite::create("DGCN");
    InterconnectConfig slow;
    slow.degradedHopFactor = 0.25;
    DdpTrainer healthy(GpuConfig::v100(), InterconnectConfig{});
    DdpTrainer degraded(GpuConfig::v100(), slow);

    ScalingResult h = healthy.measure(*wl, benchConfig(), 4, 2);
    ScalingResult d = degraded.measure(*wl, benchConfig(), 4, 2);
    EXPECT_GT(d.commTimeSec, h.commTimeSec);
    // Compute is untouched by the link (small jitter from the
    // host-address-sensitive cache model aside).
    EXPECT_NEAR(d.computeTimeSec, h.computeTimeSec,
                0.03 * h.computeTimeSec);

    // A degraded hop gates the ring but not single-GPU training.
    ScalingResult solo_h = healthy.measure(*wl, benchConfig(), 1, 2);
    ScalingResult solo_d = degraded.measure(*wl, benchConfig(), 1, 2);
    EXPECT_EQ(solo_d.commTimeSec, 0);
    EXPECT_NEAR(solo_d.epochTimeSec, solo_h.epochTimeSec,
                0.03 * solo_h.epochTimeSec);
}
