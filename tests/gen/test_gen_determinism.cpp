/**
 * @file
 * The central contract of the chunked generators: for a fixed config
 * and seed, the emitted edge sequence is byte-identical for ANY
 * thread count and ANY chunk granularity — plus per-family shape
 * checks on the degree distribution the stream produces.
 */

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "base/thread_pool.hh"
#include "gen/config.hh"
#include "gen/degree_stats.hh"
#include "gen/edge_stream.hh"

using namespace gnnmark;
using gen::Family;
using gen::GeneratorConfig;

namespace {

using EdgeList = std::vector<std::pair<int64_t, int64_t>>;

EdgeList
collect(GeneratorConfig cfg, int chunks)
{
    cfg.chunks = chunks;
    gen::ChunkedEdgeStream stream(cfg);
    EdgeList out;
    gen::EdgeBlock block;
    while (stream.next(block))
        out.insert(out.end(), block.edges.begin(), block.edges.end());
    return out;
}

uint64_t
streamChecksum(GeneratorConfig cfg, int chunks)
{
    cfg.chunks = chunks;
    gen::ChunkedEdgeStream stream(cfg);
    gen::EdgeBlock block;
    while (stream.next(block)) {
    }
    return stream.checksum();
}

GeneratorConfig
smallConfig(Family family)
{
    GeneratorConfig cfg;
    cfg.family = family;
    cfg.n = 4000;
    cfg.seed = 20260808;
    return cfg;
}

/** RAII thread-count override for the shared pool. */
class ThreadCountGuard
{
  public:
    explicit ThreadCountGuard(int threads)
        : saved_(ThreadPool::instance().threadCount())
    {
        ThreadPool::instance().setThreadCount(threads);
    }
    ~ThreadCountGuard() { ThreadPool::instance().setThreadCount(saved_); }

  private:
    int saved_;
};

class GenFamilySweep : public ::testing::TestWithParam<Family>
{
};

} // namespace

TEST_P(GenFamilySweep, IdenticalEdgesAcrossThreadsAndChunks)
{
    const GeneratorConfig cfg = smallConfig(GetParam());
    EdgeList baseline;
    {
        ThreadCountGuard guard(1);
        baseline = collect(cfg, 1);
    }
    ASSERT_FALSE(baseline.empty());
    for (int threads : {1, 4, 16}) {
        ThreadCountGuard guard(threads);
        for (int chunks : {1, 8, 64}) {
            const EdgeList got = collect(cfg, chunks);
            ASSERT_EQ(got.size(), baseline.size())
                << "threads=" << threads << " chunks=" << chunks;
            EXPECT_EQ(got, baseline)
                << "threads=" << threads << " chunks=" << chunks;
        }
    }
}

TEST_P(GenFamilySweep, ChecksumStableAcrossChunkGranularity)
{
    const GeneratorConfig cfg = smallConfig(GetParam());
    const uint64_t expect = streamChecksum(cfg, 1);
    for (int chunks : {2, 8, 64})
        EXPECT_EQ(streamChecksum(cfg, chunks), expect)
            << "chunks=" << chunks;
}

TEST_P(GenFamilySweep, DifferentSeedsDifferentEdges)
{
    if (GetParam() == Family::Grid2d)
        GTEST_SKIP() << "the lattice is seed-free by construction";
    GeneratorConfig a = smallConfig(GetParam());
    GeneratorConfig b = a;
    b.seed = a.seed + 1;
    EXPECT_NE(collect(a, 8), collect(b, 8));
}

INSTANTIATE_TEST_SUITE_P(Families, GenFamilySweep,
                         ::testing::Values(Family::Rmat, Family::Rgg2d,
                                           Family::Hyperbolic,
                                           Family::Grid2d),
                         [](const auto &info) {
                             return gen::familyName(info.param);
                         });

namespace {

gen::DegreeStats
degreeStats(const GeneratorConfig &cfg)
{
    gen::ChunkedEdgeStream stream(cfg);
    gen::DegreeAccumulator acc(gen::resolvedVertices(cfg));
    gen::EdgeBlock block;
    while (stream.next(block))
        acc.accumulate(block);
    return acc.finalize();
}

} // namespace

TEST(GenDegreeShape, RmatIsHeavyTailed)
{
    GeneratorConfig cfg = smallConfig(Family::Rmat);
    cfg.n = 1 << 14;
    const gen::DegreeStats stats = degreeStats(cfg);
    // Both endpoints of m = n*avgDegree/2 edges => mean = avgDegree.
    EXPECT_NEAR(stats.meanDegree, cfg.avgDegree, cfg.avgDegree * 0.25);
    // Hubs: the max degree dwarfs the mean, and the log-log histogram
    // slope is clearly negative.
    EXPECT_GT(static_cast<double>(stats.maxDegree),
              stats.meanDegree * 10.0);
    ASSERT_TRUE(stats.slopeValid);
    EXPECT_LT(stats.powerLawSlope, -0.5);
}

TEST(GenDegreeShape, HyperbolicSlopeTracksGamma)
{
    GeneratorConfig cfg = smallConfig(Family::Hyperbolic);
    cfg.n = 1 << 14;
    const gen::DegreeStats stats = degreeStats(cfg);
    ASSERT_TRUE(stats.slopeValid);
    EXPECT_LT(stats.powerLawSlope, -1.0);
    EXPECT_GT(static_cast<double>(stats.maxDegree),
              stats.meanDegree * 10.0);

    // A steeper target exponent flattens the tail: fewer, smaller hubs.
    GeneratorConfig steep = cfg;
    steep.gamma = 6.0;
    const gen::DegreeStats steep_stats = degreeStats(steep);
    EXPECT_LT(steep_stats.maxDegree, stats.maxDegree);
}

TEST(GenDegreeShape, GridTorusIsRegular)
{
    GeneratorConfig cfg = smallConfig(Family::Grid2d);
    cfg.gridRows = 50;
    cfg.gridCols = 80;
    cfg.gridWrap = true;
    const gen::DegreeStats stats = degreeStats(cfg);
    // Torus: every vertex has exactly degree 4.
    EXPECT_EQ(stats.minDegree, 4);
    EXPECT_EQ(stats.maxDegree, 4);
    EXPECT_EQ(stats.distinctDegrees, 1);
    EXPECT_DOUBLE_EQ(stats.modalFraction, 1.0);
    EXPECT_FALSE(stats.slopeValid);
}

TEST(GenDegreeShape, GridInteriorDegreesBounded)
{
    GeneratorConfig cfg = smallConfig(Family::Grid2d);
    cfg.gridRows = 40;
    cfg.gridCols = 60;
    const gen::DegreeStats stats = degreeStats(cfg);
    // Open lattice: corners 2, borders 3, interior 4 — nothing else.
    EXPECT_EQ(stats.minDegree, 2);
    EXPECT_EQ(stats.maxDegree, 4);
    EXPECT_EQ(stats.distinctDegrees, 3);
    EXPECT_EQ(stats.modalDegree, 4);
    EXPECT_GT(stats.modalFraction, 0.9);
}

TEST(GenDegreeShape, RggIsNarrowlySpread)
{
    GeneratorConfig cfg = smallConfig(Family::Rgg2d);
    cfg.n = 8000;
    const gen::DegreeStats stats = degreeStats(cfg);
    // Geometric graphs have Poisson-like degrees: the mean lands near
    // the target and the max stays within a small factor of it —
    // nothing remotely hub-like.
    EXPECT_GT(stats.meanDegree, cfg.avgDegree * 0.5);
    EXPECT_LT(stats.meanDegree, cfg.avgDegree * 1.5);
    EXPECT_LT(static_cast<double>(stats.maxDegree),
              stats.meanDegree * 6.0);
}

TEST(GenDegreeShape, StrideSamplingKeepsMemoryBounded)
{
    GeneratorConfig cfg = smallConfig(Family::Rmat);
    cfg.n = 1 << 14;
    gen::ChunkedEdgeStream stream(cfg);
    gen::DegreeAccumulator acc(gen::resolvedVertices(cfg),
                               /*max_tracked=*/1024);
    gen::EdgeBlock block;
    while (stream.next(block))
        acc.accumulate(block);
    const gen::DegreeStats stats = acc.finalize();
    EXPECT_LE(stats.vertices, 1024);
    EXPECT_EQ(stats.sampleStride, 16); // 16384 / 1024
    EXPECT_LE(acc.residentBytes(), 1024 * 8);
    // The sampled shape still shows the heavy tail.
    EXPECT_GT(static_cast<double>(stats.maxDegree),
              stats.meanDegree * 4.0);
}
