/**
 * @file
 * Streamed minibatch training over a generated edge stream: the chunk
 * compaction is correct, the loss genuinely falls, and the training
 * loop's resident memory stays bounded by chunk-sized state — the
 * reduced-scale version of the acceptance criterion for feeding
 * graphs much larger than memory through training.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "gen/config.hh"
#include "gen/degree_stats.hh"
#include "gen/edge_stream.hh"
#include "gen/stream_train.hh"
#include "graph/batch.hh"

using namespace gnnmark;
using gen::Family;
using gen::GeneratorConfig;

TEST(ChunkGraph, CompactsGlobalIdsDensely)
{
    const std::vector<std::pair<int64_t, int64_t>> edges = {
        {1000000007, 42}, {42, 7}, {1000000007, 7}};
    const ChunkGraph cg =
        ChunkGraph::fromEdges(edges, /*symmetric=*/false);
    EXPECT_EQ(cg.numNodes(), 3);
    ASSERT_EQ(cg.globalIds.size(), 3u);
    // First-seen order: 1000000007, 42, 7.
    EXPECT_EQ(cg.globalIds[0], 1000000007);
    EXPECT_EQ(cg.globalIds[1], 42);
    EXPECT_EQ(cg.globalIds[2], 7);
    EXPECT_EQ(cg.graph.numEdges(), 3);
    // Compact edge (0 -> 1) is global (1000000007 -> 42).
    const auto [begin, end] = cg.graph.neighbors(0);
    EXPECT_EQ(end - begin, 2); // targets 42 and 7
}

TEST(ChunkGraph, SymmetricDoublesEdges)
{
    const std::vector<std::pair<int64_t, int64_t>> edges = {{5, 9},
                                                            {9, 13}};
    const ChunkGraph cg = ChunkGraph::fromEdges(edges);
    EXPECT_EQ(cg.numNodes(), 3);
    EXPECT_EQ(cg.graph.numEdges(), 4);
    EXPECT_GT(cg.bytes(), 0);
}

TEST(ChunkGraph, BytesScaleWithChunkNotGlobalIdSpace)
{
    // A chunk touching vertices near 10^15 costs the same as one near
    // zero: footprint follows the chunk, never the global id range.
    std::vector<std::pair<int64_t, int64_t>> lo, hi;
    const int64_t kFar = int64_t{1} << 50;
    for (int64_t i = 0; i < 100; ++i) {
        lo.emplace_back(i, i + 1);
        hi.emplace_back(kFar + i, kFar + i + 1);
    }
    EXPECT_EQ(ChunkGraph::fromEdges(lo).bytes(),
              ChunkGraph::fromEdges(hi).bytes());
}

namespace {

GeneratorConfig
trainConfig()
{
    GeneratorConfig cfg;
    cfg.family = Family::Hyperbolic;
    cfg.n = 60000;
    cfg.m = 2000000;
    cfg.chunks = 64;
    cfg.lookahead = 2;
    cfg.seed = 7;
    return cfg;
}

} // namespace

TEST(StreamTrain, LossDecreases)
{
    GeneratorConfig cfg = trainConfig();
    gen::ChunkedEdgeStream stream(cfg);
    gen::StreamTrainOptions opts;
    const gen::StreamTrainResult result = gen::streamTrain(stream, opts);
    EXPECT_EQ(result.chunks, stream.chunkCount());
    EXPECT_EQ(result.edgesConsumed, stream.edgesEmitted());
    EXPECT_GT(result.batches, 10);
    EXPECT_GT(result.firstLoss, 0.0);
    // The target is exactly linear in the aggregated features, so the
    // linear model must make real progress over a few dozen batches.
    EXPECT_LT(result.lastLoss, result.firstLoss * 0.5);
}

TEST(StreamTrain, Deterministic)
{
    const GeneratorConfig cfg = trainConfig();
    gen::StreamTrainOptions opts;
    gen::ChunkedEdgeStream s1(cfg), s2(cfg);
    const gen::StreamTrainResult a = gen::streamTrain(s1, opts);
    const gen::StreamTrainResult b = gen::streamTrain(s2, opts);
    EXPECT_EQ(a.batches, b.batches);
    EXPECT_DOUBLE_EQ(a.firstLoss, b.firstLoss);
    EXPECT_DOUBLE_EQ(a.lastLoss, b.lastLoss);
    EXPECT_EQ(a.peakResidentBytes, b.peakResidentBytes);
}

TEST(StreamTrain, PeakResidencyBoundedByChunkBudget)
{
    // The acceptance criterion at reduced scale: training consumes a
    // graph whose full edge list would be ~30 MiB, while the producer
    // window AND the trainer's chunk-local state stay inside a small
    // multiple of the per-chunk budget — memory follows the chunk
    // partitioning, not the graph size.
    GeneratorConfig cfg = trainConfig();
    const int64_t full_bytes =
        cfg.m *
        static_cast<int64_t>(sizeof(std::pair<int64_t, int64_t>));
    const int64_t budget = gen::residentBudgetBytes(cfg);
    ASSERT_LT(budget, full_bytes / 4);

    gen::ChunkedEdgeStream stream(cfg);
    gen::DegreeAccumulator degrees(gen::resolvedVertices(cfg));
    gen::StreamTrainOptions opts;
    const gen::StreamTrainResult result =
        gen::streamTrain(stream, opts, &degrees);

    EXPECT_LE(stream.peakResidentBytes(), budget);
    // Trainer-side state (block + compact subgraph + features +
    // degree counts) is chunk-sized as well: the compact graph holds
    // the symmetrised chunk in int32, well under 4x one chunk's raw
    // block plus the fixed accumulator floor.
    EXPECT_LE(result.peakResidentBytes,
              4 * (full_bytes / cfg.chunks) + degrees.residentBytes() +
                  (int64_t{1} << 16));
    EXPECT_LT(result.peakResidentBytes, full_bytes / 2);
    EXPECT_EQ(result.edgesConsumed, stream.edgesEmitted());
    // The accumulator saw every edge as it streamed past.
    EXPECT_EQ(degrees.finalize().endpointsCounted,
              2 * result.edgesConsumed);
}

TEST(StreamTrain, HandlesTinyStreams)
{
    GeneratorConfig cfg;
    cfg.family = Family::Grid2d;
    cfg.gridRows = 3;
    cfg.gridCols = 3;
    cfg.chunks = 8; // clamps to 3 row-units
    gen::ChunkedEdgeStream stream(cfg);
    gen::StreamTrainOptions opts;
    opts.batchSize = 4;
    const gen::StreamTrainResult result = gen::streamTrain(stream, opts);
    EXPECT_EQ(result.chunks, 3);
    EXPECT_EQ(result.batches, 3);
    EXPECT_EQ(result.edgesConsumed, 12);
}

TEST(StreamTrain, WindowedSeriesCoverEveryChunk)
{
    GeneratorConfig cfg = trainConfig();
    gen::ChunkedEdgeStream stream(cfg);
    gen::StreamTrainOptions opts;
    opts.windowChunks = 2;
    const gen::StreamTrainResult result =
        gen::streamTrain(stream, opts);
    ASSERT_FALSE(result.edgeWindows.empty());
    EXPECT_EQ(result.edgeWindows.size(), result.lossWindows.size());

    int64_t chunks = 0;
    double edges = 0;
    for (const obs::WindowStats &w : result.edgeWindows) {
        EXPECT_LE(w.count, opts.windowChunks);
        chunks += w.count;
        edges += w.sum;
    }
    EXPECT_EQ(chunks, result.chunks);
    EXPECT_DOUBLE_EQ(edges,
                     static_cast<double>(result.edgesConsumed));
    // Loss windows carry real values inside [min, max].
    for (const obs::WindowStats &w : result.lossWindows) {
        if (w.count == 0)
            continue;
        EXPECT_GT(w.minValue, 0);
        EXPECT_LE(w.minValue, w.maxValue);
        EXPECT_GE(w.mean(), w.minValue);
        EXPECT_LE(w.mean(), w.maxValue);
    }
}

TEST(StreamTrain, WindowedSeriesDeterministicAcrossStreams)
{
    const GeneratorConfig cfg = trainConfig();
    gen::StreamTrainOptions opts;
    opts.windowChunks = 3;
    gen::ChunkedEdgeStream s1(cfg), s2(cfg);
    const gen::StreamTrainResult a = gen::streamTrain(s1, opts);
    const gen::StreamTrainResult b = gen::streamTrain(s2, opts);
    ASSERT_EQ(a.lossWindows.size(), b.lossWindows.size());
    for (size_t i = 0; i < a.lossWindows.size(); ++i) {
        EXPECT_EQ(a.lossWindows[i].count, b.lossWindows[i].count);
        EXPECT_DOUBLE_EQ(a.lossWindows[i].sum, b.lossWindows[i].sum);
        EXPECT_DOUBLE_EQ(a.edgeWindows[i].sum, b.edgeWindows[i].sum);
    }
}

TEST(StreamTrain, WindowsOffByDefault)
{
    GeneratorConfig cfg = trainConfig();
    gen::ChunkedEdgeStream stream(cfg);
    const gen::StreamTrainResult result =
        gen::streamTrain(stream, gen::StreamTrainOptions{});
    EXPECT_TRUE(result.edgeWindows.empty());
    EXPECT_TRUE(result.lossWindows.empty());
}
