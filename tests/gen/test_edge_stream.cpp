/**
 * @file
 * Tests for the streaming producer itself: memory stays inside the
 * chunk budget, the materializing path agrees with the stream, the
 * checksum is an honest order-dependent digest, and the telemetry
 * gauges reflect what was emitted.
 */

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "gen/config.hh"
#include "gen/edge_stream.hh"
#include "graph/graph.hh"
#include "obs/metrics.hh"

using namespace gnnmark;
using gen::Family;
using gen::GeneratorConfig;

namespace {

GeneratorConfig
smallConfig(Family family)
{
    GeneratorConfig cfg;
    cfg.family = family;
    cfg.n = 4000;
    cfg.seed = 99;
    return cfg;
}

} // namespace

TEST(EdgeStream, EmitsTargetEdgeVolume)
{
    for (Family family :
         {Family::Rmat, Family::Hyperbolic, Family::Grid2d}) {
        const GeneratorConfig cfg = smallConfig(family);
        gen::ChunkedEdgeStream stream(cfg);
        gen::EdgeBlock block;
        while (stream.next(block)) {
        }
        const double target =
            static_cast<double>(gen::resolvedTargetEdges(cfg));
        // Exact for rmat/grid; an expectation for the scale-free
        // family (self-loop skips pull it slightly under).
        EXPECT_GT(static_cast<double>(stream.edgesEmitted()),
                  target * 0.85)
            << gen::familyName(family);
        EXPECT_LT(static_cast<double>(stream.edgesEmitted()),
                  target * 1.15)
            << gen::familyName(family);
        EXPECT_EQ(stream.chunksEmitted(), stream.chunkCount());
    }
}

TEST(EdgeStream, PeakResidencyStaysInsideBudget)
{
    for (Family family : {Family::Rmat, Family::Rgg2d,
                          Family::Hyperbolic, Family::Grid2d}) {
        GeneratorConfig cfg = smallConfig(family);
        cfg.n = 20000;
        cfg.chunks = 16;
        cfg.lookahead = 2;
        gen::ChunkedEdgeStream stream(cfg);
        gen::EdgeBlock block;
        while (stream.next(block)) {
        }
        EXPECT_LE(stream.peakResidentBytes(),
                  gen::residentBudgetBytes(cfg))
            << gen::familyName(family);
    }
}

TEST(EdgeStream, ChunkingShrinksTheBudgetBelowFullMaterialization)
{
    GeneratorConfig cfg = smallConfig(Family::Rmat);
    cfg.n = 1 << 16;
    cfg.m = 1 << 20;
    cfg.chunks = 64;
    cfg.lookahead = 2;
    const int64_t full_bytes =
        cfg.m *
        static_cast<int64_t>(sizeof(std::pair<int64_t, int64_t>));
    // The streaming window is a small fraction of the materialized
    // edge list — that is the whole point of the subsystem.
    EXPECT_LT(gen::residentBudgetBytes(cfg), full_bytes / 4);

    gen::ChunkedEdgeStream stream(cfg);
    gen::EdgeBlock block;
    while (stream.next(block)) {
    }
    EXPECT_LE(stream.peakResidentBytes(), gen::residentBudgetBytes(cfg));
    EXPECT_LT(stream.peakResidentBytes(), full_bytes / 4);
    EXPECT_EQ(stream.edgesEmitted(), cfg.m);
}

TEST(EdgeStream, BlocksArriveInChunkOrder)
{
    GeneratorConfig cfg = smallConfig(Family::Hyperbolic);
    cfg.chunks = 8;
    gen::ChunkedEdgeStream stream(cfg);
    gen::EdgeBlock block;
    int64_t expect = 0;
    while (stream.next(block))
        EXPECT_EQ(block.chunkIndex, expect++);
    EXPECT_EQ(expect, stream.chunkCount());
}

TEST(EdgeStream, MaterializeAgreesWithStreamContent)
{
    const GeneratorConfig cfg = smallConfig(Family::Grid2d);
    // Grid edges are unique, so the undirected materialized graph has
    // exactly 2x the streamed directed count.
    gen::ChunkedEdgeStream stream(cfg);
    gen::EdgeBlock block;
    while (stream.next(block)) {
    }
    const Graph g = gen::materialize(cfg);
    EXPECT_EQ(g.numNodes(), gen::resolvedVertices(cfg));
    EXPECT_EQ(g.numEdges(), 2 * stream.edgesEmitted());
}

TEST(EdgeStream, ChecksumIsOrderDependent)
{
    uint64_t a = gen::kChecksumSeed;
    a = gen::edgeChecksum(a, 1, 2);
    a = gen::edgeChecksum(a, 3, 4);
    uint64_t b = gen::kChecksumSeed;
    b = gen::edgeChecksum(b, 3, 4);
    b = gen::edgeChecksum(b, 1, 2);
    EXPECT_NE(a, b);

    // Recomputing over the stream's own blocks reproduces its digest.
    const GeneratorConfig cfg = smallConfig(Family::Rmat);
    gen::ChunkedEdgeStream stream(cfg);
    gen::EdgeBlock block;
    uint64_t recomputed = gen::kChecksumSeed;
    while (stream.next(block))
        for (const auto &[u, v] : block.edges)
            recomputed = gen::edgeChecksum(recomputed, u, v);
    EXPECT_EQ(recomputed, stream.checksum());
}

TEST(EdgeStream, TelemetryGaugesTrackEmission)
{
    obs::Metrics::instance().reset();
    const GeneratorConfig cfg = smallConfig(Family::Rmat);
    gen::ChunkedEdgeStream stream(cfg);
    gen::EdgeBlock block;
    while (stream.next(block)) {
    }
    const obs::MetricsSnapshot snap = obs::Metrics::instance().snapshot();
    EXPECT_EQ(snap.gauges.at("gen.edges_total"),
              static_cast<double>(stream.edgesEmitted()));
    EXPECT_EQ(snap.gauges.at("gen.bytes_resident_peak"),
              static_cast<double>(stream.peakResidentBytes()));
    EXPECT_EQ(snap.counters.at("gen.chunks_emitted"),
              static_cast<double>(stream.chunksEmitted()));
    EXPECT_GE(snap.gauges.at("gen.edges_per_sec"), 0.0);
}

TEST(EdgeStream, ClampsChunksToUnitCount)
{
    GeneratorConfig cfg = smallConfig(Family::Grid2d);
    cfg.gridRows = 4; // 4 row-units
    cfg.gridCols = 100;
    cfg.chunks = 64;
    gen::ChunkedEdgeStream stream(cfg);
    EXPECT_EQ(stream.chunkCount(), 4);
    gen::EdgeBlock block;
    int64_t blocks = 0;
    while (stream.next(block))
        ++blocks;
    EXPECT_EQ(blocks, 4);
}
