/**
 * @file
 * The generation report twins: the JSON document carries only
 * deterministic fields, reconstructs the 64-bit checksum exactly from
 * its hi/lo halves, and agrees with the human-readable table.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/reports.hh"
#include "core/reports_json.hh"
#include "obs/json.hh"

using namespace gnnmark;

namespace {

gen::GenReport
sampleReport()
{
    gen::GenReport rep;
    rep.family = "hyperbolic";
    rep.requestedVertices = 20000;
    rep.vertices = 20000;
    rep.targetEdges = 80000;
    rep.chunks = 5;
    rep.lookahead = 4;
    rep.seed = 42;
    rep.threads = 4;
    rep.edges = 80289;
    rep.chunksEmitted = 5;
    rep.checksum = 0x844a4930f016a604ULL;
    rep.peakResidentBytes = 1 << 20;
    rep.residentBudgetBytes = 5 << 20;
    rep.wallSec = 0.25;
    rep.edgesPerSec = 4.0 * 80289;
    rep.hasDegrees = true;
    rep.degreeVertices = 20000;
    rep.minDegree = 1;
    rep.maxDegree = 1432;
    rep.meanDegree = 8.03;
    rep.powerLawSlope = -1.73;
    rep.slopeValid = true;
    rep.modalFraction = 0.162;
    rep.modalDegree = 4;
    rep.distinctDegrees = 135;
    rep.trained = true;
    rep.trainBatches = 5;
    rep.trainEdgesConsumed = 80289;
    rep.trainFirstLoss = 1.363;
    rep.trainLastLoss = 1.313;
    rep.trainPeakResidentBytes = 1 << 19;
    return rep;
}

} // namespace

TEST(GenReportJson, ChecksumRoundTripsThroughHiLoHalves)
{
    const gen::GenReport rep = sampleReport();
    const obs::JsonValue doc = obs::parseJson(reports::genJson(rep));
    const obs::JsonValue *stream =
        doc.find("generation")->find("stream");
    ASSERT_NE(stream, nullptr);
    const uint64_t hi =
        static_cast<uint64_t>(stream->find("checksum_hi")->number);
    const uint64_t lo =
        static_cast<uint64_t>(stream->find("checksum_lo")->number);
    EXPECT_EQ((hi << 32) | lo, rep.checksum);
    // Halves fit doubles exactly.
    EXPECT_LT(hi, uint64_t{1} << 32);
    EXPECT_LT(lo, uint64_t{1} << 32);
}

TEST(GenReportJson, DocumentOmitsWallClock)
{
    const std::string json = reports::genJson(sampleReport());
    EXPECT_EQ(json.find("wall_sec"), std::string::npos);
    EXPECT_EQ(json.find("edges_per_sec"), std::string::npos);
    EXPECT_EQ(json.find("threads"), std::string::npos);
    // The telemetry record is where timing lives.
    const std::string record =
        reports::genRecordJson("gen", sampleReport());
    EXPECT_NE(record.find("\"wall_sec\""), std::string::npos);
    EXPECT_NE(record.find("\"edges_per_sec\""), std::string::npos);
    EXPECT_NE(record.find("\"type\":\"generation\""), std::string::npos);
}

TEST(GenReportJson, DocumentIsByteStable)
{
    EXPECT_EQ(reports::genJson(sampleReport()),
              reports::genJson(sampleReport()));
    // Wall-clock jitter must not leak into the document.
    gen::GenReport other = sampleReport();
    other.wallSec *= 17.0;
    other.edgesPerSec /= 3.0;
    other.threads = 16;
    EXPECT_EQ(reports::genJson(other), reports::genJson(sampleReport()));
}

TEST(GenReportJson, OptionalBlocksAppearOnDemand)
{
    gen::GenReport rep = sampleReport();
    rep.hasDegrees = false;
    rep.trained = false;
    const std::string json = reports::genJson(rep);
    EXPECT_EQ(json.find("degrees"), std::string::npos);
    EXPECT_EQ(json.find("training"), std::string::npos);
    const obs::JsonValue doc = obs::parseJson(json);
    EXPECT_EQ(doc.find("generation")
                  ->find("stream")
                  ->find("edges")
                  ->number,
              80289.0);
}

TEST(GenReportText, TwinAgreesWithJson)
{
    const gen::GenReport rep = sampleReport();
    std::ostringstream os;
    reports::printGen(rep, os);
    const std::string text = os.str();
    // The load-bearing numbers appear in both renderings.
    EXPECT_NE(text.find("80289"), std::string::npos);       // edges
    EXPECT_NE(text.find("844a4930f016a604"), std::string::npos);
    EXPECT_NE(text.find("hyperbolic"), std::string::npos);
    EXPECT_NE(text.find("1432"), std::string::npos);        // max degree
    EXPECT_NE(text.find("-1.730"), std::string::npos);      // slope
    const obs::JsonValue doc = obs::parseJson(reports::genJson(rep));
    EXPECT_EQ(doc.find("generation")
                  ->find("stream")
                  ->find("edges")
                  ->number,
              80289.0);
    EXPECT_EQ(doc.find("generation")
                  ->find("degrees")
                  ->find("max")
                  ->number,
              1432.0);
}
