/** @file Tests for the GeneratorConfig facade and its resolution. */

#include <gtest/gtest.h>

#include "gen/config.hh"
#include "gen/families.hh"

using namespace gnnmark;
using gen::Family;
using gen::GeneratorConfig;

TEST(GenConfig, FamilyNamesRoundTrip)
{
    for (Family f : {Family::Rmat, Family::Rgg2d, Family::Hyperbolic,
                     Family::Grid2d}) {
        Family parsed;
        ASSERT_TRUE(gen::parseFamily(gen::familyName(f), parsed));
        EXPECT_EQ(parsed, f);
    }
    Family parsed;
    EXPECT_FALSE(gen::parseFamily("klein-bottle", parsed));
    EXPECT_FALSE(gen::parseFamily("", parsed));
    EXPECT_FALSE(gen::parseFamily("RMAT", parsed));
}

TEST(GenConfig, DefaultIsValid)
{
    GeneratorConfig cfg;
    EXPECT_EQ(gen::validateConfig(cfg), "");
}

TEST(GenConfig, RejectsBadScale)
{
    GeneratorConfig cfg;
    cfg.n = -4;
    EXPECT_NE(gen::validateConfig(cfg), "");
    cfg.n = 1;
    EXPECT_NE(gen::validateConfig(cfg), "");
    cfg = GeneratorConfig{};
    cfg.m = -1;
    EXPECT_NE(gen::validateConfig(cfg), "");
    cfg = GeneratorConfig{};
    cfg.m = 0;
    cfg.avgDegree = 0.0;
    EXPECT_NE(gen::validateConfig(cfg), "");
}

TEST(GenConfig, RejectsBadChunking)
{
    GeneratorConfig cfg;
    cfg.chunks = 0;
    EXPECT_NE(gen::validateConfig(cfg), "");
    cfg = GeneratorConfig{};
    cfg.lookahead = 0;
    EXPECT_NE(gen::validateConfig(cfg), "");
}

TEST(GenConfig, RejectsBadFamilyKnobs)
{
    GeneratorConfig cfg;
    cfg.rmatA = 0.0;
    EXPECT_NE(gen::validateConfig(cfg), "");
    cfg = GeneratorConfig{};
    cfg.rmatA = 0.5;
    cfg.rmatB = 0.3;
    cfg.rmatC = 0.3; // sum >= 1 leaves no mass for quadrant d
    EXPECT_NE(gen::validateConfig(cfg), "");

    cfg = GeneratorConfig{};
    cfg.family = Family::Hyperbolic;
    cfg.gamma = 2.0; // must be > 2
    EXPECT_NE(gen::validateConfig(cfg), "");

    cfg = GeneratorConfig{};
    cfg.family = Family::Grid2d;
    cfg.gridRows = 4; // rows without cols
    EXPECT_NE(gen::validateConfig(cfg), "");
    cfg.gridCols = 1; // < 2
    EXPECT_NE(gen::validateConfig(cfg), "");
    cfg.gridCols = 8;
    EXPECT_EQ(gen::validateConfig(cfg), "");
}

TEST(GenConfig, RmatRoundsToPowerOfTwo)
{
    GeneratorConfig cfg;
    cfg.family = Family::Rmat;
    cfg.n = 1000;
    EXPECT_EQ(gen::resolvedVertices(cfg), 1024);
    cfg.n = 1024;
    EXPECT_EQ(gen::resolvedVertices(cfg), 1024);
    cfg.n = 1025;
    EXPECT_EQ(gen::resolvedVertices(cfg), 2048);
}

TEST(GenConfig, TargetEdgesFromDegreeOrM)
{
    GeneratorConfig cfg;
    cfg.family = Family::Rgg2d;
    cfg.n = 1000;
    cfg.avgDegree = 10.0;
    EXPECT_EQ(gen::resolvedTargetEdges(cfg), 5000);
    cfg.m = 777;
    EXPECT_EQ(gen::resolvedTargetEdges(cfg), 777);
}

TEST(GenConfig, GridShapeExactAndFactored)
{
    GeneratorConfig cfg;
    cfg.family = Family::Grid2d;
    cfg.gridRows = 6;
    cfg.gridCols = 9;
    int64_t rows = 0, cols = 0;
    gen::resolvedGridShape(cfg, rows, cols);
    EXPECT_EQ(rows, 6);
    EXPECT_EQ(cols, 9);
    EXPECT_EQ(gen::resolvedVertices(cfg), 54);
    // Interior lattice: r*(c-1) + c*(r-1) edges.
    EXPECT_EQ(gen::resolvedTargetEdges(cfg), 6 * 8 + 9 * 5);

    cfg = GeneratorConfig{};
    cfg.family = Family::Grid2d;
    cfg.n = 12;
    gen::resolvedGridShape(cfg, rows, cols);
    EXPECT_GE(rows, 2);
    EXPECT_GE(cols, 2);
    EXPECT_EQ(rows * cols, gen::resolvedVertices(cfg));
    EXPECT_LE(rows * cols, 12 + cols); // near n, never wildly above

    cfg.gridWrap = true;
    // Torus: every vertex emits right + down => exactly 2 * n edges.
    EXPECT_EQ(gen::resolvedTargetEdges(cfg), 2 * rows * cols);
}

TEST(GenConfig, UnitCountIndependentOfChunksAndPositive)
{
    for (Family f : {Family::Rmat, Family::Rgg2d, Family::Hyperbolic,
                     Family::Grid2d}) {
        GeneratorConfig cfg;
        cfg.family = f;
        cfg.n = 5000;
        const int64_t units = gen::unitCount(cfg);
        EXPECT_GE(units, 1) << gen::familyName(f);
        cfg.chunks = 64;
        cfg.lookahead = 1;
        EXPECT_EQ(gen::unitCount(cfg), units) << gen::familyName(f);
    }
}
