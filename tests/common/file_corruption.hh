/**
 * @file
 * Shared file-corruption helpers for on-disk format regression tests
 * (checkpoints, kernel traces): flip bytes, truncate, append garbage.
 * Each helper asserts (gtest) that the mutation itself succeeded so a
 * test failure always points at the reader under test.
 */

#ifndef GNNMARK_TESTS_COMMON_FILE_CORRUPTION_HH
#define GNNMARK_TESTS_COMMON_FILE_CORRUPTION_HH

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

namespace gnnmark {
namespace test {

/** Size of `path` in bytes; fails the test if the file is missing. */
inline long
fileSize(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    if (f == nullptr)
        return 0;
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    return size;
}

/** XOR the byte at `offset` (negative = from the end) with 0xff. */
inline void
flipByteAt(const std::string &path, long offset)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr) << path;
    std::fseek(f, offset, offset < 0 ? SEEK_END : SEEK_SET);
    const int c = std::fgetc(f);
    ASSERT_NE(c, EOF) << path;
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(c ^ 0xff, f);
    ASSERT_EQ(std::fclose(f), 0) << path;
}

/** Cut the file down to `fraction` of its current size. */
inline void
truncateToFraction(const std::string &path, double fraction)
{
    const long full = fileSize(path);
    ASSERT_GT(full, 0) << path;
    ASSERT_EQ(truncate(path.c_str(),
                       static_cast<long>(full * fraction)),
              0)
        << path;
}

/** Append `n` garbage bytes after a well-formed image. */
inline void
appendGarbage(const std::string &path, int n)
{
    std::FILE *f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr) << path;
    for (int i = 0; i < n; ++i)
        std::fputc(0x5a, f);
    ASSERT_EQ(std::fclose(f), 0) << path;
}

} // namespace test
} // namespace gnnmark

#endif // GNNMARK_TESTS_COMMON_FILE_CORRUPTION_HH
