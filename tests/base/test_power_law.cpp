/** @file Tests for the shared power-law / Zipf sampling machinery. */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "base/power_law.hh"
#include "base/rng.hh"

using namespace gnnmark;

TEST(PowerLawSampler, InRangeAndDeterministic)
{
    PowerLawSampler sampler(1000, 2.0);
    Rng a(7), b(7);
    for (int i = 0; i < 5000; ++i) {
        const int64_t x = sampler.draw(a);
        EXPECT_GE(x, 0);
        EXPECT_LT(x, 1000);
        EXPECT_EQ(x, sampler.draw(b));
    }
}

TEST(PowerLawSampler, SkewOneIsUniform)
{
    PowerLawSampler sampler(10, 1.0);
    Rng rng(3);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[static_cast<size_t>(sampler.draw(rng))];
    for (int c : counts)
        EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
}

TEST(PowerLawSampler, HigherSkewConcentratesOnHead)
{
    Rng r1(5), r2(5);
    PowerLawSampler mild(1000, 1.5), steep(1000, 4.0);
    int64_t head_mild = 0, head_steep = 0;
    for (int i = 0; i < 20000; ++i) {
        head_mild += mild.draw(r1) < 10;
        head_steep += steep.draw(r2) < 10;
    }
    EXPECT_GT(head_steep, head_mild * 2);
}

TEST(PowerLawSampler, EmpiricalExponentMatchesSkew)
{
    // P(i) decays like i^(1/skew - 1); check the head/tail mass ratio
    // against the closed-form CDF F(i) = ((i+1)/n)^(1/skew).
    const double skew = 2.0;
    const int64_t n = 1 << 16;
    PowerLawSampler sampler(n, skew);
    Rng rng(11);
    const int draws = 200000;
    int64_t below = 0;
    const int64_t split = n / 4;
    for (int i = 0; i < draws; ++i)
        below += sampler.draw(rng) < split;
    const double expect =
        std::pow(static_cast<double>(split) / static_cast<double>(n),
                 1.0 / skew);
    EXPECT_NEAR(static_cast<double>(below) / draws, expect, 0.01);
}

TEST(PowerLawSampler, SkewForExponentRoundTrip)
{
    for (double beta : {0.1, 0.5, 0.9}) {
        const double skew = PowerLawSampler::skewForExponent(beta);
        EXPECT_GE(skew, 1.0);
        // skew = 1/(1-beta)  <=>  1 - 1/skew = beta
        EXPECT_NEAR(1.0 - 1.0 / skew, beta, 1e-12);
    }
}

TEST(DegreePool, PicksProportionalToDegree)
{
    DegreePool pool;
    pool.add(0);
    // Node 1 gets degree 3, node 2 gets degree 1.
    pool.addEdge(1, 2);
    pool.addEdge(1, 0);
    pool.addEdge(1, 0);
    ASSERT_EQ(pool.size(), 7u);

    Rng rng(9);
    std::vector<int> counts(3, 0);
    const int n = 70000;
    for (int i = 0; i < n; ++i)
        ++counts[static_cast<size_t>(pool.pick(rng))];
    // Mass: node 0 = 3/7, node 1 = 3/7, node 2 = 1/7.
    EXPECT_NEAR(counts[0], n * 3.0 / 7.0, n * 0.02);
    EXPECT_NEAR(counts[1], n * 3.0 / 7.0, n * 0.02);
    EXPECT_NEAR(counts[2], n * 1.0 / 7.0, n * 0.02);
}

TEST(DegreePool, DeterministicForFixedSeed)
{
    DegreePool pool;
    pool.add(0);
    for (int32_t v = 1; v < 50; ++v)
        pool.addEdge(v, v / 2);
    Rng a(21), b(21);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(pool.pick(a), pool.pick(b));
}
