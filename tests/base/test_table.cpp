/** @file Tests for the table printer. */

#include <gtest/gtest.h>

#include <sstream>

#include "base/table.hh"

using namespace gnnmark;

TEST(Table, AlignsColumns)
{
    TablePrinter t;
    t.setHeader({"Name", "Value"});
    t.addRow({"alpha", "1.5"});
    t.addRow({"b", "20.25"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("Name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    // Numeric cells are right-aligned to the same column end.
    auto line_of = [&](const std::string &needle) {
        size_t pos = out.find(needle);
        size_t start = out.rfind('\n', pos);
        return out.substr(start + 1, out.find('\n', pos) - start - 1);
    };
    std::string l1 = line_of("alpha");
    std::string l2 = line_of("20.25");
    EXPECT_EQ(l1.size(), l2.size());
}

TEST(Table, TitlePrinted)
{
    TablePrinter t("My Title");
    t.setHeader({"A"});
    t.addRow({"x"});
    std::ostringstream os;
    t.print(os);
    EXPECT_EQ(os.str().rfind("My Title", 0), 0u);
}

TEST(Table, CsvEscapesSpecials)
{
    TablePrinter t;
    t.setHeader({"a", "b"});
    t.addRow({"has,comma", "has\"quote"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_NE(os.str().find("\"has,comma\""), std::string::npos);
    EXPECT_NE(os.str().find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, ShortRowsPad)
{
    TablePrinter t;
    t.setHeader({"a", "b", "c"});
    t.addRow({"only-one"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(TableDeath, RowWiderThanHeaderPanics)
{
    TablePrinter t;
    t.setHeader({"a"});
    EXPECT_DEATH(t.addRow({"1", "2"}), "row wider than header");
}
