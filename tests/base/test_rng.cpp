/** @file Unit and property tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "base/rng.hh"

using namespace gnnmark;

TEST(Rng, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespected)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        float u = rng.uniform(-2.5f, 3.5f);
        EXPECT_GE(u, -2.5f);
        EXPECT_LT(u, 3.5f);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments)
{
    Rng rng(13);
    double sum = 0, sq = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double v = rng.normal();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaled)
{
    Rng rng(17);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, RandintBounds)
{
    Rng rng(19);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.randint(uint64_t{17}), 17u);
}

TEST(Rng, RandintCoversAllValues)
{
    Rng rng(23);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.randint(uint64_t{8}));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RandintInclusiveRange)
{
    Rng rng(29);
    for (int i = 0; i < 1000; ++i) {
        int64_t v = rng.randint(int64_t{-3}, int64_t{3});
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
    }
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(31);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, DiscreteFollowsWeights)
{
    Rng rng(37);
    std::vector<double> w = {1.0, 3.0};
    int ones = 0;
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ones += rng.discrete(w) == 1;
    EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(Rng, DiscreteSkipsZeroWeight)
{
    Rng rng(41);
    std::vector<double> w = {0.0, 1.0, 0.0};
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(rng.discrete(w), 1u);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(43);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8, 9};
    auto orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Rng, PermutationContainsAll)
{
    Rng rng(47);
    auto p = rng.permutation(100);
    std::set<int32_t> s(p.begin(), p.end());
    EXPECT_EQ(s.size(), 100u);
    EXPECT_EQ(*s.begin(), 0);
    EXPECT_EQ(*s.rbegin(), 99);
}

TEST(Rng, ForkIndependent)
{
    Rng a(53);
    Rng child = a.fork();
    // Child diverges from parent's continued stream.
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == child.next();
    EXPECT_LT(same, 3);
}

/** Property sweep: randint has no obvious modulo bias at many bounds. */
class RngBoundSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RngBoundSweep, RandintRoughlyUniform)
{
    const uint64_t bound = GetParam();
    Rng rng(bound * 977 + 1);
    std::vector<int> counts(bound, 0);
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.randint(bound)];
    const double expect = static_cast<double>(n) / bound;
    for (uint64_t b = 0; b < bound; ++b)
        EXPECT_NEAR(counts[b], expect, expect * 0.35 + 20);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundSweep,
                         ::testing::Values(2, 3, 7, 10, 16, 33, 100));

TEST(RngState, RoundTripResumesStream)
{
    Rng rng(99);
    for (int i = 0; i < 57; ++i)
        rng.next();

    RngState snap = rng.state();
    std::vector<uint64_t> expect;
    for (int i = 0; i < 100; ++i)
        expect.push_back(rng.next());

    rng.setState(snap);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.next(), expect[static_cast<size_t>(i)]);
}

TEST(RngState, CapturesBoxMullerSpare)
{
    // normal() caches a spare normal on every other call; a snapshot
    // taken between the pair must restore the cached value too.
    Rng rng(7);
    rng.normal(); // generates a pair, caches the spare

    RngState snap = rng.state();
    EXPECT_TRUE(snap.hasSpareNormal);
    const double next_normal = rng.normal(); // consumes the spare
    const uint64_t next_word = rng.next();

    Rng other(12345);
    other.setState(snap);
    EXPECT_DOUBLE_EQ(other.normal(), next_normal);
    EXPECT_EQ(other.next(), next_word);
}

TEST(RngState, StateEqualityDetectsDrift)
{
    Rng a(3), b(3);
    EXPECT_TRUE(a.state() == b.state());
    a.next();
    EXPECT_FALSE(a.state() == b.state());
}

TEST(RngSplit, PureFunctionOfStateAndId)
{
    Rng parent(42);
    parent.next();
    parent.next();
    const RngState before = parent.state();

    Rng a = parent.split(7);
    // split() must not advance the parent...
    EXPECT_TRUE(parent.state() == before);
    // ...and an equal-state generator derives the identical child.
    Rng twin(0);
    twin.setState(before);
    Rng b = twin.split(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngSplit, DistinctIdsGiveDistinctStreams)
{
    Rng parent(42);
    Rng a = parent.split(0);
    Rng b = parent.split(1);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(RngSplit, CrossStreamCorrelationSmoke)
{
    // Pearson correlation between sibling uniform streams should be
    // statistically indistinguishable from zero.
    Rng parent(1234);
    const int n = 50000;
    for (uint64_t id = 0; id < 8; id += 2) {
        Rng a = parent.split(id);
        Rng b = parent.split(id + 1);
        double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
        for (int i = 0; i < n; ++i) {
            const double x = a.uniform(), y = b.uniform();
            sa += x;
            sb += y;
            saa += x * x;
            sbb += y * y;
            sab += x * y;
        }
        const double cov = sab / n - (sa / n) * (sb / n);
        const double va = saa / n - (sa / n) * (sa / n);
        const double vb = sbb / n - (sb / n) * (sb / n);
        const double corr = cov / std::sqrt(va * vb);
        EXPECT_LT(std::abs(corr), 0.02)
            << "streams " << id << " and " << id + 1;
    }
}

TEST(RngSplit, ChildrenSurviveStateRoundTrip)
{
    Rng parent(7);
    parent.next();
    const RngState snap = parent.state();
    std::vector<uint64_t> expect;
    {
        Rng child = parent.split(3);
        for (int i = 0; i < 50; ++i)
            expect.push_back(child.next());
    }
    Rng restored(999);
    restored.setState(snap);
    Rng child = restored.split(3);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(child.next(), expect[static_cast<size_t>(i)]);
}

TEST(RngSplit, ChildMeanIsUniform)
{
    Rng parent(5);
    Rng child = parent.split(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += child.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}
