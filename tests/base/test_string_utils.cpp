/** @file Tests for the string helpers. */

#include <gtest/gtest.h>

#include "base/string_utils.hh"
#include "base/units.hh"

using namespace gnnmark;

TEST(StringUtils, JoinBasics)
{
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"a"}, ","), "a");
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtils, SplitBasics)
{
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
}

TEST(StringUtils, SplitJoinRoundTrip)
{
    std::string s = "one|two|three";
    EXPECT_EQ(join(split(s, '|'), "|"), s);
}

TEST(StringUtils, StrfmtFormats)
{
    EXPECT_EQ(strfmt("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(strfmt("%.2f", 3.14159), "3.14");
    EXPECT_EQ(strfmt("empty"), "empty");
}

TEST(StringUtils, Padding)
{
    EXPECT_EQ(padLeft("ab", 5), "   ab");
    EXPECT_EQ(padRight("ab", 5), "ab   ");
    EXPECT_EQ(padLeft("abcdef", 3), "abcdef");
}

TEST(StringUtils, FixedAndPercent)
{
    EXPECT_EQ(fixed(1.23456, 2), "1.23");
    EXPECT_EQ(percent(0.343, 1), "34.3%");
    EXPECT_EQ(percent(1.0, 0), "100%");
}

TEST(Units, FormatBytes)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(6.0 * 1024 * 1024), "6.0 MiB");
    EXPECT_EQ(formatBytes(2.5 * 1024 * 1024 * 1024), "2.5 GiB");
}

TEST(Units, FormatSi)
{
    EXPECT_EQ(formatSi(1.99e12), "1.99 T");
    EXPECT_EQ(formatSi(705e9, 0), "705 G");
    EXPECT_EQ(formatSi(12.0, 1), "12.0");
}
