/** @file Thread pool semantics: coverage, chunking, determinism. */

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <utility>
#include <vector>

#include "base/thread_pool.hh"

using namespace gnnmark;

namespace {

/** Scoped thread-count override that restores the previous value. */
class ThreadCountGuard
{
  public:
    explicit ThreadCountGuard(int n)
        : prev_(ThreadPool::instance().threadCount())
    {
        ThreadPool::instance().setThreadCount(n);
    }
    ~ThreadCountGuard() { ThreadPool::instance().setThreadCount(prev_); }

  private:
    int prev_;
};

/** Chunk boundaries seen by one parallel_for run, sorted by begin. */
std::vector<std::pair<int64_t, int64_t>>
observedChunks(int64_t begin, int64_t end, int64_t grain)
{
    std::mutex mu;
    std::vector<std::pair<int64_t, int64_t>> chunks;
    parallel_for(begin, end, grain, [&](int64_t b, int64_t e) {
        std::lock_guard<std::mutex> lock(mu);
        chunks.emplace_back(b, e);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
}

} // namespace

TEST(ThreadPool, SetThreadCountIsRespected)
{
    ThreadCountGuard guard(3);
    EXPECT_EQ(ThreadPool::instance().threadCount(), 3);
}

TEST(ThreadPool, EmptyRangeRunsNothing)
{
    ThreadCountGuard guard(4);
    std::atomic<int> calls{0};
    parallel_for(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
    parallel_for(7, 3, 1, [&](int64_t, int64_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    for (int threads : {1, 2, 8}) {
        ThreadCountGuard guard(threads);
        const int64_t n = 1000;
        std::vector<std::atomic<int>> hits(n);
        for (auto &h : hits)
            h = 0;
        parallel_for(0, n, 7, [&](int64_t b, int64_t e) {
            for (int64_t i = b; i < e; ++i)
                ++hits[i];
        });
        for (int64_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "i=" << i;
    }
}

TEST(ThreadPool, ChunkBoundariesIndependentOfThreadCount)
{
    std::vector<std::pair<int64_t, int64_t>> ref;
    {
        ThreadCountGuard guard(1);
        ref = observedChunks(3, 250, 16);
    }
    for (int threads : {2, 8}) {
        ThreadCountGuard guard(threads);
        EXPECT_EQ(observedChunks(3, 250, 16), ref)
            << "threads=" << threads;
    }
    // Chunk layout is (begin, min(begin + grain, end)) stepped by grain.
    ASSERT_FALSE(ref.empty());
    EXPECT_EQ(ref.front().first, 3);
    EXPECT_EQ(ref.back().second, 250);
    for (size_t i = 1; i < ref.size(); ++i)
        EXPECT_EQ(ref[i].first, ref[i - 1].second);
}

TEST(ThreadPool, NestedParallelForFallsBackToSerial)
{
    ThreadCountGuard guard(4);
    std::atomic<int64_t> total{0};
    parallel_for(0, 8, 1, [&](int64_t, int64_t) {
        // Inner loop must not deadlock on the (busy) outer pool.
        parallel_for(0, 10, 2, [&](int64_t b, int64_t e) {
            total += e - b;
        });
    });
    EXPECT_EQ(total.load(), 80);
}

TEST(ThreadPool, ReduceMatchesSerialSum)
{
    std::vector<int64_t> v(10000);
    std::iota(v.begin(), v.end(), 0);
    const int64_t expect =
        std::accumulate(v.begin(), v.end(), int64_t{0});
    for (int threads : {1, 2, 8}) {
        ThreadCountGuard guard(threads);
        int64_t sum = parallel_reduce(
            0, static_cast<int64_t>(v.size()), 64, int64_t{0},
            [&](int64_t b, int64_t e) {
                int64_t s = 0;
                for (int64_t i = b; i < e; ++i)
                    s += v[i];
                return s;
            },
            [](int64_t a, int64_t b) { return a + b; });
        EXPECT_EQ(sum, expect) << "threads=" << threads;
    }
}

TEST(ThreadPool, FloatReduceBitwiseStableAcrossThreadCounts)
{
    // Chunked float accumulation is order-sensitive; the chunk layout
    // (not the thread count) must fix the combine order.
    std::vector<float> v(4097);
    for (size_t i = 0; i < v.size(); ++i)
        v[i] = 1.0f / static_cast<float>(i + 1);
    auto run = [&]() {
        return parallel_reduce(
            0, static_cast<int64_t>(v.size()), 100, 0.0f,
            [&](int64_t b, int64_t e) {
                float s = 0.0f;
                for (int64_t i = b; i < e; ++i)
                    s += v[i];
                return s;
            },
            [](float a, float b) { return a + b; });
    };
    float ref;
    {
        ThreadCountGuard guard(1);
        ref = run();
    }
    for (int threads : {2, 8}) {
        ThreadCountGuard guard(threads);
        EXPECT_EQ(run(), ref) << "threads=" << threads;
    }
}
