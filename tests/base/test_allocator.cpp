/** @file Caching arena allocator + deterministic device address space. */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "base/allocator.hh"

using namespace gnnmark;

namespace {

uint64_t
addrOf(void *p)
{
    return reinterpret_cast<uint64_t>(p);
}

} // namespace

TEST(Allocator, BlocksAreAligned)
{
    for (Allocator *a : {&systemAllocator(), &cachingAllocator()}) {
        for (size_t bytes : {size_t{1}, size_t{100}, size_t{4096},
                             size_t{1} << 20}) {
            void *p = a->allocate(bytes);
            ASSERT_NE(p, nullptr);
            EXPECT_EQ(addrOf(p) % kAllocAlign, 0u)
                << a->name() << " " << bytes;
            // The block must really be writable end to end.
            std::memset(p, 0xab, bytes);
            a->deallocate(p, bytes);
        }
    }
}

TEST(Allocator, CachingReusesFreedBlockLifo)
{
    Allocator &a = cachingAllocator();
    void *p1 = a.allocate(1000);
    a.deallocate(p1, 1000);
    // Same bucket -> the freed block comes straight back (LIFO).
    void *p2 = a.allocate(900);
    EXPECT_EQ(p1, p2);
    // And with it gone, a third request gets a different block.
    void *p3 = a.allocate(1000);
    EXPECT_NE(p2, p3);
    a.deallocate(p2, 900);
    a.deallocate(p3, 1000);
}

TEST(Allocator, CachingStatsCountHitsAndMisses)
{
    Allocator &a = cachingAllocator();
    const AllocStats before = a.stats();

    void *p = a.allocate(512);
    a.deallocate(p, 512);
    void *q = a.allocate(512); // must be a free-list hit
    a.deallocate(q, 512);

    const AllocStats after = a.stats();
    EXPECT_EQ(after.requests - before.requests, 2u);
    EXPECT_EQ(after.releases - before.releases, 2u);
    EXPECT_GE(after.cacheHits - before.cacheHits, 1u);
    EXPECT_EQ(after.bytesLive, before.bytesLive);
    EXPECT_GE(after.bytesPeak, before.bytesPeak);
}

TEST(Allocator, SystemModeCallsHeapEveryTime)
{
    Allocator &a = systemAllocator();
    const AllocStats before = a.stats();
    void *p = a.allocate(512);
    a.deallocate(p, 512);
    void *q = a.allocate(512);
    a.deallocate(q, 512);
    const AllocStats after = a.stats();
    EXPECT_EQ(after.requests - before.requests, 2u);
    EXPECT_EQ(after.heapCalls - before.heapCalls, 2u);
    EXPECT_EQ(after.cacheHits, before.cacheHits);
}

TEST(Allocator, LargeBlocksBypassSlabs)
{
    Allocator &a = cachingAllocator();
    const AllocStats before = a.stats();
    const size_t big = size_t{3} << 20; // above the slab threshold
    void *p = a.allocate(big);
    std::memset(p, 0, big);
    const AllocStats mid = a.stats();
    EXPECT_GE(mid.bytesLive - before.bytesLive, big);
    a.deallocate(p, big);
    // Freed large blocks are cached too: same address comes back.
    void *q = a.allocate(big);
    EXPECT_EQ(p, q);
    a.deallocate(q, big);
    EXPECT_EQ(a.stats().bytesLive, before.bytesLive);
}

TEST(Allocator, ByNameResolvesModes)
{
    EXPECT_EQ(allocatorByName("caching"), &cachingAllocator());
    EXPECT_EQ(allocatorByName("system"), &systemAllocator());
    EXPECT_EQ(allocatorByName("bogus"), nullptr);
    EXPECT_STREQ(cachingAllocator().name(), "caching");
    EXPECT_STREQ(systemAllocator().name(), "system");
}

TEST(Allocator, BindingIsThreadLocal)
{
    Allocator *outer = boundAllocator();
    bindAllocator(&systemAllocator());
    EXPECT_EQ(&currentAllocator(), &systemAllocator());
    std::thread([] {
        // A fresh thread starts unbound and sees the default.
        EXPECT_EQ(boundAllocator(), nullptr);
        EXPECT_EQ(&currentAllocator(), &defaultAllocator());
    }).join();
    bindAllocator(outer);
}

TEST(Allocator, MultiThreadedStressBalances)
{
    Allocator &a = cachingAllocator();
    const AllocStats before = a.stats();
    constexpr int kThreads = 8;
    constexpr int kIters = 2000;

    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&a, t] {
            // Deterministic interleaved alloc/free with a small window
            // of live blocks so frees hit both fresh and aged blocks.
            std::vector<std::pair<void *, size_t>> live;
            for (int i = 0; i < kIters; ++i) {
                const size_t bytes =
                    64 + static_cast<size_t>((i * 37 + t * 101) % 8192);
                void *p = a.allocate(bytes);
                ASSERT_NE(p, nullptr);
                static_cast<char *>(p)[0] = static_cast<char>(i);
                static_cast<char *>(p)[bytes - 1] =
                    static_cast<char>(t);
                live.emplace_back(p, bytes);
                if (live.size() > 16) {
                    const size_t victim = (i * 13 + t) % live.size();
                    a.deallocate(live[victim].first,
                                 live[victim].second);
                    live.erase(live.begin() +
                               static_cast<ptrdiff_t>(victim));
                }
            }
            for (auto &[p, bytes] : live)
                a.deallocate(p, bytes);
        });
    }
    for (std::thread &w : workers)
        w.join();

    const AllocStats after = a.stats();
    EXPECT_EQ(after.requests - before.requests,
              static_cast<uint64_t>(kThreads) * kIters);
    EXPECT_EQ(after.releases - before.releases,
              static_cast<uint64_t>(kThreads) * kIters);
    EXPECT_EQ(after.bytesLive, before.bytesLive);
}

TEST(DeviceAddrSpace, AddressesStartAboveTheArenaBase)
{
    DeviceSpan s(64);
    EXPECT_GE(s.addr(), uint64_t{1} << 46);
}

TEST(DeviceAddrSpace, MapUnmapMapReturnsTheSameAddress)
{
    DeviceAddrSpace &va = DeviceAddrSpace::instance();
    const uint64_t a1 = va.map(4096);
    va.unmap(a1, 4096);
    const uint64_t a2 = va.map(4096);
    EXPECT_EQ(a1, a2); // LIFO recycling: iteration-stable addresses
    va.unmap(a2, 4096);
}

TEST(DeviceAddrSpace, LiveMappingsDoNotOverlap)
{
    DeviceAddrSpace &va = DeviceAddrSpace::instance();
    std::vector<std::pair<uint64_t, size_t>> maps;
    for (size_t bytes : {size_t{100}, size_t{100}, size_t{5000},
                         size_t{1} << 17, size_t{256}}) {
        maps.emplace_back(va.map(bytes), bytes);
    }
    for (size_t i = 0; i < maps.size(); ++i) {
        for (size_t j = i + 1; j < maps.size(); ++j) {
            const uint64_t ai = maps[i].first, bi = maps[j].first;
            const uint64_t ei = ai + maps[i].second;
            const uint64_t ej = bi + maps[j].second;
            EXPECT_TRUE(ei <= bi || ej <= ai)
                << "overlap between mapping " << i << " and " << j;
        }
    }
    for (auto &[addr, bytes] : maps)
        va.unmap(addr, bytes);
}

TEST(DeviceSpan, MoveTransfersOwnership)
{
    DeviceSpan a(512);
    const uint64_t addr = a.addr();
    DeviceSpan b(std::move(a));
    EXPECT_EQ(b.addr(), addr);
    EXPECT_EQ(a.addr(), 0u);
    EXPECT_EQ(a.bytes(), 0u);

    DeviceSpan c;
    c = std::move(b);
    EXPECT_EQ(c.addr(), addr);
    EXPECT_EQ(b.bytes(), 0u);
}
