/** @file Tests for panic/fatal/assert reporting. */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "base/logging.hh"

using namespace gnnmark;

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(GNN_PANIC("boom %d", 42), "panic.*boom 42");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT(GNN_FATAL("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "fatal.*bad config x");
}

TEST(LoggingDeath, AssertReportsConditionAndMessage)
{
    int value = 3;
    EXPECT_DEATH(GNN_ASSERT(value == 4, "value was %d", value),
                 "assertion 'value == 4' failed: value was 3");
}

TEST(Logging, AssertPassesQuietly)
{
    GNN_ASSERT(1 + 1 == 2, "arithmetic is broken");
    SUCCEED();
}

namespace {

/** RAII log-level override so tests cannot leak state. */
struct ScopedLogLevel
{
    explicit ScopedLogLevel(LogLevel level) : saved(logLevel())
    {
        setLogLevel(level);
    }
    ~ScopedLogLevel() { setLogLevel(saved); }
    LogLevel saved;
};

} // namespace

TEST(LogLevel, WarnSinkCapturesFormattedMessage)
{
    ScopedLogLevel lvl(LogLevel::Info);
    std::vector<std::string> captured;
    setWarnSink([&](const std::string &msg) { captured.push_back(msg); });
    warn("disk %s at %d%%", "sda", 93);
    setWarnSink(nullptr);
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0], "disk sda at 93%");
}

TEST(LogLevel, SilentSuppressesWarn)
{
    ScopedLogLevel lvl(LogLevel::Silent);
    std::vector<std::string> captured;
    setWarnSink([&](const std::string &msg) { captured.push_back(msg); });
    warn("should never arrive");
    setWarnSink(nullptr);
    EXPECT_TRUE(captured.empty());
}

TEST(LogLevel, WarnLevelStillEmitsWarnings)
{
    ScopedLogLevel lvl(LogLevel::Warn);
    std::vector<std::string> captured;
    setWarnSink([&](const std::string &msg) { captured.push_back(msg); });
    warn("still visible");
    setWarnSink(nullptr);
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0], "still visible");
}

TEST(LogLevel, FatalIgnoresSilence)
{
    // fatal/panic always report, whatever the level.
    ScopedLogLevel lvl(LogLevel::Silent);
    EXPECT_EXIT(GNN_FATAL("fatal beats silence"),
                ::testing::ExitedWithCode(1), "fatal beats silence");
}

namespace {

/** RAII rate-limit override; restoring also clears duplicate counts. */
struct ScopedWarnLimit
{
    explicit ScopedWarnLimit(int limit) { setWarnRateLimit(limit); }
    ~ScopedWarnLimit()
    {
        flushSuppressedWarnings();
        setWarnRateLimit(5);
    }
};

} // namespace

TEST(WarnRateLimit, DuplicatesAreCappedAndTagged)
{
    ScopedLogLevel lvl(LogLevel::Info);
    ScopedWarnLimit limit(3);
    std::vector<std::string> captured;
    setWarnSink([&](const std::string &msg) { captured.push_back(msg); });
    for (int i = 0; i < 10; ++i)
        warn("same thing happened");
    const int64_t suppressed = flushSuppressedWarnings();
    setWarnSink(nullptr);

    EXPECT_EQ(suppressed, 7);
    ASSERT_EQ(captured.size(), 4u); // 3 emissions + 1 flush summary
    EXPECT_EQ(captured[0], "same thing happened");
    EXPECT_EQ(captured[1], "same thing happened");
    EXPECT_EQ(captured[2],
              "same thing happened (further duplicates suppressed)");
    EXPECT_EQ(captured[3],
              "suppressed 7 duplicates of: same thing happened");
}

TEST(WarnRateLimit, DistinctMessagesAreNotThrottled)
{
    ScopedLogLevel lvl(LogLevel::Info);
    ScopedWarnLimit limit(2);
    std::vector<std::string> captured;
    setWarnSink([&](const std::string &msg) { captured.push_back(msg); });
    for (int i = 0; i < 8; ++i)
        warn("event %d", i);
    const int64_t suppressed = flushSuppressedWarnings();
    setWarnSink(nullptr);

    EXPECT_EQ(suppressed, 0);
    EXPECT_EQ(captured.size(), 8u);
}

TEST(WarnRateLimit, ZeroDisablesTheLimiter)
{
    ScopedLogLevel lvl(LogLevel::Info);
    ScopedWarnLimit limit(0);
    std::vector<std::string> captured;
    setWarnSink([&](const std::string &msg) { captured.push_back(msg); });
    for (int i = 0; i < 20; ++i)
        warn("unlimited");
    setWarnSink(nullptr);
    EXPECT_EQ(captured.size(), 20u);
    EXPECT_EQ(flushSuppressedWarnings(), 0);
}

TEST(WarnRateLimit, FlushWithNothingSuppressedIsQuiet)
{
    ScopedLogLevel lvl(LogLevel::Info);
    ScopedWarnLimit limit(5);
    std::vector<std::string> captured;
    setWarnSink([&](const std::string &msg) { captured.push_back(msg); });
    warn("once");
    const int64_t suppressed = flushSuppressedWarnings();
    setWarnSink(nullptr);
    EXPECT_EQ(suppressed, 0);
    EXPECT_EQ(captured.size(), 1u);
}

TEST(WarnRateLimit, ConcurrentWarnsNeitherTearNorOvercount)
{
    ScopedLogLevel lvl(LogLevel::Info);
    ScopedWarnLimit limit(4);
    std::vector<std::string> captured;
    setWarnSink([&](const std::string &msg) { captured.push_back(msg); });
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < 25; ++i)
                warn("racy duplicate");
        });
    }
    for (auto &th : threads)
        th.join();
    const int64_t suppressed = flushSuppressedWarnings();
    setWarnSink(nullptr);

    // 100 total warns: 4 emitted, 96 suppressed, 1 summary line; the
    // sink runs under the log lock so pushes cannot interleave.
    EXPECT_EQ(suppressed, 96);
    EXPECT_EQ(captured.size(), 5u);
}
