/** @file Tests for panic/fatal/assert reporting. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/logging.hh"

using namespace gnnmark;

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(GNN_PANIC("boom %d", 42), "panic.*boom 42");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT(GNN_FATAL("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "fatal.*bad config x");
}

TEST(LoggingDeath, AssertReportsConditionAndMessage)
{
    int value = 3;
    EXPECT_DEATH(GNN_ASSERT(value == 4, "value was %d", value),
                 "assertion 'value == 4' failed: value was 3");
}

TEST(Logging, AssertPassesQuietly)
{
    GNN_ASSERT(1 + 1 == 2, "arithmetic is broken");
    SUCCEED();
}

namespace {

/** RAII log-level override so tests cannot leak state. */
struct ScopedLogLevel
{
    explicit ScopedLogLevel(LogLevel level) : saved(logLevel())
    {
        setLogLevel(level);
    }
    ~ScopedLogLevel() { setLogLevel(saved); }
    LogLevel saved;
};

} // namespace

TEST(LogLevel, WarnSinkCapturesFormattedMessage)
{
    ScopedLogLevel lvl(LogLevel::Info);
    std::vector<std::string> captured;
    setWarnSink([&](const std::string &msg) { captured.push_back(msg); });
    warn("disk %s at %d%%", "sda", 93);
    setWarnSink(nullptr);
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0], "disk sda at 93%");
}

TEST(LogLevel, SilentSuppressesWarn)
{
    ScopedLogLevel lvl(LogLevel::Silent);
    std::vector<std::string> captured;
    setWarnSink([&](const std::string &msg) { captured.push_back(msg); });
    warn("should never arrive");
    setWarnSink(nullptr);
    EXPECT_TRUE(captured.empty());
}

TEST(LogLevel, WarnLevelStillEmitsWarnings)
{
    ScopedLogLevel lvl(LogLevel::Warn);
    std::vector<std::string> captured;
    setWarnSink([&](const std::string &msg) { captured.push_back(msg); });
    warn("still visible");
    setWarnSink(nullptr);
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0], "still visible");
}

TEST(LogLevel, FatalIgnoresSilence)
{
    // fatal/panic always report, whatever the level.
    ScopedLogLevel lvl(LogLevel::Silent);
    EXPECT_EXIT(GNN_FATAL("fatal beats silence"),
                ::testing::ExitedWithCode(1), "fatal beats silence");
}
