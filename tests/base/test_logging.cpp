/** @file Tests for panic/fatal/assert reporting. */

#include <gtest/gtest.h>

#include "base/logging.hh"

using namespace gnnmark;

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(GNN_PANIC("boom %d", 42), "panic.*boom 42");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT(GNN_FATAL("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "fatal.*bad config x");
}

TEST(LoggingDeath, AssertReportsConditionAndMessage)
{
    int value = 3;
    EXPECT_DEATH(GNN_ASSERT(value == 4, "value was %d", value),
                 "assertion 'value == 4' failed: value was 3");
}

TEST(Logging, AssertPassesQuietly)
{
    GNN_ASSERT(1 + 1 == 2, "arithmetic is broken");
    SUCCEED();
}
