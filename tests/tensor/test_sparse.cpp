/** @file Sparse-format storage, conversion and wrapper tests. */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "tensor/sparse.hh"

using namespace gnnmark;

namespace {

CsrMatrix
randomCsr(Rng &rng, int64_t rows, int64_t cols, double density)
{
    std::vector<std::tuple<int32_t, int32_t, float>> triples;
    for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = 0; c < cols; ++c) {
            if (rng.bernoulli(density)) {
                triples.emplace_back(
                    static_cast<int32_t>(r), static_cast<int32_t>(c),
                    static_cast<float>(rng.normal()));
            }
        }
    }
    return csrFromTriples(rows, cols, std::move(triples));
}

bool
sameCsr(const CsrMatrix &a, const CsrMatrix &b)
{
    return a.rows == b.rows && a.cols == b.cols &&
           a.rowPtr == b.rowPtr && a.colIdx == b.colIdx &&
           a.vals == b.vals;
}

} // namespace

TEST(SparseFormat, NamesRoundTrip)
{
    for (SparseFormat f : {SparseFormat::Csr, SparseFormat::Coo,
                           SparseFormat::BlockedEll}) {
        SparseFormat parsed;
        ASSERT_TRUE(parseSparseFormat(sparseFormatName(f), &parsed));
        EXPECT_EQ(parsed, f);
    }
    SparseFormat parsed;
    EXPECT_TRUE(parseSparseFormat("blocked-ell", &parsed));
    EXPECT_EQ(parsed, SparseFormat::BlockedEll);
    EXPECT_FALSE(parseSparseFormat("csc", &parsed));
}

TEST(SparseConvert, CooRoundTripPreservesEntryOrder)
{
    Rng rng(11);
    const CsrMatrix csr = randomCsr(rng, 37, 29, 0.15);
    const CooMatrix coo = cooFromCsr(csr);
    coo.validate();
    EXPECT_EQ(coo.nnz(), csr.nnz());
    // Entry streams are identical, not merely equivalent.
    EXPECT_EQ(coo.colIdx, csr.colIdx);
    EXPECT_EQ(coo.vals, csr.vals);
    EXPECT_TRUE(sameCsr(csrFromCoo(coo), csr));
}

TEST(SparseConvert, BellRoundTripPreservesEntryOrder)
{
    Rng rng(12);
    const CsrMatrix csr = randomCsr(rng, 41, 33, 0.2);
    const BlockedEllMatrix bell = bellFromCsr(csr);
    bell.validate();
    EXPECT_EQ(bell.nnz(), csr.nnz());
    EXPECT_GE(bell.paddedNnz(), bell.nnz());
    EXPECT_TRUE(sameCsr(csrFromBell(bell), csr));
}

TEST(SparseConvert, BellPadsToBlockMaxDegree)
{
    // One 8-row block with degrees 3 and 1: width is 3, rows 2..7
    // are all padding.
    CsrMatrix csr = csrFromTriples(
        8, 8,
        {{0, 1, 1.0f}, {0, 3, 2.0f}, {0, 5, 3.0f}, {1, 2, 4.0f}});
    const BlockedEllMatrix bell = bellFromCsr(csr);
    EXPECT_EQ(bell.blockCount(), 1);
    EXPECT_EQ(bell.width(0), 3);
    EXPECT_EQ(bell.paddedNnz(), 8 * 3);
    EXPECT_EQ(bell.rowNnz[0], 3);
    EXPECT_EQ(bell.rowNnz[1], 1);
    EXPECT_EQ(bell.rowNnz[2], 0);
}

TEST(SparseConvert, EmptyMatrixAllFormats)
{
    const CsrMatrix csr = csrFromTriples(5, 7, {});
    const CooMatrix coo = cooFromCsr(csr);
    const BlockedEllMatrix bell = bellFromCsr(csr);
    EXPECT_EQ(coo.nnz(), 0);
    EXPECT_EQ(bell.nnz(), 0);
    EXPECT_TRUE(sameCsr(csrFromCoo(coo), csr));
    EXPECT_TRUE(sameCsr(csrFromBell(bell), csr));
}

TEST(SparseMatrixWrap, FormatAndShapeSurface)
{
    Rng rng(13);
    SparseMatrix m(randomCsr(rng, 24, 18, 0.3));
    EXPECT_EQ(m.format(), SparseFormat::Csr);
    EXPECT_EQ(m.rows(), 24);
    EXPECT_EQ(m.cols(), 18);
    EXPECT_GT(m.nnz(), 0);
    EXPECT_NEAR(m.density(),
                static_cast<double>(m.nnz()) / (24.0 * 18.0), 1e-12);
    EXPECT_GT(m.footprintBytes(), 0);
}

TEST(SparseMatrixWrap, ToFormatRoundTripsAndShares)
{
    Rng rng(14);
    SparseMatrix csr(randomCsr(rng, 30, 30, 0.2));
    SparseMatrix bell = csr.toFormat(SparseFormat::BlockedEll);
    EXPECT_EQ(bell.format(), SparseFormat::BlockedEll);
    EXPECT_EQ(bell.nnz(), csr.nnz());
    EXPECT_TRUE(sameCsr(bell.toCsr(), csr.csr()));
    // Same-format conversion shares storage (same underlying CSR).
    SparseMatrix same = csr.toFormat(SparseFormat::Csr);
    EXPECT_EQ(&same.csr(), &csr.csr());
    // Blocked-ELL pads, so its footprint is never smaller than COO's
    // value+index payload for the same entries.
    EXPECT_GE(bell.footprintBytes(), bell.nnz() * 8);
}

TEST(SparseMatrixWrapDeath, WrongAccessorPanics)
{
    SparseMatrix m(csrFromTriples(4, 4, {{0, 1, 1.0f}}));
    EXPECT_DEATH(m.coo(), "not coo");
    EXPECT_DEATH(m.bell(), "not bell");
}

TEST(SparseCooDeath, UnsortedEntriesPanic)
{
    CooMatrix coo;
    coo.rows = 2;
    coo.cols = 2;
    coo.rowIdx = {1, 0};
    coo.colIdx = {0, 1};
    coo.vals = {1.0f, 2.0f};
    EXPECT_DEATH(coo.validate(), "sorted");
}
