/** @file Tests for the CSR matrix type. */

#include <gtest/gtest.h>

#include "tensor/csr.hh"

using namespace gnnmark;

TEST(Csr, FromTriplesSortsAndSums)
{
    CsrMatrix m = csrFromTriples(
        3, 3, {{2, 1, 1.0f}, {0, 2, 2.0f}, {0, 2, 3.0f}, {1, 0, 4.0f}});
    EXPECT_EQ(m.nnz(), 3);
    // Row 0 has a single merged entry (0,2) with value 5.
    EXPECT_EQ(m.rowPtr[0], 0);
    EXPECT_EQ(m.rowPtr[1], 1);
    EXPECT_EQ(m.colIdx[0], 2);
    EXPECT_FLOAT_EQ(m.vals[0], 5.0f);
    EXPECT_EQ(m.colIdx[1], 0);
    EXPECT_EQ(m.colIdx[2], 1);
}

TEST(Csr, EmptyMatrixValidates)
{
    CsrMatrix m = csrFromTriples(4, 4, {});
    EXPECT_EQ(m.nnz(), 0);
    m.validate();
}

TEST(Csr, RowsWithinBounds)
{
    CsrMatrix m =
        csrFromTriples(2, 5, {{0, 4, 1.0f}, {1, 0, 1.0f}});
    m.validate();
    EXPECT_EQ(m.rows, 2);
    EXPECT_EQ(m.cols, 5);
}

TEST(CsrDeath, TripleOutOfRangePanics)
{
    EXPECT_DEATH(csrFromTriples(2, 2, {{2, 0, 1.0f}}), "out of range");
}

TEST(CsrDeath, ValidateCatchesBadRowPtr)
{
    CsrMatrix m = csrFromTriples(2, 2, {{0, 1, 1.0f}});
    m.rowPtr[1] = 9;
    EXPECT_DEATH(m.validate(), "rowPtr");
}

TEST(CsrDeath, ValidateCatchesBadColumn)
{
    CsrMatrix m = csrFromTriples(2, 2, {{0, 1, 1.0f}});
    m.colIdx[0] = 5;
    EXPECT_DEATH(m.validate(), "column index");
}

TEST(Csr, DeviceAddressesStable)
{
    CsrMatrix m = csrFromTriples(2, 2, {{0, 1, 1.0f}, {1, 0, 2.0f}});
    // Addresses live in the virtual device arena (not host pointers),
    // are lazily assigned once, and stay stable across repeated calls.
    const uint64_t rp = m.rowPtrAddr();
    const uint64_t ci = m.colIdxAddr();
    const uint64_t va = m.valsAddr();
    EXPECT_GE(rp, uint64_t{1} << 46);
    EXPECT_NE(rp, reinterpret_cast<uint64_t>(m.rowPtr.data()));
    EXPECT_NE(ci, rp);
    EXPECT_NE(va, ci);
    EXPECT_EQ(m.rowPtrAddr(), rp);
    EXPECT_EQ(m.colIdxAddr(), ci);
    EXPECT_EQ(m.valsAddr(), va);

    // Copies share the lazily mapped spans, so the address survives
    // the copy (the property the persistent-L2 model relies on).
    CsrMatrix copy = m;
    EXPECT_EQ(copy.rowPtrAddr(), rp);
    EXPECT_EQ(copy.valsAddr(), va);
}
