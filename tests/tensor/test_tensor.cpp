/** @file Tests for the Tensor value type and its caching allocator. */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "tensor/tensor.hh"

using namespace gnnmark;

TEST(Tensor, ZeroInitialised)
{
    Tensor t = Tensor::zeros({3, 4});
    EXPECT_EQ(t.numel(), 12);
    for (int64_t i = 0; i < 12; ++i)
        EXPECT_EQ(t.data()[i], 0.0f);
}

TEST(Tensor, FactoryHelpers)
{
    EXPECT_EQ(Tensor::ones({2, 2})(1, 1), 1.0f);
    EXPECT_EQ(Tensor::full({2}, 3.5f)(0), 3.5f);
    Tensor v = Tensor::fromVector({2, 2}, {1, 2, 3, 4});
    EXPECT_EQ(v(1, 0), 3.0f);
}

TEST(Tensor, IndexingRowMajor)
{
    Tensor t = Tensor::zeros({2, 3});
    t(1, 2) = 7.0f;
    EXPECT_EQ(t.data()[5], 7.0f);
    Tensor u = Tensor::zeros({2, 2, 2});
    u(1, 0, 1) = 4.0f;
    EXPECT_EQ(u.data()[5], 4.0f);
    Tensor w = Tensor::zeros({2, 2, 2, 2});
    w(1, 1, 1, 1) = 9.0f;
    EXPECT_EQ(w.data()[15], 9.0f);
}

TEST(TensorDeath, OutOfBoundsPanics)
{
    Tensor t = Tensor::zeros({2, 3});
    EXPECT_DEATH(t(2, 0), "bad 2-d index");
    EXPECT_DEATH(t(0, 3), "bad 2-d index");
}

TEST(Tensor, SizeNegativeAxis)
{
    Tensor t = Tensor::zeros({2, 3, 4});
    EXPECT_EQ(t.size(-1), 4);
    EXPECT_EQ(t.size(-3), 2);
}

TEST(Tensor, ReshapeSharesStorage)
{
    Tensor t = Tensor::zeros({2, 6});
    Tensor v = t.reshape({3, 4});
    v(0, 1) = 5.0f;
    EXPECT_EQ(t(0, 1), 5.0f);
    EXPECT_EQ(t.deviceAddr(), v.deviceAddr());
}

TEST(TensorDeath, ReshapeNumelMismatchPanics)
{
    Tensor t = Tensor::zeros({2, 3});
    EXPECT_DEATH(t.reshape({7}), "reshape numel mismatch");
}

TEST(Tensor, CloneIsDeep)
{
    Tensor t = Tensor::full({4}, 1.0f);
    Tensor c = t.clone();
    c(0) = 9.0f;
    EXPECT_EQ(t(0), 1.0f);
    EXPECT_NE(t.deviceAddr(), c.deviceAddr());
}

TEST(Tensor, CopyIsShallow)
{
    Tensor t = Tensor::zeros({4});
    Tensor alias = t;
    alias(1) = 2.0f;
    EXPECT_EQ(t(1), 2.0f);
}

TEST(Tensor, ZeroFraction)
{
    Tensor t = Tensor::fromVector({4}, {0, 1, 0, 2});
    EXPECT_FLOAT_EQ(t.zeroFraction(), 0.5);
    EXPECT_FLOAT_EQ(Tensor::zeros({3}).zeroFraction(), 1.0);
}

TEST(Tensor, RandnStatistics)
{
    Rng rng(5);
    Tensor t = Tensor::randn({100, 100}, rng, 2.0f);
    double sum = 0, sq = 0;
    for (int64_t i = 0; i < t.numel(); ++i) {
        sum += t.data()[i];
        sq += t.data()[i] * t.data()[i];
    }
    EXPECT_NEAR(sum / t.numel(), 0.0, 0.05);
    EXPECT_NEAR(sq / t.numel(), 4.0, 0.15);
}

TEST(Tensor, UniformBounds)
{
    Rng rng(6);
    Tensor t = Tensor::uniform({1000}, rng, -1.0f, 2.0f);
    for (int64_t i = 0; i < t.numel(); ++i) {
        EXPECT_GE(t(i), -1.0f);
        EXPECT_LT(t(i), 2.0f);
    }
}

TEST(Tensor, AllCloseAndMaxAbsDiff)
{
    Tensor a = Tensor::fromVector({3}, {1.0f, 2.0f, 3.0f});
    Tensor b = Tensor::fromVector({3}, {1.0f, 2.00001f, 3.0f});
    EXPECT_TRUE(allClose(a, b));
    EXPECT_NEAR(maxAbsDiff(a, b), 1e-5f, 1e-6f);
    Tensor c = Tensor::fromVector({3}, {1.0f, 2.5f, 3.0f});
    EXPECT_FALSE(allClose(a, c));
}

TEST(Tensor, StorageAligned256)
{
    for (int i = 0; i < 8; ++i) {
        Tensor t = Tensor::zeros({17 + i});
        EXPECT_EQ(t.deviceAddr() % 256, 0u)
            << "allocation " << i << " not 256-byte aligned";
    }
}

TEST(Tensor, AllocatorRecyclesAddresses)
{
    // The caching allocator must hand back the same block for a
    // same-sized allocation (this is what gives iteration-stable
    // device addresses).
    uint64_t first;
    {
        Tensor t = Tensor::zeros({123, 7});
        first = t.deviceAddr();
    }
    Tensor u = Tensor::zeros({123, 7});
    EXPECT_EQ(u.deviceAddr(), first);
}

TEST(Tensor, ShapeString)
{
    EXPECT_EQ(Tensor::zeros({2, 3}).shapeString(), "[2, 3]");
    EXPECT_EQ(Tensor::zeros({5}).shapeString(), "[5]");
}
