/** @file Refcounted Storage semantics: sharing, views, device addrs. */

#include <gtest/gtest.h>

#include <utility>

#include "base/allocator.hh"
#include "tensor/storage.hh"
#include "tensor/tensor.hh"

using namespace gnnmark;

TEST(Storage, AllocateRoundsUpAndExposesBytes)
{
    auto s = Storage::allocate(10);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->bytes(), 10u);
    EXPECT_NE(s->data(), nullptr);
    EXPECT_GE(s->deviceAddr(), uint64_t{1} << 46);
}

TEST(Storage, ZeroByteStorageIsASharedSingleton)
{
    auto a = Storage::allocate(0);
    auto b = Storage::allocate(0);
    EXPECT_EQ(a.get(), b.get());
    Tensor t1, t2;
    EXPECT_TRUE(t1.sharesStorageWith(t2));
}

TEST(Storage, CopiesShareAndWritesAlias)
{
    Tensor t1 = Tensor::zeros({4, 4});
    Tensor t2 = t1; // shallow: same Storage
    EXPECT_TRUE(t1.sharesStorageWith(t2));
    EXPECT_EQ(t1.storage().use_count(), 2);
    t2(1, 2) = 7.0f;
    EXPECT_FLOAT_EQ(t1(1, 2), 7.0f);
    EXPECT_EQ(t1.deviceAddr(), t2.deviceAddr());
}

TEST(Storage, CloneIsDeep)
{
    Tensor t1 = Tensor::full({3}, 2.0f);
    Tensor t2 = t1.clone();
    EXPECT_FALSE(t1.sharesStorageWith(t2));
    EXPECT_NE(t1.deviceAddr(), t2.deviceAddr());
    t2(0) = 9.0f;
    EXPECT_FLOAT_EQ(t1(0), 2.0f);
}

TEST(Storage, ReshapeIsAZeroCopyView)
{
    Tensor t = Tensor::zeros({2, 6});
    Tensor r = t.reshape({3, 4});
    EXPECT_TRUE(t.sharesStorageWith(r));
    r(2, 3) = 5.0f; // last element in both layouts
    EXPECT_FLOAT_EQ(t(1, 5), 5.0f);
}

TEST(Storage, ViewRowsAliasesAndOffsetsTheDeviceAddr)
{
    Tensor t = Tensor::zeros({6, 3});
    Tensor v = t.viewRows(2, 5);
    EXPECT_TRUE(v.sharesStorageWith(t));
    EXPECT_EQ(v.size(0), 3);
    EXPECT_EQ(v.size(1), 3);
    EXPECT_EQ(v.numel(), 9);
    EXPECT_EQ(v.data(), t.data() + 2 * 3);
    EXPECT_EQ(v.deviceAddr(),
              t.deviceAddr() + 2 * 3 * sizeof(float));
    v(0, 0) = 1.5f;
    EXPECT_FLOAT_EQ(t(2, 0), 1.5f);
    t(4, 2) = 2.5f;
    EXPECT_FLOAT_EQ(v(2, 2), 2.5f);
}

TEST(Storage, ViewKeepsStorageAliveAfterBaseDies)
{
    Tensor v;
    {
        Tensor t = Tensor::full({4, 2}, 3.0f);
        v = t.viewRows(1, 3);
    }
    // The base tensor is gone; the view still owns the bytes.
    EXPECT_FLOAT_EQ(v(0, 0), 3.0f);
    EXPECT_FLOAT_EQ(v(1, 1), 3.0f);
}

TEST(Storage, DeprecatedShapeCtorStillZeroFills)
{
    Tensor t = Tensor::zeros({3, 3});
    for (int64_t i = 0; i < t.numel(); ++i)
        EXPECT_FLOAT_EQ(t.data()[i], 0.0f);
}

TEST(Storage, FactoriesProduceIndependentStorage)
{
    Tensor a = Tensor::empty({8});
    Tensor b = Tensor::empty({8});
    EXPECT_FALSE(a.sharesStorageWith(b));
    a.fill(1.0f);
    b.fill(2.0f);
    EXPECT_FLOAT_EQ(a(7), 1.0f);
    EXPECT_FLOAT_EQ(b(7), 2.0f);
}

TEST(Storage, TensorAllocationsGoThroughTheBoundAllocator)
{
    Allocator &a = cachingAllocator();
    Allocator *prev = boundAllocator();
    bindAllocator(&a);
    const AllocStats before = a.stats();
    {
        Tensor t = Tensor::zeros({64, 64});
        EXPECT_EQ(a.stats().requests - before.requests, 1u);
    }
    const AllocStats after = a.stats();
    EXPECT_EQ(after.releases - before.releases, 1u);
    EXPECT_EQ(after.bytesLive, before.bytesLive);
    bindAllocator(prev);
}

TEST(Storage, FreedTensorStorageIsRecycledAtTheSameAddresses)
{
    Allocator *prev = boundAllocator();
    bindAllocator(&cachingAllocator());
    uint64_t dev1 = 0, dev2 = 0;
    const float *host1 = nullptr;
    const float *host2 = nullptr;
    {
        Tensor t = Tensor::zeros({128, 32});
        dev1 = t.deviceAddr();
        host1 = t.data();
    }
    {
        Tensor t = Tensor::zeros({128, 32});
        dev2 = t.deviceAddr();
        host2 = t.data();
    }
    // The iteration-stability property the persistent-L2 model needs.
    EXPECT_EQ(dev1, dev2);
    EXPECT_EQ(host1, host2);
    bindAllocator(prev);
}
