/** @file Tests for the kernel-emission helpers. */

#include <gtest/gtest.h>

#include "ops/exec_context.hh"
#include "ops/kernel_common.hh"
#include "profiler/profiler.hh"

using namespace gnnmark;

TEST(SizeBucket, SmallValuesExact)
{
    EXPECT_EQ(sizeBucket(0), 0);
    EXPECT_EQ(sizeBucket(1), 1);
    EXPECT_EQ(sizeBucket(2), 2);
}

TEST(SizeBucket, TwoBinsPerOctave)
{
    EXPECT_EQ(sizeBucket(4), 4);
    EXPECT_EQ(sizeBucket(5), 4);
    EXPECT_EQ(sizeBucket(6), 6);   // 4 + 4/2
    EXPECT_EQ(sizeBucket(7), 6);
    EXPECT_EQ(sizeBucket(8), 8);
    EXPECT_EQ(sizeBucket(1000), 768);
    EXPECT_EQ(sizeBucket(1024), 1024);
}

TEST(SizeBucket, MonotoneNonDecreasing)
{
    int64_t prev = 0;
    for (int64_t n = 1; n < 5000; ++n) {
        int64_t b = sizeBucket(n);
        EXPECT_GE(b, prev);
        EXPECT_LE(b, n);
        prev = b;
    }
}

TEST(KernelName, AppendsBuckets)
{
    EXPECT_EQ(kernelName("gemm", {100, 64}), "gemm_96_64");
}

TEST(FlatGrid, CoversAllElements)
{
    for (int64_t n : {1L, 100L, 1024L, 100000L}) {
        FlatGrid g = flatGrid(n);
        EXPECT_GE(g.totalThreads() * g.elemsPerThread, n);
        EXPECT_GE(g.blocks, 1);
    }
}

TEST(DeviceElemBytes, FollowsBoundDevice)
{
    EXPECT_EQ(deviceElemBytes(), 4); // no device bound
    GpuConfig cfg = GpuConfig::v100();
    cfg.elemBytes = 2;
    GpuDevice dev(cfg);
    ContextGuard guard(&dev);
    EXPECT_EQ(deviceElemBytes(), 2);
}

TEST(EmitElementwise, GeometryAndCounts)
{
    GpuDevice dev;
    Profiler prof;
    dev.addObserver(&prof);
    ContextGuard guard(&dev);

    std::vector<float> in(8192), out(8192);
    ElementwiseSpec spec;
    spec.name = "test_ew";
    spec.elems = 8192;
    spec.inAddrs = {reinterpret_cast<uint64_t>(in.data())};
    spec.outAddrs = {reinterpret_cast<uint64_t>(out.data())};
    spec.fp32PerElem = 2;
    emitElementwise(spec);

    EXPECT_EQ(prof.totalLaunches(), 1);
    const auto &stats = prof.kernelStats();
    ASSERT_EQ(stats.size(), 1u);
    const OpClassStats &k = stats.begin()->second;
    // 8192 elements -> 256 element-warps, 2 fp instrs each.
    EXPECT_GT(k.flops, 0);
    EXPECT_GT(k.loads, 0);
}

TEST(EmitElementwise, NoDeviceNoLaunch)
{
    ElementwiseSpec spec;
    spec.name = "x";
    spec.elems = 64;
    emitElementwise(spec); // must be a quiet no-op
    SUCCEED();
}

TEST(EmitElementwise, ZeroElementsIsNoop)
{
    GpuDevice dev;
    Profiler prof;
    dev.addObserver(&prof);
    ContextGuard guard(&dev);
    ElementwiseSpec spec;
    spec.name = "x";
    spec.elems = 0;
    emitElementwise(spec);
    EXPECT_EQ(prof.totalLaunches(), 0);
}
