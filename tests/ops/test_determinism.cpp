/**
 * @file
 * Thread-count invariance: tensor results must be bitwise identical and
 * the simulated kernel stream must not change between a single-threaded
 * and a heavily-threaded pool. This is the contract that lets the
 * timing model ignore the host's parallelism entirely.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "base/rng.hh"
#include "base/thread_pool.hh"
#include "core/suite.hh"
#include "ops/exec_context.hh"
#include "ops/gemm.hh"
#include "ops/spmm.hh"
#include "sim/gpu_device.hh"

using namespace gnnmark;

namespace {

/** Scoped thread-count override that restores the previous value. */
class ThreadCountGuard
{
  public:
    explicit ThreadCountGuard(int n)
        : prev_(ThreadPool::instance().threadCount())
    {
        ThreadPool::instance().setThreadCount(n);
    }
    ~ThreadCountGuard() { ThreadPool::instance().setThreadCount(prev_); }

  private:
    int prev_;
};

/** Observer that keeps every kernel record it sees. */
class Recorder : public KernelObserver
{
  public:
    void onKernel(const KernelRecord &record) override
    {
        kernels.push_back(record);
    }
    void onTransfer(const TransferRecord &record) override
    {
        transfers.push_back(record);
    }

    std::vector<KernelRecord> kernels;
    std::vector<TransferRecord> transfers;
};

void
expectSameStream(const std::vector<KernelRecord> &a,
                 const std::vector<KernelRecord> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("kernel " + std::to_string(i) + " (" + a[i].name +
                     ")");
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].opClass, b[i].opClass);
        EXPECT_EQ(a[i].invocation, b[i].invocation);
        EXPECT_EQ(a[i].detailed, b[i].detailed);
        EXPECT_EQ(a[i].timeSec, b[i].timeSec);
        EXPECT_EQ(a[i].cycles, b[i].cycles);
        EXPECT_EQ(a[i].activeSms, b[i].activeSms);
        EXPECT_EQ(a[i].ipc, b[i].ipc);
        EXPECT_EQ(a[i].fp32Instrs, b[i].fp32Instrs);
        EXPECT_EQ(a[i].int32Instrs, b[i].int32Instrs);
        EXPECT_EQ(a[i].memInstrs, b[i].memInstrs);
        EXPECT_EQ(a[i].miscInstrs, b[i].miscInstrs);
        EXPECT_EQ(a[i].flops, b[i].flops);
        EXPECT_EQ(a[i].intOps, b[i].intOps);
        EXPECT_EQ(a[i].loads, b[i].loads);
        EXPECT_EQ(a[i].divergentLoads, b[i].divergentLoads);
        EXPECT_EQ(a[i].l1Accesses, b[i].l1Accesses);
        EXPECT_EQ(a[i].l1Hits, b[i].l1Hits);
        EXPECT_EQ(a[i].l2Accesses, b[i].l2Accesses);
        EXPECT_EQ(a[i].l2Hits, b[i].l2Hits);
        EXPECT_EQ(a[i].dramBytes, b[i].dramBytes);
        EXPECT_EQ(a[i].stallCycles, b[i].stallCycles);
    }
}

/**
 * Address-independent comparison: kernel identity and instruction-level
 * work only. Distinct in-process runs legitimately see different heap
 * addresses (the warm storage pool hands blocks back in a run-dependent
 * permutation), which perturbs cache/timing metrics even at a fixed
 * thread count — so full streams are only comparable when the operands
 * are shared, as in the GEMM/SpMM tests above.
 */
void
expectSameWork(const std::vector<KernelRecord> &a,
               const std::vector<KernelRecord> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("kernel " + std::to_string(i) + " (" + a[i].name +
                     ")");
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].opClass, b[i].opClass);
        EXPECT_EQ(a[i].invocation, b[i].invocation);
        EXPECT_EQ(a[i].detailed, b[i].detailed);
        EXPECT_EQ(a[i].fp32Instrs, b[i].fp32Instrs);
        EXPECT_EQ(a[i].int32Instrs, b[i].int32Instrs);
        EXPECT_EQ(a[i].memInstrs, b[i].memInstrs);
        EXPECT_EQ(a[i].miscInstrs, b[i].miscInstrs);
        EXPECT_EQ(a[i].flops, b[i].flops);
        EXPECT_EQ(a[i].intOps, b[i].intOps);
        EXPECT_EQ(a[i].loads, b[i].loads);
    }
}

bool
bitwiseEqual(const Tensor &a, const Tensor &b)
{
    return a.sameShape(b) &&
           std::memcmp(a.data(), b.data(),
                       static_cast<size_t>(a.numel()) * sizeof(float)) ==
               0;
}

CsrMatrix
randomCsr(Rng &rng, int64_t rows, int64_t cols, double density)
{
    std::vector<std::tuple<int32_t, int32_t, float>> triples;
    for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = 0; c < cols; ++c) {
            if (rng.bernoulli(density)) {
                triples.emplace_back(
                    static_cast<int32_t>(r), static_cast<int32_t>(c),
                    static_cast<float>(rng.normal()));
            }
        }
    }
    return csrFromTriples(rows, cols, std::move(triples));
}

} // namespace

TEST(Determinism, GemmBitwiseStableAcrossThreadCounts)
{
    // Large enough that every loop actually splits into many chunks.
    Rng rng(42);
    Tensor a = Tensor::randn({123, 67}, rng);
    Tensor b = Tensor::randn({67, 95}, rng);

    auto run = [&](Tensor &out, Recorder &rec) {
        GpuDevice dev;
        dev.addObserver(&rec);
        ContextGuard guard(&dev);
        out = ops::gemm(a, b);
    };

    Tensor c1, c8;
    Recorder r1, r8;
    {
        ThreadCountGuard guard(1);
        run(c1, r1);
    }
    {
        ThreadCountGuard guard(8);
        run(c8, r8);
    }
    EXPECT_TRUE(bitwiseEqual(c1, c8));
    expectSameStream(r1.kernels, r8.kernels);
}

TEST(Determinism, SpmmBitwiseStableAcrossThreadCounts)
{
    Rng rng(7);
    SparseMatrix m(randomCsr(rng, 150, 150, 0.05));
    Tensor b = Tensor::randn({150, 48}, rng);

    auto run = [&](Tensor &out, Recorder &rec) {
        GpuDevice dev;
        dev.addObserver(&rec);
        ContextGuard guard(&dev);
        out = ops::spmm(m, b);
    };

    Tensor c1, c8;
    Recorder r1, r8;
    {
        ThreadCountGuard guard(1);
        run(c1, r1);
    }
    {
        ThreadCountGuard guard(8);
        run(c8, r8);
    }
    EXPECT_TRUE(bitwiseEqual(c1, c8));
    expectSameStream(r1.kernels, r8.kernels);
}

TEST(Determinism, TrainIterationStableAcrossThreadCounts)
{
    // A fresh workload per thread count: same seed, same data, and —
    // if the pool keeps its contract — the same loss bits and the same
    // sequence of kernels doing the same instruction-level work.
    auto run = [](int threads, Recorder &rec) {
        ThreadCountGuard guard(threads);
        WorkloadConfig cfg;
        cfg.seed = 1234;
        cfg.scale = 0.25;
        auto wl = BenchmarkSuite::create("DGCN");
        wl->setup(cfg);
        GpuDevice dev;
        dev.addObserver(&rec);
        ContextGuard dguard(&dev);
        return wl->trainIteration();
    };

    Recorder r1, r8;
    const float loss8 = run(8, r8);
    const float loss1 = run(1, r1);
    EXPECT_EQ(loss1, loss8);
    expectSameWork(r1.kernels, r8.kernels);
    ASSERT_EQ(r1.transfers.size(), r8.transfers.size());
    for (size_t i = 0; i < r1.transfers.size(); ++i) {
        EXPECT_EQ(r1.transfers[i].bytes, r8.transfers[i].bytes);
        EXPECT_EQ(r1.transfers[i].zeroFraction,
                  r8.transfers[i].zeroFraction);
        EXPECT_EQ(r1.transfers[i].timeSec, r8.transfers[i].timeSec);
    }
}
