/** @file SpMM correctness and emission tests. */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "ops/exec_context.hh"
#include "ops/gemm.hh"
#include "ops/spmm.hh"
#include "profiler/profiler.hh"

using namespace gnnmark;

namespace {

/** Densify a CSR for a GEMM cross-check. */
Tensor
densify(const CsrMatrix &m)
{
    Tensor d = Tensor::zeros({m.rows, m.cols});
    for (int64_t r = 0; r < m.rows; ++r) {
        for (int32_t e = m.rowPtr[r]; e < m.rowPtr[r + 1]; ++e)
            d(r, m.colIdx[e]) += m.vals[e];
    }
    return d;
}

CsrMatrix
randomCsr(Rng &rng, int64_t rows, int64_t cols, double density)
{
    std::vector<std::tuple<int32_t, int32_t, float>> triples;
    for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = 0; c < cols; ++c) {
            if (rng.bernoulli(density)) {
                triples.emplace_back(
                    static_cast<int32_t>(r), static_cast<int32_t>(c),
                    static_cast<float>(rng.normal()));
            }
        }
    }
    return csrFromTriples(rows, cols, std::move(triples));
}

} // namespace

class SpmmSweep : public ::testing::TestWithParam<
                      std::tuple<int64_t, int64_t, int64_t, double>>
{
};

TEST_P(SpmmSweep, MatchesDenseGemm)
{
    auto [rows, cols, feats, density] = GetParam();
    Rng rng(rows * 131 + cols + feats);
    SparseMatrix a(randomCsr(rng, rows, cols, density));
    Tensor b = Tensor::randn({cols, feats}, rng);
    Tensor sparse_result = ops::spmm(a, b);
    Tensor dense_result = ops::gemm(densify(a.csr()), b);
    EXPECT_TRUE(allClose(sparse_result, dense_result, 1e-3f, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpmmSweep,
    ::testing::Combine(::testing::Values(1, 13, 50),
                       ::testing::Values(5, 40),
                       ::testing::Values(1, 16, 33),
                       ::testing::Values(0.0, 0.1, 0.5)));

TEST(Spmm, EmptyMatrixGivesZeros)
{
    Rng rng(9);
    SparseMatrix a(csrFromTriples(4, 4, {}));
    Tensor b = Tensor::randn({4, 8}, rng);
    Tensor c = ops::spmm(a, b);
    EXPECT_FLOAT_EQ(maxAbsDiff(c, Tensor::zeros({4, 8})), 0.0f);
}

TEST(Spmm, IdentityPreservesInput)
{
    Rng rng(10);
    std::vector<std::tuple<int32_t, int32_t, float>> eye;
    for (int32_t i = 0; i < 12; ++i)
        eye.emplace_back(i, i, 1.0f);
    SparseMatrix a(csrFromTriples(12, 12, std::move(eye)));
    Tensor b = Tensor::randn({12, 7}, rng);
    EXPECT_TRUE(allClose(ops::spmm(a, b), b));
}

TEST(SpmmDeath, DimensionMismatchPanics)
{
    SparseMatrix a(csrFromTriples(3, 5, {{0, 1, 1.0f}}));
    Tensor b = Tensor::zeros({4, 2});
    EXPECT_DEATH(ops::spmm(a, b), "spmm");
}

TEST(Spmm, EmitsSpMMClassKernel)
{
    GpuDevice dev;
    Profiler prof;
    dev.addObserver(&prof);
    Rng rng(11);
    SparseMatrix a(randomCsr(rng, 64, 64, 0.1));
    Tensor b = Tensor::randn({64, 32}, rng);
    {
        ContextGuard guard(&dev);
        ops::spmm(a, b);
    }
    const OpClassStats &s = prof.classStats(OpClass::SpMM);
    EXPECT_EQ(s.launches, 1);
    EXPECT_GT(s.flops, 0);
    EXPECT_GT(s.intOps, 0);
}
