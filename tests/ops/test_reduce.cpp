/** @file Reduction operator tests. */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "ops/reduce.hh"

using namespace gnnmark;

TEST(Reduce, SumAndMeanAll)
{
    Tensor a = Tensor::fromVector({2, 2}, {1, 2, 3, 4});
    EXPECT_FLOAT_EQ(ops::reduceSumAll(a), 10.0f);
    EXPECT_FLOAT_EQ(ops::reduceMeanAll(a), 2.5f);
}

TEST(Reduce, SumRows)
{
    Tensor a = Tensor::fromVector({2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor r = ops::reduceSumRows(a);
    EXPECT_FLOAT_EQ(r(0), 6.0f);
    EXPECT_FLOAT_EQ(r(1), 15.0f);
}

TEST(Reduce, MaxRowsAndArgmax)
{
    Tensor a = Tensor::fromVector({2, 3}, {1, 9, 3, -4, -5, -1});
    Tensor m = ops::reduceMaxRows(a);
    EXPECT_FLOAT_EQ(m(0), 9.0f);
    EXPECT_FLOAT_EQ(m(1), -1.0f);
    auto idx = ops::argmaxRows(a);
    EXPECT_EQ(idx[0], 1);
    EXPECT_EQ(idx[1], 2);
}

TEST(Reduce, SumCols)
{
    Tensor a = Tensor::fromVector({2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor r = ops::reduceSumCols(a);
    EXPECT_FLOAT_EQ(r(0), 5.0f);
    EXPECT_FLOAT_EQ(r(2), 9.0f);
}

TEST(Reduce, SegmentSum)
{
    Tensor src = Tensor::fromVector({4, 2}, {1, 1, 2, 2, 3, 3, 4, 4});
    std::vector<int32_t> offsets = {0, 1, 1, 4};
    Tensor out = ops::segmentSumRows(src, offsets);
    EXPECT_FLOAT_EQ(out(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(out(1, 0), 0.0f); // empty segment
    EXPECT_FLOAT_EQ(out(2, 1), 9.0f);
}

TEST(Reduce, SegmentMax)
{
    Tensor src = Tensor::fromVector({3, 1}, {5, -2, 7});
    std::vector<int32_t> offsets = {0, 2, 2, 3};
    Tensor out = ops::segmentMaxRows(src, offsets);
    EXPECT_FLOAT_EQ(out(0, 0), 5.0f);
    EXPECT_FLOAT_EQ(out(1, 0), 0.0f); // empty segment yields 0
    EXPECT_FLOAT_EQ(out(2, 0), 7.0f);
}

TEST(Reduce, RowBroadcasts)
{
    Tensor a = Tensor::fromVector({2, 2}, {2, 4, 6, 8});
    Tensor v = Tensor::fromVector({2}, {2, 4});
    EXPECT_FLOAT_EQ(ops::subRowsBy(a, v)(0, 1), 2.0f);
    EXPECT_FLOAT_EQ(ops::divRowsBy(a, v)(1, 1), 2.0f);
    EXPECT_FLOAT_EQ(ops::mulRowsBy(a, v)(1, 0), 24.0f);
}

TEST(ReduceDeath, SegmentOffsetsMustCoverSrc)
{
    Tensor src = Tensor::zeros({4, 2});
    std::vector<int32_t> offsets = {0, 2}; // ends at 2, src has 4 rows
    EXPECT_DEATH(ops::segmentSumRows(src, offsets), "offsets end");
}

/** Property: row sum + col sum both equal the total sum. */
class ReduceSweep : public ::testing::TestWithParam<
                        std::pair<int64_t, int64_t>>
{
};

TEST_P(ReduceSweep, RowColTotalsAgree)
{
    auto [n, f] = GetParam();
    Rng rng(n * 17 + f);
    Tensor a = Tensor::randn({n, f}, rng);
    float total = ops::reduceSumAll(a);
    Tensor rows = ops::reduceSumRows(a);
    Tensor cols = ops::reduceSumCols(a);
    double rsum = 0, csum = 0;
    for (int64_t i = 0; i < n; ++i)
        rsum += rows(i);
    for (int64_t j = 0; j < f; ++j)
        csum += cols(j);
    EXPECT_NEAR(rsum, total, std::abs(total) * 1e-4 + 1e-2);
    EXPECT_NEAR(csum, total, std::abs(total) * 1e-4 + 1e-2);
}

TEST_P(ReduceSweep, SegmentSumOfTrivialSegmentsIsIdentity)
{
    auto [n, f] = GetParam();
    Rng rng(n * 23 + f);
    Tensor a = Tensor::randn({n, f}, rng);
    std::vector<int32_t> offsets(n + 1);
    for (int64_t i = 0; i <= n; ++i)
        offsets[i] = static_cast<int32_t>(i);
    EXPECT_TRUE(allClose(ops::segmentSumRows(a, offsets), a));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ReduceSweep,
    ::testing::Values(std::pair<int64_t, int64_t>{1, 1},
                      std::pair<int64_t, int64_t>{3, 65},
                      std::pair<int64_t, int64_t>{64, 7},
                      std::pair<int64_t, int64_t>{100, 33}));
