/**
 * @file
 * Per-format SpMM equivalence: CSR, COO and blocked-ELL must produce
 * *bitwise identical* outputs (not merely close) because every format
 * stores its entries in CSR order and every host kernel accumulates
 * per output element in that order. Exercises random matrices plus
 * the pathological sparsity patterns where padding or entry-order
 * bugs would first show.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "base/rng.hh"
#include "ops/exec_context.hh"
#include "ops/spmm.hh"
#include "profiler/profiler.hh"

using namespace gnnmark;

namespace {

CsrMatrix
randomCsr(Rng &rng, int64_t rows, int64_t cols, double density)
{
    std::vector<std::tuple<int32_t, int32_t, float>> triples;
    for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = 0; c < cols; ++c) {
            if (rng.bernoulli(density)) {
                triples.emplace_back(
                    static_cast<int32_t>(r), static_cast<int32_t>(c),
                    static_cast<float>(rng.normal()));
            }
        }
    }
    return csrFromTriples(rows, cols, std::move(triples));
}

bool
bitwiseEqual(const Tensor &a, const Tensor &b)
{
    return a.sameShape(b) &&
           std::memcmp(a.data(), b.data(),
                       static_cast<size_t>(a.numel()) *
                           sizeof(float)) == 0;
}

/** Run spmm in every format and assert all outputs bit-match CSR. */
void
expectAllFormatsEqual(const CsrMatrix &csr, int64_t f, uint64_t seed)
{
    Rng rng(seed);
    Tensor b = Tensor::randn({csr.cols, f}, rng);
    const SparseMatrix base(csr);
    const Tensor ref = ops::spmm(base, b);
    for (SparseFormat format :
         {SparseFormat::Coo, SparseFormat::BlockedEll}) {
        const SparseMatrix m = base.toFormat(format);
        const Tensor out = ops::spmm(m, b);
        EXPECT_TRUE(bitwiseEqual(ref, out))
            << "format " << sparseFormatName(format)
            << " diverged bitwise (rows=" << csr.rows
            << " cols=" << csr.cols << " f=" << f << ")";
    }
}

} // namespace

TEST(SpmmFormats, RandomMatricesBitwiseEqual)
{
    Rng rng(21);
    for (double density : {0.02, 0.1, 0.5}) {
        for (int64_t f : {1, 16, 33, 64}) {
            const CsrMatrix csr = randomCsr(rng, 67, 53, density);
            expectAllFormatsEqual(csr, f, 100 + f);
        }
    }
}

TEST(SpmmFormats, EmptyMatrix)
{
    expectAllFormatsEqual(csrFromTriples(16, 16, {}), 8, 1);
}

TEST(SpmmFormats, DiagonalMatrix)
{
    std::vector<std::tuple<int32_t, int32_t, float>> eye;
    for (int32_t i = 0; i < 19; ++i)
        eye.emplace_back(i, i, 0.5f + i);
    expectAllFormatsEqual(csrFromTriples(19, 19, std::move(eye)), 24,
                          2);
}

TEST(SpmmFormats, SingleDenseRow)
{
    // One fully dense row in an otherwise empty matrix: the worst
    // blocked-ELL padding case (one block padded to full width).
    std::vector<std::tuple<int32_t, int32_t, float>> triples;
    for (int32_t c = 0; c < 40; ++c)
        triples.emplace_back(7, c, 0.25f * (c + 1));
    expectAllFormatsEqual(csrFromTriples(30, 40, std::move(triples)),
                          17, 3);
}

TEST(SpmmFormats, SingleDenseColumn)
{
    // Every row has exactly one entry in the same column: maximally
    // skewed COO row-run lengths.
    std::vector<std::tuple<int32_t, int32_t, float>> triples;
    for (int32_t r = 0; r < 33; ++r)
        triples.emplace_back(r, 5, 1.0f / (r + 1));
    expectAllFormatsEqual(csrFromTriples(33, 12, std::move(triples)),
                          9, 4);
}

TEST(SpmmFormats, RowCountNotMultipleOfBlockRows)
{
    // rows % 8 != 0: the final partial block must not touch padding
    // rows beyond `rows`.
    Rng rng(22);
    expectAllFormatsEqual(randomCsr(rng, 13, 21, 0.3), 11, 5);
}

TEST(SpmmFormats, EachFormatEmitsItsOwnSimKernel)
{
    Rng rng(23);
    const CsrMatrix csr = randomCsr(rng, 64, 64, 0.1);
    Tensor b = Tensor::randn({64, 32}, rng);
    const char *expected[] = {"spmm_csr", "spmm_coo", "spmm_bell"};
    const SparseFormat formats[] = {SparseFormat::Csr,
                                    SparseFormat::Coo,
                                    SparseFormat::BlockedEll};
    for (int i = 0; i < 3; ++i) {
        GpuDevice dev;
        Profiler prof;
        dev.addObserver(&prof);
        {
            ContextGuard guard(&dev);
            ops::spmm(SparseMatrix(csr).toFormat(formats[i]), b);
        }
        const auto &kernels = prof.kernelStats();
        ASSERT_EQ(kernels.size(), 1u);
        // Kernel names are "<base>_<shape...>"; the base identifies
        // the per-format sim kernel.
        EXPECT_EQ(kernels.begin()->first.rfind(expected[i], 0), 0u)
            << kernels.begin()->first;
        EXPECT_EQ(prof.classStats(OpClass::SpMM).launches, 1);
    }
}
