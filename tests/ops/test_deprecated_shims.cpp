/**
 * @file
 * The [[deprecated]] compatibility shims must keep compiling and
 * forward bitwise-exactly to the new entry points for one release:
 * old-style bool-flag gemm, CSR-only spmm, and their autograd twins.
 * This TU deliberately calls the old surface; the deprecation
 * warnings are suppressed locally so -Wall stays clean elsewhere.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "base/rng.hh"
#include "ops/gemm.hh"
#include "ops/spmm.hh"
#include "ops/var_ops.hh"

using namespace gnnmark;

namespace {

bool
bitwiseEqual(const Tensor &a, const Tensor &b)
{
    return a.sameShape(b) &&
           std::memcmp(a.data(), b.data(),
                       static_cast<size_t>(a.numel()) *
                           sizeof(float)) == 0;
}

CsrMatrix
randomCsr(Rng &rng, int64_t rows, int64_t cols, double density)
{
    std::vector<std::tuple<int32_t, int32_t, float>> triples;
    for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = 0; c < cols; ++c) {
            if (rng.bernoulli(density)) {
                triples.emplace_back(
                    static_cast<int32_t>(r), static_cast<int32_t>(c),
                    static_cast<float>(rng.normal()));
            }
        }
    }
    return csrFromTriples(rows, cols, std::move(triples));
}

CsrMatrix
transposeCsr(const CsrMatrix &a)
{
    std::vector<std::tuple<int32_t, int32_t, float>> triples;
    for (int32_t r = 0; r < a.rows; ++r) {
        for (int64_t e = a.rowPtr[r]; e < a.rowPtr[r + 1]; ++e)
            triples.emplace_back(a.colIdx[e], r, a.vals[e]);
    }
    return csrFromTriples(a.cols, a.rows, std::move(triples));
}

} // namespace

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(DeprecatedShims, GemmBoolFlagsForwardBitwise)
{
    Rng rng(41);
    Tensor a = Tensor::randn({24, 16}, rng);
    Tensor b = Tensor::randn({16, 20}, rng);
    EXPECT_TRUE(bitwiseEqual(ops::gemm(a, b, false, false),
                             ops::gemm(a, b)));
    Tensor at = Tensor::randn({16, 24}, rng);
    EXPECT_TRUE(bitwiseEqual(ops::gemm(at, b, true),
                             ops::gemm(at, b, {.trans_a = true})));
    Tensor bt = Tensor::randn({20, 16}, rng);
    EXPECT_TRUE(bitwiseEqual(ops::gemm(a, bt, false, true),
                             ops::gemm(a, bt, {.trans_b = true})));
    EXPECT_TRUE(bitwiseEqual(
        ops::gemm(at, bt, true, true),
        ops::gemm(at, bt, {.trans_a = true, .trans_b = true})));
}

TEST(DeprecatedShims, SpmmCsrOnlyForwardsBitwise)
{
    Rng rng(42);
    const CsrMatrix csr = randomCsr(rng, 31, 27, 0.15);
    Tensor b = Tensor::randn({27, 18}, rng);
    EXPECT_TRUE(bitwiseEqual(ops::spmm(csr, b),
                             ops::spmm(SparseMatrix(csr), b)));
}

TEST(DeprecatedShims, AutogradGemmBoolFlagsForward)
{
    Rng rng(43);
    Tensor ta = Tensor::randn({12, 8}, rng);
    Tensor tb = Tensor::randn({10, 8}, rng);
    // Two independent graphs over identical leaves so the shim's
    // backward pass can be compared grad-for-grad.
    Variable a_old = Variable::param(ta), b_old = Variable::param(tb);
    Variable a_new = Variable::param(ta), b_new = Variable::param(tb);
    Variable old_style = ag::gemm(a_old, b_old, false, true);
    Variable new_style = ag::gemm(a_new, b_new, {.trans_b = true});
    EXPECT_TRUE(
        bitwiseEqual(old_style.value(), new_style.value()));
    ag::sumAll(old_style).backward();
    ag::sumAll(new_style).backward();
    EXPECT_TRUE(bitwiseEqual(a_old.grad(), a_new.grad()));
    EXPECT_TRUE(bitwiseEqual(b_old.grad(), b_new.grad()));
    EXPECT_GT(a_old.grad().numel(), 0);
}

TEST(DeprecatedShims, AutogradSpmmCsrOnlyForwards)
{
    Rng rng(44);
    const CsrMatrix csr = randomCsr(rng, 22, 19, 0.2);
    const CsrMatrix csr_t = transposeCsr(csr);
    Variable b = Variable::param(Tensor::randn({19, 13}, rng));
    Variable old_style = ag::spmm(csr, csr_t, b);
    Variable new_style =
        ag::spmm(SparseMatrix(csr), SparseMatrix(csr_t), b);
    EXPECT_TRUE(
        bitwiseEqual(old_style.value(), new_style.value()));
    ag::sumAll(old_style).backward();
    const Tensor g_old = b.grad();
    EXPECT_GT(g_old.numel(), 0);
}

#pragma GCC diagnostic pop
