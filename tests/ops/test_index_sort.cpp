/** @file Index-select / gather / scatter-add and radix-sort tests. */

#include <gtest/gtest.h>

#include <algorithm>

#include "base/rng.hh"
#include "ops/exec_context.hh"
#include "ops/index.hh"
#include "ops/sort.hh"
#include "profiler/profiler.hh"

using namespace gnnmark;

TEST(IndexSelect, PicksRows)
{
    Tensor a = Tensor::fromVector({3, 2}, {1, 2, 3, 4, 5, 6});
    Tensor out = ops::indexSelectRows(a, {2, 0, 2});
    EXPECT_EQ(out.size(0), 3);
    EXPECT_FLOAT_EQ(out(0, 0), 5.0f);
    EXPECT_FLOAT_EQ(out(1, 1), 2.0f);
    EXPECT_FLOAT_EQ(out(2, 1), 6.0f);
}

TEST(IndexSelect, EmptyIndexGivesEmpty)
{
    Tensor a = Tensor::zeros({3, 2});
    Tensor out = ops::indexSelectRows(a, {});
    EXPECT_EQ(out.size(0), 0);
}

TEST(IndexSelectDeath, OutOfRangePanics)
{
    Tensor a = Tensor::zeros({3, 2});
    EXPECT_DEATH(ops::indexSelectRows(a, {3}), "out of range");
}

TEST(Gather, SameSemanticsDifferentClass)
{
    GpuDevice dev;
    Profiler prof;
    dev.addObserver(&prof);
    Tensor a = Tensor::fromVector({2, 2}, {1, 2, 3, 4});
    {
        ContextGuard guard(&dev);
        Tensor g = ops::gatherRows(a, {1, 1, 0});
        EXPECT_FLOAT_EQ(g(0, 0), 3.0f);
        ops::indexSelectRows(a, {0});
    }
    EXPECT_EQ(prof.classStats(OpClass::Gather).launches, 1);
    EXPECT_EQ(prof.classStats(OpClass::IndexSelect).launches, 1);
}

TEST(ScatterAdd, AccumulatesRows)
{
    Tensor out = Tensor::zeros({3, 2});
    Tensor src = Tensor::fromVector({3, 2}, {1, 1, 2, 2, 4, 4});
    ops::scatterAddRows(out, {1, 1, 2}, src);
    EXPECT_FLOAT_EQ(out(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(out(1, 0), 3.0f);
    EXPECT_FLOAT_EQ(out(2, 1), 4.0f);
}

TEST(ScatterAdd, InverseOfGatherForPermutation)
{
    Rng rng(12);
    Tensor a = Tensor::randn({10, 4}, rng);
    auto perm = rng.permutation(10);
    Tensor g = ops::gatherRows(a, perm);
    Tensor back = Tensor::zeros({10, 4});
    ops::scatterAddRows(back, perm, g);
    EXPECT_TRUE(allClose(back, a));
}

TEST(ScatterAdd, EmitsScatterClassWithAtomics)
{
    GpuDevice dev;
    Profiler prof;
    dev.addObserver(&prof);
    Rng rng(13);
    Tensor out = Tensor::zeros({64, 32});
    Tensor src = Tensor::randn({128, 32}, rng);
    std::vector<int32_t> idx(128);
    for (int i = 0; i < 128; ++i)
        idx[i] = static_cast<int32_t>(rng.randint(uint64_t{64}));
    {
        ContextGuard guard(&dev);
        ops::scatterAddRows(out, idx, src);
    }
    EXPECT_EQ(prof.classStats(OpClass::Scatter).launches, 1);
}

TEST(Sort, SortsAscending)
{
    std::vector<int32_t> keys = {5, 3, 9, 1, 3, 0};
    ops::sortKeys(keys);
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
    EXPECT_EQ(keys.front(), 0);
    EXPECT_EQ(keys.back(), 9);
}

TEST(Sort, KeyValueStable)
{
    std::vector<int32_t> keys = {2, 1, 2, 1};
    std::vector<int32_t> vals = {10, 20, 30, 40};
    ops::sortKeyValue(keys, vals);
    EXPECT_EQ(keys, (std::vector<int32_t>{1, 1, 2, 2}));
    // Stability: equal keys preserve original order.
    EXPECT_EQ(vals, (std::vector<int32_t>{20, 40, 10, 30}));
}

TEST(Sort, HandlesEmptyAndSingle)
{
    std::vector<int32_t> empty;
    ops::sortKeys(empty);
    EXPECT_TRUE(empty.empty());
    std::vector<int32_t> one = {42};
    ops::sortKeys(one);
    EXPECT_EQ(one[0], 42);
}

TEST(SortDeath, NegativeKeysPanic)
{
    std::vector<int32_t> keys = {1, -2, 3};
    EXPECT_DEATH(ops::sortKeys(keys), "non-negative");
}

TEST(Sort, SortedUnique)
{
    auto u = ops::sortedUnique({5, 1, 5, 3, 1, 1});
    EXPECT_EQ(u, (std::vector<int32_t>{1, 3, 5}));
}

TEST(Sort, EmitsSortKernels)
{
    GpuDevice dev;
    Profiler prof;
    dev.addObserver(&prof);
    std::vector<int32_t> keys(4096);
    Rng rng(14);
    for (auto &k : keys)
        k = static_cast<int32_t>(rng.randint(uint64_t{1 << 30}));
    {
        ContextGuard guard(&dev);
        ops::sortKeys(keys);
    }
    // 4 radix passes, each a histogram + scatter kernel.
    EXPECT_EQ(prof.classStats(OpClass::Sort).launches, 8);
    EXPECT_GT(prof.classStats(OpClass::Sort).intOps, 0);
}

/** Property: sorting equals std::sort on random arrays. */
class SortSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(SortSweep, MatchesStdSort)
{
    Rng rng(GetParam());
    std::vector<int32_t> keys(GetParam());
    for (auto &k : keys)
        k = static_cast<int32_t>(rng.randint(uint64_t{1} << 31));
    auto expected = keys;
    std::sort(expected.begin(), expected.end());
    ops::sortKeys(keys);
    EXPECT_EQ(keys, expected);
}

TEST_P(SortSweep, KeyValuePermutationConsistent)
{
    Rng rng(GetParam() + 1000);
    const int n = GetParam();
    std::vector<int32_t> keys(n), vals(n);
    for (int i = 0; i < n; ++i) {
        keys[i] = static_cast<int32_t>(rng.randint(uint64_t{1000}));
        vals[i] = i;
    }
    auto orig_keys = keys;
    ops::sortKeyValue(keys, vals);
    // vals is a permutation carrying each key to its sorted slot.
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(keys[i], orig_keys[vals[i]]);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SortSweep,
                         ::testing::Values(2, 10, 100, 1000, 10000));
