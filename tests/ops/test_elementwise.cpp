/** @file Numerics + emission tests for the element-wise operators. */

#include <gtest/gtest.h>

#include <cmath>

#include "ops/elementwise.hh"
#include "ops/exec_context.hh"
#include "profiler/profiler.hh"

using namespace gnnmark;

namespace {

Tensor
iota(std::vector<int64_t> shape, float start = -3.0f, float step = 0.5f)
{
    Tensor t = Tensor::zeros(std::move(shape));
    for (int64_t i = 0; i < t.numel(); ++i)
        t.data()[i] = start + step * static_cast<float>(i);
    return t;
}

} // namespace

TEST(Elementwise, AddSubMul)
{
    Tensor a = iota({2, 3});
    Tensor b = Tensor::full({2, 3}, 2.0f);
    EXPECT_FLOAT_EQ(ops::add(a, b)(0, 0), a(0, 0) + 2.0f);
    EXPECT_FLOAT_EQ(ops::sub(a, b)(1, 2), a(1, 2) - 2.0f);
    EXPECT_FLOAT_EQ(ops::mul(a, b)(0, 2), a(0, 2) * 2.0f);
}

TEST(Elementwise, Div)
{
    Tensor a = Tensor::fromVector({3}, {6.0f, -9.0f, 1.0f});
    Tensor b = Tensor::fromVector({3}, {2.0f, 3.0f, 4.0f});
    Tensor c = ops::div(a, b);
    EXPECT_FLOAT_EQ(c(0), 3.0f);
    EXPECT_FLOAT_EQ(c(1), -3.0f);
    EXPECT_FLOAT_EQ(c(2), 0.25f);
}

TEST(Elementwise, ScaledOps)
{
    Tensor a = iota({4});
    Tensor b = Tensor::ones({4});
    Tensor r = ops::addScaled(a, b, 0.5f);
    EXPECT_FLOAT_EQ(r(0), a(0) + 0.5f);
    EXPECT_FLOAT_EQ(ops::scale(a, -2.0f)(1), -2.0f * a(1));
    EXPECT_FLOAT_EQ(ops::addScalar(a, 10.0f)(2), a(2) + 10.0f);
}

TEST(Elementwise, AddIntoAccumulates)
{
    Tensor dst = Tensor::full({3}, 1.0f);
    Tensor src = Tensor::full({3}, 2.0f);
    ops::addInto(dst, src);
    ops::addInto(dst, src);
    EXPECT_FLOAT_EQ(dst(0), 5.0f);
}

TEST(Elementwise, ReluAndGrad)
{
    Tensor a = Tensor::fromVector({4}, {-1.0f, 0.0f, 2.0f, -3.0f});
    Tensor y = ops::relu(a);
    EXPECT_FLOAT_EQ(y(0), 0.0f);
    EXPECT_FLOAT_EQ(y(2), 2.0f);
    Tensor g = Tensor::ones({4});
    Tensor dx = ops::reluGrad(g, a);
    EXPECT_FLOAT_EQ(dx(0), 0.0f);
    EXPECT_FLOAT_EQ(dx(2), 1.0f);
}

TEST(Elementwise, Prelu)
{
    Tensor a = Tensor::fromVector({2}, {-2.0f, 4.0f});
    Tensor y = ops::prelu(a, 0.25f);
    EXPECT_FLOAT_EQ(y(0), -0.5f);
    EXPECT_FLOAT_EQ(y(1), 4.0f);
    Tensor g = Tensor::ones({2});
    EXPECT_FLOAT_EQ(ops::preluGradInput(g, a, 0.25f)(0), 0.25f);
    EXPECT_FLOAT_EQ(ops::preluGradSlope(g, a), -2.0f);
}

TEST(Elementwise, SigmoidTanhExpLog)
{
    Tensor a = Tensor::fromVector({2}, {0.0f, 1.0f});
    EXPECT_FLOAT_EQ(ops::sigmoid(a)(0), 0.5f);
    EXPECT_NEAR(ops::tanh(a)(1), std::tanh(1.0f), 1e-6f);
    EXPECT_NEAR(ops::exp(a)(1), std::exp(1.0f), 1e-5f);
    Tensor p = Tensor::fromVector({2}, {1.0f, static_cast<float>(M_E)});
    EXPECT_NEAR(ops::log(p)(1), 1.0f, 1e-6f);
}

TEST(Elementwise, SigmoidGradMatchesDerivative)
{
    Tensor a = Tensor::fromVector({1}, {0.3f});
    Tensor y = ops::sigmoid(a);
    Tensor g = Tensor::ones({1});
    float expected = y(0) * (1.0f - y(0));
    EXPECT_NEAR(ops::sigmoidGrad(g, y)(0), expected, 1e-6f);
}

TEST(Elementwise, DropoutMaskConsistent)
{
    Rng rng(3);
    Tensor a = Tensor::full({1000}, 2.0f);
    Tensor mask;
    Tensor y = ops::dropout(a, 0.4f, rng, &mask);
    int zeros = 0;
    for (int64_t i = 0; i < y.numel(); ++i) {
        EXPECT_FLOAT_EQ(y(i), a(i) * mask(i));
        zeros += y(i) == 0.0f;
    }
    EXPECT_NEAR(zeros / 1000.0, 0.4, 0.06);
    // Inverted dropout preserves the expectation.
    double sum = 0;
    for (int64_t i = 0; i < y.numel(); ++i)
        sum += y(i);
    EXPECT_NEAR(sum / y.numel(), 2.0, 0.25);
}

TEST(Elementwise, AddBiasRows)
{
    Tensor a = Tensor::zeros({2, 3});
    Tensor b = Tensor::fromVector({3}, {1, 2, 3});
    Tensor y = ops::addBiasRows(a, b);
    EXPECT_FLOAT_EQ(y(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(y(1, 2), 3.0f);
}

TEST(Elementwise, ConcatAndSliceRows)
{
    Tensor a = Tensor::full({2, 2}, 1.0f);
    Tensor b = Tensor::full({3, 2}, 2.0f);
    Tensor c = ops::concatRows({a, b});
    EXPECT_EQ(c.size(0), 5);
    EXPECT_FLOAT_EQ(c(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(c(4, 1), 2.0f);
    Tensor s = ops::sliceRows(c, 2, 5);
    EXPECT_EQ(s.size(0), 3);
    EXPECT_FLOAT_EQ(s(0, 0), 2.0f);
}

TEST(Elementwise, ConcatCols)
{
    Tensor a = Tensor::full({2, 2}, 1.0f);
    Tensor b = Tensor::full({2, 3}, 2.0f);
    Tensor c = ops::concatCols(a, b);
    EXPECT_EQ(c.size(1), 5);
    EXPECT_FLOAT_EQ(c(1, 1), 1.0f);
    EXPECT_FLOAT_EQ(c(1, 2), 2.0f);
}

TEST(Elementwise, Transpose2d)
{
    Tensor a = iota({2, 3});
    Tensor t = ops::transpose2d(a);
    EXPECT_EQ(t.size(0), 3);
    for (int64_t i = 0; i < 2; ++i) {
        for (int64_t j = 0; j < 3; ++j)
            EXPECT_FLOAT_EQ(t(j, i), a(i, j));
    }
}

TEST(Elementwise, EmitsKernelsWhenDeviceBound)
{
    GpuDevice dev;
    Profiler prof;
    dev.addObserver(&prof);
    Tensor a = iota({64, 64});
    {
        ContextGuard guard(&dev);
        ops::relu(a);
    }
    EXPECT_EQ(prof.totalLaunches(), 1);
    EXPECT_GT(prof.classStats(OpClass::ElementWise).timeSec, 0);
}

TEST(Elementwise, NoEmissionWithoutDevice)
{
    GpuDevice dev;
    Profiler prof;
    dev.addObserver(&prof);
    Tensor a = iota({8, 8});
    ops::relu(a); // no ContextGuard
    EXPECT_EQ(prof.totalLaunches(), 0);
}

TEST(ElementwiseDeath, ShapeMismatchPanics)
{
    Tensor a = Tensor::zeros({2, 2});
    Tensor b = Tensor::zeros({3, 2});
    EXPECT_DEATH(ops::add(a, b), "shape mismatch");
}

/** Property sweep: add/mul identities over many sizes. */
class ElementwiseSizes : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(ElementwiseSizes, AddZeroIsIdentity)
{
    Rng rng(GetParam());
    Tensor a = Tensor::randn({GetParam()}, rng);
    EXPECT_TRUE(allClose(ops::add(a, Tensor::zeros({GetParam()})), a));
}

TEST_P(ElementwiseSizes, MulOneIsIdentity)
{
    Rng rng(GetParam() + 1);
    Tensor a = Tensor::randn({GetParam()}, rng);
    EXPECT_TRUE(allClose(ops::mul(a, Tensor::ones({GetParam()})), a));
}

TEST_P(ElementwiseSizes, ReluIdempotent)
{
    Rng rng(GetParam() + 2);
    Tensor a = Tensor::randn({GetParam()}, rng);
    Tensor once = ops::relu(a);
    EXPECT_TRUE(allClose(ops::relu(once), once));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ElementwiseSizes,
                         ::testing::Values(1, 7, 32, 100, 1000, 4097));
