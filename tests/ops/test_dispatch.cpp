/**
 * @file
 * ops::Dispatch selection contract: the closed-form model is a pure
 * function of shape/sparsity (thread count never enters), the
 * GNNMARK_OP_VARIANT override pins variants, stats counters track
 * executed ops, and the sampled-zero-fraction probe is deterministic.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "base/rng.hh"
#include "ops/dispatch.hh"
#include "ops/gemm.hh"
#include "ops/spmm.hh"
#include "tensor/sparse.hh"

using namespace gnnmark;
using ops::Dispatch;
using ops::GemmVariant;
using ops::SpmmVariant;

namespace {

/** RAII env-var setter that restores (unsets) and reloads on exit. */
class ScopedOpEnv
{
  public:
    ScopedOpEnv(const char *name, const char *value) : name_(name)
    {
        ::setenv(name, value, 1);
        Dispatch::instance().reloadEnv();
    }
    ~ScopedOpEnv()
    {
        ::unsetenv(name_);
        Dispatch::instance().reloadEnv();
    }

  private:
    const char *name_;
};

CsrMatrix
randomCsr(Rng &rng, int64_t rows, int64_t cols, double density)
{
    std::vector<std::tuple<int32_t, int32_t, float>> triples;
    for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = 0; c < cols; ++c) {
            if (rng.bernoulli(density)) {
                triples.emplace_back(
                    static_cast<int32_t>(r), static_cast<int32_t>(c),
                    static_cast<float>(rng.normal()));
            }
        }
    }
    return csrFromTriples(rows, cols, std::move(triples));
}

} // namespace

TEST(Dispatch, VariantNames)
{
    EXPECT_STREQ(ops::gemmVariantName(GemmVariant::Naive), "naive");
    EXPECT_STREQ(ops::gemmVariantName(GemmVariant::Tiled), "tiled");
    EXPECT_STREQ(ops::spmmVariantName(SpmmVariant::CsrScalar),
                 "csr_scalar");
    EXPECT_STREQ(ops::spmmVariantName(SpmmVariant::CsrVector),
                 "csr_vector");
    EXPECT_STREQ(ops::spmmVariantName(SpmmVariant::Coo), "coo");
    EXPECT_STREQ(ops::spmmVariantName(SpmmVariant::Bell), "bell");
}

TEST(Dispatch, GemmModelIsShapeDeterministic)
{
    Dispatch &d = Dispatch::instance();
    // Large dense: register tiling wins.
    EXPECT_EQ(d.chooseGemm(128, 128, 128, 0.0), GemmVariant::Tiled);
    // Mostly-zero A: the naive loop's zero-skip wins.
    EXPECT_EQ(d.chooseGemm(128, 128, 128, 0.9), GemmVariant::Naive);
    // Degenerate shapes fall back to naive.
    EXPECT_EQ(d.chooseGemm(1, 1, 1, 0.0), GemmVariant::Naive);
    EXPECT_EQ(d.chooseGemm(2, 512, 512, 0.0), GemmVariant::Naive);
    // Same inputs, same answer — repeatedly.
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(d.chooseGemm(64, 64, 64, 0.25),
                  d.chooseGemm(64, 64, 64, 0.25));
}

TEST(Dispatch, SpmmModelPinsFormatsAndPicksCsrFlavour)
{
    Dispatch &d = Dispatch::instance();
    EXPECT_EQ(d.chooseSpmm(SparseFormat::Coo, 512, 64, 4096),
              SpmmVariant::Coo);
    EXPECT_EQ(d.chooseSpmm(SparseFormat::BlockedEll, 512, 64, 4096),
              SpmmVariant::Bell);
    // Wide feature dim: vector flavour; narrow: scalar.
    EXPECT_EQ(d.chooseSpmm(SparseFormat::Csr, 512, 64, 4096),
              SpmmVariant::CsrVector);
    EXPECT_EQ(d.chooseSpmm(SparseFormat::Csr, 512, 4, 4096),
              SpmmVariant::CsrScalar);
    // No work at all: scalar (nothing to vectorize over).
    EXPECT_EQ(d.chooseSpmm(SparseFormat::Csr, 512, 64, 0),
              SpmmVariant::CsrScalar);
}

TEST(Dispatch, ChoiceIgnoresThreadCountEnv)
{
    // GNNMARK_THREADS influences the pool, never the variant model.
    Dispatch &d = Dispatch::instance();
    const GemmVariant g = d.chooseGemm(96, 96, 96, 0.0);
    const SpmmVariant s = d.chooseSpmm(SparseFormat::Csr, 256, 32, 999);
    {
        ScopedOpEnv env("GNNMARK_THREADS", "1");
        EXPECT_EQ(d.chooseGemm(96, 96, 96, 0.0), g);
        EXPECT_EQ(d.chooseSpmm(SparseFormat::Csr, 256, 32, 999), s);
    }
    {
        ScopedOpEnv env("GNNMARK_THREADS", "16");
        EXPECT_EQ(d.chooseGemm(96, 96, 96, 0.0), g);
        EXPECT_EQ(d.chooseSpmm(SparseFormat::Csr, 256, 32, 999), s);
    }
}

TEST(Dispatch, EnvOverridePinsVariants)
{
    Dispatch &d = Dispatch::instance();
    {
        ScopedOpEnv env("GNNMARK_OP_VARIANT", "gemm=naive,spmm=scalar");
        EXPECT_EQ(d.chooseGemm(256, 256, 256, 0.0),
                  GemmVariant::Naive);
        EXPECT_EQ(d.chooseSpmm(SparseFormat::Csr, 512, 64, 4096),
                  SpmmVariant::CsrScalar);
        // Format-pinned kernels cannot be overridden away from their
        // storage layout.
        EXPECT_EQ(d.chooseSpmm(SparseFormat::Coo, 512, 64, 4096),
                  SpmmVariant::Coo);
    }
    {
        ScopedOpEnv env("GNNMARK_OP_VARIANT", "gemm=tiled");
        EXPECT_EQ(d.chooseGemm(1, 1, 1, 0.0), GemmVariant::Tiled);
    }
    {
        ScopedOpEnv env("GNNMARK_OP_VARIANT", "spmm=vector");
        EXPECT_EQ(d.chooseSpmm(SparseFormat::Csr, 512, 4, 4096),
                  SpmmVariant::CsrVector);
    }
    // Cleared again: back to the model.
    EXPECT_EQ(d.chooseGemm(256, 256, 256, 0.0), GemmVariant::Tiled);
}

TEST(Dispatch, StatsCountExecutedOps)
{
    Dispatch &d = Dispatch::instance();
    d.resetStats();
    Rng rng(7);
    Tensor a = Tensor::randn({32, 48}, rng);
    Tensor b = Tensor::randn({48, 64}, rng);
    (void)ops::gemm(a, b);
    const CsrMatrix csr = randomCsr(rng, 40, 40, 0.1);
    Tensor feat = Tensor::randn({40, 32}, rng);
    (void)ops::spmm(SparseMatrix(csr), feat);
    (void)ops::spmm(SparseMatrix(csr).toFormat(SparseFormat::Coo),
                    feat);
    const ops::DispatchStats s = d.stats();
    EXPECT_EQ(s.gemmNaive + s.gemmTiled, 1);
    EXPECT_EQ(s.spmmCsrScalar + s.spmmCsrVector, 1);
    EXPECT_EQ(s.spmmCoo, 1);
    EXPECT_EQ(s.spmmBell, 0);
    EXPECT_TRUE(s.calibrated);
    EXPECT_EQ(s.mode, "model");
    d.resetStats();
    const ops::DispatchStats z = d.stats();
    EXPECT_EQ(z.gemmNaive + z.gemmTiled + z.spmmCsrScalar +
                  z.spmmCsrVector + z.spmmCoo + z.spmmBell,
              0);
}

TEST(Dispatch, SampledZeroFractionDeterministic)
{
    std::vector<float> half(1000);
    for (size_t i = 0; i < half.size(); ++i)
        half[i] = (i % 2 == 0) ? 0.0f : 1.0f;
    const double f1 =
        Dispatch::sampledZeroFraction(half.data(), half.size());
    const double f2 =
        Dispatch::sampledZeroFraction(half.data(), half.size());
    EXPECT_EQ(f1, f2);
    EXPECT_NEAR(f1, 0.5, 0.05);

    std::vector<float> zeros(70000, 0.0f);
    EXPECT_EQ(Dispatch::sampledZeroFraction(zeros.data(),
                                            zeros.size()),
              1.0);
    std::vector<float> ones(70000, 1.0f);
    EXPECT_EQ(Dispatch::sampledZeroFraction(ones.data(), ones.size()),
              0.0);
    EXPECT_EQ(Dispatch::sampledZeroFraction(nullptr, 0), 0.0);
}

TEST(Dispatch, MetricsDisarmedByDefault)
{
    // The ops.* counters must stay out of Metrics unless armed —
    // gated telemetry baselines diff snapshots exactly.
    EXPECT_FALSE(Dispatch::instance().metricsEnabled());
    Dispatch::instance().setMetricsEnabled(true);
    EXPECT_TRUE(Dispatch::instance().metricsEnabled());
    Dispatch::instance().setMetricsEnabled(false);
    EXPECT_FALSE(Dispatch::instance().metricsEnabled());
}
