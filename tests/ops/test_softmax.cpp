/** @file Softmax / log-softmax tests. */

#include <gtest/gtest.h>

#include <cmath>

#include "base/rng.hh"
#include "ops/softmax.hh"

using namespace gnnmark;

TEST(Softmax, RowsSumToOne)
{
    Rng rng(31);
    Tensor a = Tensor::randn({5, 9}, rng, 3.0f);
    Tensor y = ops::softmaxRows(a);
    for (int64_t i = 0; i < 5; ++i) {
        double sum = 0;
        for (int64_t j = 0; j < 9; ++j) {
            EXPECT_GT(y(i, j), 0.0f);
            sum += y(i, j);
        }
        EXPECT_NEAR(sum, 1.0, 1e-5);
    }
}

TEST(Softmax, InvariantToRowShift)
{
    Rng rng(32);
    Tensor a = Tensor::randn({3, 7}, rng);
    Tensor shifted = a.clone();
    for (int64_t j = 0; j < 7; ++j)
        shifted(1, j) += 100.0f;
    Tensor ya = ops::softmaxRows(a);
    Tensor yb = ops::softmaxRows(shifted);
    for (int64_t j = 0; j < 7; ++j)
        EXPECT_NEAR(ya(1, j), yb(1, j), 1e-5);
}

TEST(Softmax, NumericallyStableForLargeInputs)
{
    Tensor a = Tensor::full({2, 3}, 1e4f);
    Tensor y = ops::softmaxRows(a);
    for (int64_t j = 0; j < 3; ++j)
        EXPECT_NEAR(y(0, j), 1.0 / 3.0, 1e-5);
}

TEST(LogSoftmax, AgreesWithLogOfSoftmax)
{
    Rng rng(33);
    Tensor a = Tensor::randn({4, 6}, rng);
    Tensor log_y = ops::logSoftmaxRows(a);
    Tensor y = ops::softmaxRows(a);
    for (int64_t i = 0; i < 4; ++i) {
        for (int64_t j = 0; j < 6; ++j)
            EXPECT_NEAR(log_y(i, j), std::log(y(i, j)), 1e-4);
    }
}

TEST(Softmax, BackwardMatchesFiniteDifference)
{
    Rng rng(34);
    Tensor a = Tensor::randn({2, 5}, rng);
    Tensor gout = Tensor::randn({2, 5}, rng);
    Tensor y = ops::softmaxRows(a);
    Tensor grad = ops::softmaxRowsBackward(gout, y);

    const float eps = 1e-3f;
    for (int64_t idx = 0; idx < a.numel(); ++idx) {
        float saved = a.data()[idx];
        auto loss = [&]() {
            Tensor out = ops::softmaxRows(a);
            double s = 0;
            for (int64_t i = 0; i < out.numel(); ++i)
                s += static_cast<double>(out.data()[i]) * gout.data()[i];
            return s;
        };
        a.data()[idx] = saved + eps;
        double plus = loss();
        a.data()[idx] = saved - eps;
        double minus = loss();
        a.data()[idx] = saved;
        EXPECT_NEAR(grad.data()[idx], (plus - minus) / (2 * eps), 1e-2);
    }
}

TEST(LogSoftmax, BackwardMatchesFiniteDifference)
{
    Rng rng(35);
    Tensor a = Tensor::randn({2, 4}, rng);
    Tensor gout = Tensor::randn({2, 4}, rng);
    Tensor log_y = ops::logSoftmaxRows(a);
    Tensor grad = ops::logSoftmaxRowsBackward(gout, log_y);

    const float eps = 1e-3f;
    for (int64_t idx = 0; idx < a.numel(); ++idx) {
        float saved = a.data()[idx];
        auto loss = [&]() {
            Tensor out = ops::logSoftmaxRows(a);
            double s = 0;
            for (int64_t i = 0; i < out.numel(); ++i)
                s += static_cast<double>(out.data()[i]) * gout.data()[i];
            return s;
        };
        a.data()[idx] = saved + eps;
        double plus = loss();
        a.data()[idx] = saved - eps;
        double minus = loss();
        a.data()[idx] = saved;
        EXPECT_NEAR(grad.data()[idx], (plus - minus) / (2 * eps), 1e-2);
    }
}
