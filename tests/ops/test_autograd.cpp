/** @file Reverse-mode autograd tests: finite-difference checks for
 *  every differentiable operator plus graph-structure behaviour. */

#include <gtest/gtest.h>

#include <functional>

#include "base/rng.hh"
#include "ops/var_ops.hh"

using namespace gnnmark;

namespace {

/**
 * Check d(sum(f(x)))/dx against central differences for a few probe
 * elements.
 */
void
checkGrad(Tensor x, const std::function<Variable(const Variable &)> &f,
          float tol = 2e-2f, float eps = 1e-3f)
{
    Variable vx = Variable::param(x);
    Variable y = ag::sumAll(f(vx));
    y.backward();
    const Tensor &grad = vx.grad();

    Rng probe_rng(x.numel() * 31 + 7);
    const int probes = static_cast<int>(
        std::min<int64_t>(8, x.numel()));
    for (int p = 0; p < probes; ++p) {
        const int64_t idx = static_cast<int64_t>(probe_rng.randint(
            static_cast<uint64_t>(x.numel())));
        const float saved = x.data()[idx];
        auto eval = [&]() {
            Variable v(x);
            Variable out = f(v);
            double s = 0;
            for (int64_t i = 0; i < out.value().numel(); ++i)
                s += out.value().data()[i];
            return s;
        };
        x.data()[idx] = saved + eps;
        double plus = eval();
        x.data()[idx] = saved - eps;
        double minus = eval();
        x.data()[idx] = saved;
        const double numeric = (plus - minus) / (2.0 * eps);
        EXPECT_NEAR(grad.data()[idx], numeric,
                    tol * (1.0 + std::abs(numeric)))
            << "probe " << idx;
    }
}

} // namespace

TEST(Autograd, LeafGradAccumulates)
{
    Variable x = Variable::param(Tensor::full({3}, 2.0f));
    Variable y = ag::sumAll(ag::mul(x, x));
    y.backward();
    for (int64_t i = 0; i < 3; ++i)
        EXPECT_NEAR(x.grad()(i), 4.0f, 1e-5f);
}

TEST(Autograd, DiamondReuseSumsGradients)
{
    Variable x = Variable::param(Tensor::full({2}, 3.0f));
    // y = x + x: dy/dx = 2
    Variable y = ag::sumAll(ag::add(x, x));
    y.backward();
    EXPECT_NEAR(x.grad()(0), 2.0f, 1e-6f);
}

TEST(Autograd, DetachBlocksGradient)
{
    Variable x = Variable::param(Tensor::full({2}, 3.0f));
    Variable y = ag::sumAll(ag::mul(x.detach(), x));
    y.backward();
    // Only the non-detached factor contributes.
    EXPECT_NEAR(x.grad()(0), 3.0f, 1e-6f);
}

TEST(Autograd, ZeroGradResets)
{
    Variable x = Variable::param(Tensor::full({1}, 1.0f));
    ag::sumAll(ag::scale(x, 2.0f)).backward();
    EXPECT_NEAR(x.grad()(0), 2.0f, 1e-6f);
    x.zeroGrad();
    EXPECT_FALSE(x.hasGrad());
    ag::sumAll(ag::scale(x, 5.0f)).backward();
    EXPECT_NEAR(x.grad()(0), 5.0f, 1e-6f);
}

TEST(Autograd, NoGradGraphWhenNoParamInvolved)
{
    Variable a(Tensor::full({2}, 1.0f));
    Variable b(Tensor::full({2}, 2.0f));
    Variable c = ag::add(a, b);
    EXPECT_FALSE(c.requiresGrad());
}

TEST(AutogradGradCheck, ElementwiseOps)
{
    Rng rng(41);
    Tensor x = Tensor::randn({4, 5}, rng);
    checkGrad(x.clone(), [](const Variable &v) { return ag::relu(v); });
    checkGrad(x.clone(),
              [](const Variable &v) { return ag::sigmoid(v); });
    checkGrad(x.clone(), [](const Variable &v) { return ag::tanh(v); });
    checkGrad(x.clone(), [](const Variable &v) { return ag::exp(v); });
    checkGrad(x.clone(),
              [](const Variable &v) { return ag::scale(v, -1.7f); });
    checkGrad(x.clone(),
              [](const Variable &v) { return ag::addScalar(v, 3.0f); });
}

TEST(AutogradGradCheck, BinaryOps)
{
    Rng rng(42);
    Tensor x = Tensor::randn({3, 4}, rng);
    Tensor other = Tensor::randn({3, 4}, rng);
    Variable o(other);
    checkGrad(x.clone(),
              [&](const Variable &v) { return ag::add(v, o); });
    checkGrad(x.clone(),
              [&](const Variable &v) { return ag::sub(v, o); });
    checkGrad(x.clone(),
              [&](const Variable &v) { return ag::mul(v, o); });
}

TEST(AutogradGradCheck, Div)
{
    Rng rng(142);
    Tensor x = Tensor::randn({3, 4}, rng);
    Tensor denom = Tensor::uniform({3, 4}, rng, 0.5f, 2.0f);
    Variable d(denom);
    checkGrad(x.clone(),
              [&](const Variable &v) { return ag::div(v, d); });
    // Gradient wrt the denominator.
    Tensor num = Tensor::randn({3, 4}, rng);
    Variable nvar(num);
    checkGrad(denom.clone(),
              [&](const Variable &v) { return ag::div(nvar, v); });
}

TEST(AutogradGradCheck, GemmAllTransposes)
{
    Rng rng(43);
    for (bool ta : {false, true}) {
        for (bool tb : {false, true}) {
            Tensor x = ta ? Tensor::randn({6, 4}, rng)
                          : Tensor::randn({4, 6}, rng);
            Tensor w = tb ? Tensor::randn({5, 6}, rng)
                          : Tensor::randn({6, 5}, rng);
            // Grad wrt first operand.
            Variable vw(w);
            checkGrad(x.clone(), [&](const Variable &v) {
                return ag::gemm(v, vw,
                                {.trans_a = ta, .trans_b = tb});
            });
            // Grad wrt second operand.
            Variable vx(x);
            checkGrad(w.clone(), [&](const Variable &v) {
                return ag::gemm(vx, v,
                                {.trans_a = ta, .trans_b = tb});
            });
        }
    }
}

TEST(AutogradGradCheck, Spmm)
{
    Rng rng(44);
    std::vector<std::tuple<int32_t, int32_t, float>> triples;
    for (int32_t r = 0; r < 6; ++r) {
        for (int32_t c = 0; c < 5; ++c) {
            if (rng.bernoulli(0.4)) {
                triples.emplace_back(r, c,
                                     static_cast<float>(rng.normal()));
            }
        }
    }
    SparseMatrix a(csrFromTriples(6, 5, triples));
    std::vector<std::tuple<int32_t, int32_t, float>> t_triples;
    const CsrMatrix &ac = a.csr();
    for (int64_t r = 0; r < 6; ++r) {
        for (int32_t e = ac.rowPtr[r]; e < ac.rowPtr[r + 1]; ++e) {
            t_triples.emplace_back(ac.colIdx[e],
                                   static_cast<int32_t>(r), ac.vals[e]);
        }
    }
    SparseMatrix at(csrFromTriples(5, 6, t_triples));
    Tensor x = Tensor::randn({5, 3}, rng);
    checkGrad(x.clone(), [&](const Variable &v) {
        return ag::spmm(a, at, v);
    });
}

TEST(AutogradGradCheck, BiasSoftmaxSlices)
{
    Rng rng(45);
    Tensor x = Tensor::randn({4, 6}, rng);
    Variable bias = Variable(Tensor::randn({6}, rng));
    checkGrad(x.clone(), [&](const Variable &v) {
        return ag::addBiasRows(v, bias);
    });
    checkGrad(x.clone(),
              [](const Variable &v) { return ag::softmaxRows(v); });
    checkGrad(x.clone(),
              [](const Variable &v) { return ag::logSoftmaxRows(v); });
    checkGrad(x.clone(), [](const Variable &v) {
        return ag::sliceRows(v, 1, 3);
    });
    checkGrad(x.clone(), [](const Variable &v) {
        return ag::sliceCols(v, 2, 5);
    });
    checkGrad(x.clone(),
              [](const Variable &v) { return ag::transpose2d(v); });
    checkGrad(x.clone(), [](const Variable &v) {
        return ag::reshape(v, {2, 12});
    });
    checkGrad(x.clone(),
              [](const Variable &v) { return ag::meanRows(v); });
}

TEST(AutogradGradCheck, BiasGradient)
{
    Rng rng(46);
    Tensor bias = Tensor::randn({6}, rng);
    Variable x(Tensor::randn({4, 6}, rng));
    checkGrad(bias.clone(), [&](const Variable &v) {
        return ag::addBiasRows(x, v);
    });
}

TEST(AutogradGradCheck, IndexOps)
{
    Rng rng(47);
    Tensor x = Tensor::randn({5, 3}, rng);
    std::vector<int32_t> idx = {4, 0, 2, 0};
    checkGrad(x.clone(), [&](const Variable &v) {
        return ag::indexSelectRows(v, idx);
    });
    checkGrad(x.clone(), [&](const Variable &v) {
        return ag::gatherRows(v, idx);
    });
    Tensor src = Tensor::randn({4, 3}, rng);
    checkGrad(src.clone(), [&](const Variable &v) {
        return ag::scatterSumRows(v, idx, 5);
    });
}

TEST(AutogradGradCheck, SegmentOps)
{
    Rng rng(48);
    Tensor x = Tensor::randn({6, 2}, rng);
    std::vector<int32_t> offsets = {0, 2, 2, 6};
    checkGrad(x.clone(), [&](const Variable &v) {
        return ag::segmentSumRows(v, offsets);
    });
    checkGrad(x.clone(), [&](const Variable &v) {
        return ag::segmentMeanRows(v, offsets);
    });
}

TEST(AutogradGradCheck, ConcatOps)
{
    Rng rng(49);
    Tensor x = Tensor::randn({3, 4}, rng);
    Variable other(Tensor::randn({2, 4}, rng));
    checkGrad(x.clone(), [&](const Variable &v) {
        return ag::concatRows({v, other});
    });
    Variable cols(Tensor::randn({3, 2}, rng));
    checkGrad(x.clone(), [&](const Variable &v) {
        return ag::concatCols(v, cols);
    });
}

TEST(AutogradGradCheck, Conv2dAndNorms)
{
    Rng rng(50);
    Tensor x = Tensor::randn({1, 2, 4, 4}, rng);
    Variable w(Tensor::randn({2, 2, 3, 3}, rng));
    checkGrad(x.clone(), [&](const Variable &v) {
        return ag::conv2d(v, w);
    }, 5e-2f);

    Tensor feats = Tensor::randn({16, 5}, rng);
    Variable gamma = Variable(Tensor::ones({5}));
    Variable beta = Variable(Tensor::zeros({5}));
    checkGrad(feats.clone(), [&](const Variable &v) {
        return ag::batchNorm(v, gamma, beta);
    }, 5e-2f);
    checkGrad(feats.clone(), [&](const Variable &v) {
        return ag::layerNorm(v, gamma, beta);
    }, 5e-2f);
}

TEST(AutogradGradCheck, Losses)
{
    Rng rng(51);
    Tensor logits = Tensor::randn({6, 4}, rng);
    std::vector<int32_t> labels = {0, 3, 1, 2, 3, 0};
    checkGrad(logits.clone(), [&](const Variable &v) {
        return ag::nllLoss(ag::logSoftmaxRows(v), labels);
    });

    Tensor pred = Tensor::randn({5, 2}, rng);
    Variable target(Tensor::randn({5, 2}, rng));
    checkGrad(pred.clone(), [&](const Variable &v) {
        return ag::mseLoss(v, target);
    });

    Tensor x = Tensor::randn({4, 3}, rng);
    Tensor y = Tensor::zeros({4, 3});
    for (int64_t i = 0; i < y.numel(); ++i)
        y.data()[i] = rng.bernoulli(0.5) ? 1.0f : 0.0f;
    checkGrad(x.clone(), [&](const Variable &v) {
        return ag::bceWithLogits(v, y);
    });
}

TEST(Autograd, DropoutBackwardUsesMask)
{
    Rng rng(52);
    Variable x = Variable::param(Tensor::full({1000}, 1.0f));
    Rng drop_rng(7);
    Variable y = ag::dropout(x, 0.5f, drop_rng);
    ag::sumAll(y).backward();
    // Gradient equals the mask: zero where dropped, 2 where kept.
    int zeros = 0;
    for (int64_t i = 0; i < 1000; ++i) {
        float g = x.grad()(i);
        EXPECT_TRUE(g == 0.0f || std::abs(g - 2.0f) < 1e-5f);
        zeros += g == 0.0f;
        EXPECT_FLOAT_EQ(y.value()(i), g); // output 1*mask
    }
    EXPECT_NEAR(zeros / 1000.0, 0.5, 0.06);
}

TEST(Autograd, BackwardOnNonScalarWithSeed)
{
    Variable x = Variable::param(Tensor::full({3}, 2.0f));
    Variable y = ag::mul(x, x);
    Tensor seed = Tensor::fromVector({3}, {1.0f, 0.0f, 2.0f});
    y.backward(seed);
    EXPECT_NEAR(x.grad()(0), 4.0f, 1e-6f);
    EXPECT_NEAR(x.grad()(1), 0.0f, 1e-6f);
    EXPECT_NEAR(x.grad()(2), 8.0f, 1e-6f);
}

TEST(AutogradDeath, BackwardOnNonGradVariablePanics)
{
    Variable x(Tensor::zeros({2}));
    EXPECT_DEATH(x.backward(), "non-grad");
}
