/**
 * @file
 * Direct tests of the ops::kern host-kernel variants: the tiled /
 * vectorized paths must be *bitwise identical* to the historical
 * scalar loops for any shape, including strip tails (n % 16, f % 16),
 * row-group tails (m % 4), and operands with exact zeros (the naive
 * GEMM's skip path).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "base/rng.hh"
#include "ops/cpu_kernels.hh"
#include "tensor/sparse.hh"

using namespace gnnmark;

namespace {

std::vector<float>
operand(Rng &rng, int64_t elems, double zero_frac = 0.0)
{
    std::vector<float> v(elems);
    for (float &x : v) {
        x = rng.bernoulli(zero_frac)
                ? 0.0f
                : rng.uniform(-1.0f, 1.0f);
    }
    return v;
}

CsrMatrix
randomCsr(Rng &rng, int64_t rows, int64_t cols, double density)
{
    std::vector<std::tuple<int32_t, int32_t, float>> triples;
    for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = 0; c < cols; ++c) {
            if (rng.bernoulli(density)) {
                triples.emplace_back(static_cast<int32_t>(r),
                                     static_cast<int32_t>(c),
                                     rng.uniform(-1.0f, 1.0f));
            }
        }
    }
    return csrFromTriples(rows, cols, std::move(triples));
}

bool
bitwiseEqual(const std::vector<float> &a, const std::vector<float> &b)
{
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(),
                       a.size() * sizeof(float)) == 0;
}

} // namespace

TEST(CpuKernels, GemmTiledBitwiseMatchesNaive)
{
    Rng rng(31);
    // Shapes chosen to hit every tail: m % 4, n % 16, small k.
    const struct { int64_t m, n, k; double zf; } cases[] = {
        {1, 1, 1, 0.0},   {4, 16, 8, 0.0},  {5, 17, 9, 0.0},
        {33, 40, 48, 0.5}, {7, 15, 3, 0.0},  {64, 64, 64, 0.25},
        {8, 31, 12, 1.0},
    };
    for (const auto &tc : cases) {
        const std::vector<float> a = operand(rng, tc.m * tc.k, tc.zf);
        const std::vector<float> b = operand(rng, tc.k * tc.n);
        std::vector<float> c_naive(tc.m * tc.n, 0.0f);
        std::vector<float> c_tiled(tc.m * tc.n, 0.0f);
        ops::kern::gemmNaive(a.data(), b.data(), c_naive.data(), tc.m,
                             tc.n, tc.k);
        ops::kern::gemmTiled(a.data(), b.data(), c_tiled.data(), tc.m,
                             tc.n, tc.k);
        EXPECT_TRUE(bitwiseEqual(c_naive, c_tiled))
            << "m=" << tc.m << " n=" << tc.n << " k=" << tc.k
            << " zero_frac=" << tc.zf;
    }
}

TEST(CpuKernels, SpmmVariantsBitwiseMatchScalar)
{
    Rng rng(32);
    const struct { int64_t rows, cols, f; double density; } cases[] = {
        {1, 1, 1, 1.0},    {16, 16, 16, 0.2}, {17, 23, 33, 0.15},
        {96, 80, 40, 0.05}, {9, 64, 15, 0.5},  {13, 21, 7, 0.0},
    };
    for (const auto &tc : cases) {
        const CsrMatrix csr =
            randomCsr(rng, tc.rows, tc.cols, tc.density);
        const CooMatrix coo = cooFromCsr(csr);
        const BlockedEllMatrix bell = bellFromCsr(csr);
        const std::vector<float> b = operand(rng, tc.cols * tc.f);
        const size_t elems = static_cast<size_t>(tc.rows) * tc.f;
        std::vector<float> c_scalar(elems, 0.0f);
        std::vector<float> c_vector(elems, 0.0f);
        std::vector<float> c_coo(elems, 0.0f);
        std::vector<float> c_bell(elems, 0.0f);
        ops::kern::spmmCsrScalar(csr, b.data(), c_scalar.data(), tc.f);
        ops::kern::spmmCsrVector(csr, b.data(), c_vector.data(), tc.f);
        ops::kern::spmmCoo(coo, b.data(), c_coo.data(), tc.f);
        ops::kern::spmmBell(bell, b.data(), c_bell.data(), tc.f);
        const auto label = [&](const char *what) {
            return ::testing::Message()
                   << what << " rows=" << tc.rows << " cols=" << tc.cols
                   << " f=" << tc.f << " d=" << tc.density;
        };
        EXPECT_TRUE(bitwiseEqual(c_scalar, c_vector))
            << label("csr_vector");
        EXPECT_TRUE(bitwiseEqual(c_scalar, c_coo)) << label("coo");
        EXPECT_TRUE(bitwiseEqual(c_scalar, c_bell)) << label("bell");
    }
}

TEST(CpuKernels, GemmNegativeZeroPreserved)
{
    // -0.0 in A is NOT skipped (only +0.0 compares equal to 0.0f via
    // ==, and both do); the result sign must match the scalar loop.
    const std::vector<float> a = {-0.0f, 2.0f};
    const std::vector<float> b = {-3.0f, 1.0f};
    std::vector<float> c_naive(1, 0.0f), c_tiled(1, 0.0f);
    ops::kern::gemmNaive(a.data(), b.data(), c_naive.data(), 1, 1, 2);
    ops::kern::gemmTiled(a.data(), b.data(), c_tiled.data(), 1, 1, 2);
    EXPECT_EQ(std::memcmp(c_naive.data(), c_tiled.data(),
                          sizeof(float)),
              0);
}

TEST(CpuKernels, SimdActiveIsStable)
{
    // Whatever the host supports, the answer must not flip mid-run
    // (the dispatch cost model and the calibration probes rely on it).
    const bool first = ops::kern::simdActive();
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(ops::kern::simdActive(), first);
}
