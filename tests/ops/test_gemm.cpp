/** @file GEMM/GEMV correctness (vs. a reference) and emission tests. */

#include <gtest/gtest.h>

#include <tuple>

#include "base/rng.hh"
#include "ops/exec_context.hh"
#include "ops/gemm.hh"
#include "profiler/profiler.hh"

using namespace gnnmark;

namespace {

/** Independent reference: explicit dot products, untransposed view. */
Tensor
refGemm(const Tensor &a, const Tensor &b, bool ta, bool tb)
{
    const int64_t m = ta ? a.size(1) : a.size(0);
    const int64_t k = ta ? a.size(0) : a.size(1);
    const int64_t n = tb ? b.size(0) : b.size(1);
    Tensor c = Tensor::zeros({m, n});
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            double acc = 0;
            for (int64_t kk = 0; kk < k; ++kk) {
                float av = ta ? a(kk, i) : a(i, kk);
                float bv = tb ? b(j, kk) : b(kk, j);
                acc += static_cast<double>(av) * bv;
            }
            c(i, j) = static_cast<float>(acc);
        }
    }
    return c;
}

} // namespace

/** Sweep: all transpose combinations across shapes. */
class GemmSweep
    : public ::testing::TestWithParam<
          std::tuple<int64_t, int64_t, int64_t, bool, bool>>
{
};

TEST_P(GemmSweep, MatchesReference)
{
    auto [m, n, k, ta, tb] = GetParam();
    Rng rng(m * 31 + n * 7 + k + ta * 2 + tb);
    Tensor a = ta ? Tensor::randn({k, m}, rng) : Tensor::randn({m, k}, rng);
    Tensor b = tb ? Tensor::randn({n, k}, rng) : Tensor::randn({k, n}, rng);
    Tensor c = ops::gemm(a, b, {.trans_a = ta, .trans_b = tb});
    EXPECT_TRUE(allClose(c, refGemm(a, b, ta, tb), 1e-3f, 1e-4f))
        << "m=" << m << " n=" << n << " k=" << k << " ta=" << ta
        << " tb=" << tb;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSweep,
    ::testing::Combine(::testing::Values(1, 5, 33, 64),
                       ::testing::Values(1, 17, 64),
                       ::testing::Values(1, 8, 65),
                       ::testing::Bool(), ::testing::Bool()));

TEST(Gemm, IdentityMatrix)
{
    Rng rng(4);
    Tensor a = Tensor::randn({6, 6}, rng);
    Tensor eye = Tensor::zeros({6, 6});
    for (int64_t i = 0; i < 6; ++i)
        eye(i, i) = 1.0f;
    EXPECT_TRUE(allClose(ops::gemm(a, eye), a));
}

TEST(GemmDeath, InnerDimMismatchPanics)
{
    Tensor a = Tensor::zeros({2, 3});
    Tensor b = Tensor::zeros({4, 2});
    EXPECT_DEATH(ops::gemm(a, b), "inner-dimension mismatch");
}

TEST(Gemm, EmitsGemmClassKernelWithFlops)
{
    GpuDevice dev;
    Profiler prof;
    dev.addObserver(&prof);
    Rng rng(5);
    Tensor a = Tensor::randn({64, 64}, rng);
    Tensor b = Tensor::randn({64, 64}, rng);
    {
        ContextGuard guard(&dev);
        ops::gemm(a, b);
    }
    const OpClassStats &s = prof.classStats(OpClass::Gemm);
    EXPECT_EQ(s.launches, 1);
    // Tiled kernel executes the padded 64x64x64 tile exactly.
    EXPECT_NEAR(s.flops, 2.0 * 64 * 64 * 64, 2.0 * 64 * 64 * 64 * 0.2);
}

TEST(Gemv, MatchesReference)
{
    Rng rng(6);
    Tensor a = Tensor::randn({9, 17}, rng);
    Tensor x = Tensor::randn({17}, rng);
    Tensor y = ops::gemv(a, x);
    for (int64_t i = 0; i < 9; ++i) {
        double acc = 0;
        for (int64_t k = 0; k < 17; ++k)
            acc += static_cast<double>(a(i, k)) * x(k);
        EXPECT_NEAR(y(i), acc, 1e-4);
    }
}

TEST(Gemv, EmitsGemvClass)
{
    GpuDevice dev;
    Profiler prof;
    dev.addObserver(&prof);
    Rng rng(7);
    Tensor a = Tensor::randn({64, 32}, rng);
    Tensor x = Tensor::randn({32}, rng);
    {
        ContextGuard guard(&dev);
        ops::gemv(a, x);
    }
    EXPECT_EQ(prof.classStats(OpClass::Gemv).launches, 1);
}
