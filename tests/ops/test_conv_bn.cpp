/** @file Convolution and normalisation tests (with gradient checks). */

#include <gtest/gtest.h>

#include <cmath>

#include "base/rng.hh"
#include "ops/batchnorm.hh"
#include "ops/conv2d.hh"

using namespace gnnmark;

namespace {

/** Numerically differentiate sum(conv2d(x, w)) wrt one element. */
float
numericConvGrad(Tensor &pert, const Tensor &input, const Tensor &weight,
                int pad, int64_t flat_index)
{
    const float eps = 1e-2f;
    float *slot = pert.data() + flat_index;
    const float saved = *slot;
    auto total = [&]() {
        Tensor out = ops::conv2d(input, weight, pad);
        double s = 0;
        for (int64_t i = 0; i < out.numel(); ++i)
            s += out.data()[i];
        return s;
    };
    *slot = saved + eps;
    double plus = total();
    *slot = saved - eps;
    double minus = total();
    *slot = saved;
    return static_cast<float>((plus - minus) / (2 * eps));
}

} // namespace

TEST(Conv2d, KnownSmallConvolution)
{
    // 1x1x3x3 input, 1x1x2x2 kernel of ones => sliding window sums.
    Tensor in = Tensor::fromVector({1, 1, 3, 3},
                                   {1, 2, 3, 4, 5, 6, 7, 8, 9});
    Tensor w = Tensor::ones({1, 1, 2, 2});
    Tensor out = ops::conv2d(in, w);
    EXPECT_EQ(out.shape(), (std::vector<int64_t>{1, 1, 2, 2}));
    EXPECT_FLOAT_EQ(out(0, 0, 0, 0), 12.0f);
    EXPECT_FLOAT_EQ(out(0, 0, 1, 1), 28.0f);
}

TEST(Conv2d, PaddingGrowsOutput)
{
    Tensor in = Tensor::ones({1, 1, 3, 3});
    Tensor w = Tensor::ones({1, 1, 3, 3});
    Tensor out = ops::conv2d(in, w, /*pad=*/1);
    EXPECT_EQ(out.size(2), 3);
    EXPECT_FLOAT_EQ(out(0, 0, 1, 1), 9.0f); // centre sees all 9
    EXPECT_FLOAT_EQ(out(0, 0, 0, 0), 4.0f); // corner sees 4
}

TEST(Conv2d, MultiChannelAccumulates)
{
    Rng rng(21);
    Tensor in = Tensor::randn({2, 3, 5, 4}, rng);
    Tensor w = Tensor::randn({4, 3, 2, 2}, rng);
    Tensor out = ops::conv2d(in, w);
    EXPECT_EQ(out.shape(), (std::vector<int64_t>{2, 4, 4, 3}));
    // Cross-check one output element by hand.
    double acc = 0;
    for (int64_t c = 0; c < 3; ++c) {
        for (int64_t r = 0; r < 2; ++r) {
            for (int64_t s = 0; s < 2; ++s)
                acc += in(1, c, 2 + r, 1 + s) * w(3, c, r, s);
        }
    }
    EXPECT_NEAR(out(1, 3, 2, 1), acc, 1e-4);
}

TEST(Conv2d, GradInputMatchesFiniteDifference)
{
    Rng rng(22);
    Tensor in = Tensor::randn({1, 2, 4, 4}, rng);
    Tensor w = Tensor::randn({2, 2, 3, 3}, rng);
    Tensor gout = Tensor::ones({1, 2, 2, 2});
    Tensor gin = ops::conv2dGradInput(gout, w, in, 0);
    for (int64_t idx : {0L, 5L, 17L, 31L}) {
        float numeric = numericConvGrad(in, in, w, 0, idx);
        EXPECT_NEAR(gin.data()[idx], numeric, 5e-2)
            << "at flat index " << idx;
    }
}

TEST(Conv2d, GradWeightMatchesFiniteDifference)
{
    Rng rng(23);
    Tensor in = Tensor::randn({1, 2, 4, 4}, rng);
    Tensor w = Tensor::randn({2, 2, 3, 3}, rng);
    Tensor gout = Tensor::ones({1, 2, 2, 2});
    Tensor gw = ops::conv2dGradWeight(gout, in, w, 0);
    for (int64_t idx : {0L, 7L, 20L, 35L}) {
        float numeric = numericConvGrad(w, in, w, 0, idx);
        EXPECT_NEAR(gw.data()[idx], numeric, 5e-2)
            << "at flat index " << idx;
    }
}

TEST(Conv2dDeath, ChannelMismatchPanics)
{
    Tensor in = Tensor::zeros({1, 3, 4, 4});
    Tensor w = Tensor::zeros({2, 2, 2, 2});
    EXPECT_DEATH(ops::conv2d(in, w), "channel mismatch");
}

TEST(BatchNorm, NormalisesColumns)
{
    Rng rng(24);
    Tensor x = Tensor::randn({200, 5}, rng, 3.0f);
    // Shift each column.
    for (int64_t i = 0; i < 200; ++i) {
        for (int64_t j = 0; j < 5; ++j)
            x(i, j) += static_cast<float>(j) * 10.0f;
    }
    ops::BatchNormState state;
    Tensor y = ops::batchNorm(x, Tensor::ones({5}), Tensor::zeros({5}), 1e-5f,
                              state);
    for (int64_t j = 0; j < 5; ++j) {
        double sum = 0, sq = 0;
        for (int64_t i = 0; i < 200; ++i) {
            sum += y(i, j);
            sq += y(i, j) * y(i, j);
        }
        EXPECT_NEAR(sum / 200, 0.0, 1e-3);
        EXPECT_NEAR(sq / 200, 1.0, 1e-2);
    }
}

TEST(BatchNorm, GammaBetaApplied)
{
    Rng rng(25);
    Tensor x = Tensor::randn({50, 2}, rng);
    Tensor gamma = Tensor::fromVector({2}, {2.0f, 0.5f});
    Tensor beta = Tensor::fromVector({2}, {1.0f, -1.0f});
    ops::BatchNormState state;
    Tensor y = ops::batchNorm(x, gamma, beta, 1e-5f, state);
    double sum0 = 0;
    for (int64_t i = 0; i < 50; ++i)
        sum0 += y(i, 0);
    EXPECT_NEAR(sum0 / 50, 1.0, 1e-3); // beta shifts the mean
}

TEST(BatchNorm, BackwardGradientsSumProperty)
{
    // Sum over batch of dL/dx is ~0 for batch norm (mean subtraction).
    Rng rng(26);
    Tensor x = Tensor::randn({64, 3}, rng);
    ops::BatchNormState state;
    ops::batchNorm(x, Tensor::ones({3}), Tensor::zeros({3}), 1e-5f, state);
    Tensor gout = Tensor::randn({64, 3}, rng);
    Tensor gx, ggamma, gbeta;
    ops::batchNormBackward(gout, Tensor::ones({3}), state, gx, ggamma,
                           gbeta);
    for (int64_t j = 0; j < 3; ++j) {
        double col = 0, gb = 0;
        for (int64_t i = 0; i < 64; ++i) {
            col += gx(i, j);
            gb += gout(i, j);
        }
        EXPECT_NEAR(col, 0.0, 1e-3);
        EXPECT_NEAR(gbeta(j), gb, 1e-3);
    }
}

TEST(LayerNorm, RowStatistics)
{
    Rng rng(28);
    Tensor x = Tensor::randn({6, 128}, rng, 2.0f);
    ops::LayerNormState state;
    Tensor y = ops::layerNorm(x, Tensor::ones({128}), Tensor::zeros({128}),
                              1e-5f, state);
    for (int64_t i = 0; i < 6; ++i) {
        double sum = 0, sq = 0;
        for (int64_t j = 0; j < 128; ++j) {
            sum += y(i, j);
            sq += y(i, j) * y(i, j);
        }
        EXPECT_NEAR(sum / 128, 0.0, 1e-3);
        EXPECT_NEAR(sq / 128, 1.0, 1e-2);
    }
}

TEST(LayerNorm, BackwardRowGradSumsToZero)
{
    Rng rng(29);
    Tensor x = Tensor::randn({8, 32}, rng);
    ops::LayerNormState state;
    ops::layerNorm(x, Tensor::ones({32}), Tensor::zeros({32}), 1e-5f, state);
    Tensor gout = Tensor::randn({8, 32}, rng);
    Tensor gx, ggamma, gbeta;
    ops::layerNormBackward(gout, Tensor::ones({32}), state, gx, ggamma,
                           gbeta);
    for (int64_t i = 0; i < 8; ++i) {
        double row = 0;
        for (int64_t j = 0; j < 32; ++j)
            row += gx(i, j);
        EXPECT_NEAR(row, 0.0, 1e-3);
    }
}
