/** @file Tests for open-loop traffic generation. */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "serve/traffic.hh"

using namespace gnnmark::serve;

namespace {

TrafficConfig
baseConfig()
{
    TrafficConfig cfg;
    cfg.ratePerSec = 2000;
    cfg.durationSec = 1.0;
    cfg.sloSec = 0.01;
    cfg.seed = 9;
    cfg.catalogItems = 100;
    return cfg;
}

void
checkSchedule(const std::vector<Request> &reqs,
              const TrafficConfig &cfg)
{
    for (size_t i = 0; i < reqs.size(); ++i) {
        EXPECT_EQ(reqs[i].id, static_cast<int64_t>(i));
        EXPECT_GE(reqs[i].arrivalSec, 0.0);
        EXPECT_LT(reqs[i].arrivalSec, cfg.durationSec);
        EXPECT_DOUBLE_EQ(reqs[i].deadlineSec,
                         reqs[i].arrivalSec + cfg.sloSec);
        EXPECT_GE(reqs[i].item, 0);
        EXPECT_LT(reqs[i].item, cfg.catalogItems);
        if (i > 0) {
            EXPECT_GE(reqs[i].arrivalSec, reqs[i - 1].arrivalSec);
        }
    }
}

} // namespace

TEST(Traffic, ProcessNamesRoundTrip)
{
    for (ArrivalProcess p :
         {ArrivalProcess::Poisson, ArrivalProcess::Bursty,
          ArrivalProcess::Diurnal}) {
        ArrivalProcess back = ArrivalProcess::Poisson;
        EXPECT_TRUE(parseArrivalProcess(arrivalProcessName(p), back));
        EXPECT_EQ(static_cast<int>(back), static_cast<int>(p));
    }
    ArrivalProcess ignored;
    EXPECT_FALSE(parseArrivalProcess("uniform", ignored));
    EXPECT_FALSE(parseArrivalProcess("", ignored));
}

TEST(Traffic, DeterministicForFixedConfig)
{
    const TrafficConfig cfg = baseConfig();
    const std::vector<Request> a = generateTraffic(cfg);
    const std::vector<Request> b = generateTraffic(cfg);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrivalSec, b[i].arrivalSec);
        EXPECT_EQ(a[i].item, b[i].item);
    }
    TrafficConfig other = cfg;
    other.seed = 10;
    const std::vector<Request> c = generateTraffic(other);
    ASSERT_FALSE(c.empty());
    EXPECT_TRUE(c.size() != a.size() ||
                c[0].arrivalSec != a[0].arrivalSec);
}

TEST(Traffic, PoissonHitsTheMeanRate)
{
    TrafficConfig cfg = baseConfig();
    cfg.durationSec = 4.0;
    const std::vector<Request> reqs = generateTraffic(cfg);
    checkSchedule(reqs, cfg);
    const double expected = cfg.ratePerSec * cfg.durationSec;
    EXPECT_NEAR(static_cast<double>(reqs.size()), expected,
                5.0 * std::sqrt(expected)); // 5 sigma
}

TEST(Traffic, BurstySchedulesStaySortedAndInWindow)
{
    TrafficConfig cfg = baseConfig();
    cfg.process = ArrivalProcess::Bursty;
    // Many short ON/OFF cycles so the realized mean concentrates.
    cfg.burstPeriodSec = 0.1;
    cfg.durationSec = 2.0;
    const std::vector<Request> reqs = generateTraffic(cfg);
    EXPECT_FALSE(reqs.empty());
    checkSchedule(reqs, cfg);
    // The MMPP keeps the long-run mean near the base rate.
    const double expected = cfg.ratePerSec * cfg.durationSec;
    EXPECT_GT(static_cast<double>(reqs.size()), 0.4 * expected);
    EXPECT_LT(static_cast<double>(reqs.size()), 2.5 * expected);
}

TEST(Traffic, DiurnalThinsBelowThePeak)
{
    TrafficConfig cfg = baseConfig();
    cfg.process = ArrivalProcess::Diurnal;
    cfg.durationSec = 4.0;
    cfg.diurnalPeriodSec = 4.0;
    const std::vector<Request> reqs = generateTraffic(cfg);
    EXPECT_FALSE(reqs.empty());
    checkSchedule(reqs, cfg);
    // ratePerSec is the peak; a thinned sinusoid must land below it.
    EXPECT_LT(static_cast<double>(reqs.size()),
              cfg.ratePerSec * cfg.durationSec);
    // First half-period (around the trough) is quieter than the
    // second (around the peak).
    size_t early = 0;
    for (const Request &r : reqs)
        if (r.arrivalSec < 0.5 * cfg.durationSec)
            ++early;
    EXPECT_LT(early, reqs.size() - early);
}

TEST(Traffic, PopularityConcentratesOnTheHead)
{
    TrafficConfig cfg = baseConfig();
    cfg.durationSec = 2.0;
    cfg.popularitySkew = 3.0;
    const std::vector<Request> reqs = generateTraffic(cfg);
    size_t head = 0;
    for (const Request &r : reqs)
        if (r.item < cfg.catalogItems / 10)
            ++head;
    // u^3 puts ~46% of draws in the first decile (0.1^(1/3)).
    EXPECT_GT(static_cast<double>(head),
              0.3 * static_cast<double>(reqs.size()));
}

TEST(TrafficDeath, RejectsNonPositiveKnobs)
{
    TrafficConfig cfg = baseConfig();
    cfg.ratePerSec = 0;
    EXPECT_DEATH(generateTraffic(cfg), "ratePerSec");
    cfg = baseConfig();
    cfg.durationSec = -1;
    EXPECT_DEATH(generateTraffic(cfg), "durationSec");
    cfg = baseConfig();
    cfg.sloSec = 0;
    EXPECT_DEATH(generateTraffic(cfg), "sloSec");
    cfg = baseConfig();
    cfg.catalogItems = 0;
    EXPECT_DEATH(generateTraffic(cfg), "catalogItems");
}
