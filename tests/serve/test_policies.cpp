/**
 * @file
 * Pure-policy tests: backoff schedule and circuit-breaker lifecycle
 * driven by a hand-advanced simulated clock — no event loop involved.
 */

#include <gtest/gtest.h>

#include "serve/policies.hh"

using namespace gnnmark::serve;

TEST(BackoffPolicy, ExponentialUntilCapped)
{
    BackoffPolicy p;
    p.baseDelaySec = 0.002;
    p.multiplier = 2.0;
    p.maxDelaySec = 0.02;
    EXPECT_DOUBLE_EQ(p.delayForRetry(1), 0.002);
    EXPECT_DOUBLE_EQ(p.delayForRetry(2), 0.004);
    EXPECT_DOUBLE_EQ(p.delayForRetry(3), 0.008);
    EXPECT_DOUBLE_EQ(p.delayForRetry(4), 0.016);
    EXPECT_DOUBLE_EQ(p.delayForRetry(5), 0.02); // hits the cap
    EXPECT_DOUBLE_EQ(p.delayForRetry(50), 0.02);
}

TEST(BackoffPolicy, UnitMultiplierStaysFlat)
{
    BackoffPolicy p;
    p.baseDelaySec = 0.005;
    p.multiplier = 1.0;
    p.maxDelaySec = 1.0;
    EXPECT_DOUBLE_EQ(p.delayForRetry(1), 0.005);
    EXPECT_DOUBLE_EQ(p.delayForRetry(9), 0.005);
}

TEST(BackoffPolicy, CanRetryCountsTotalDispatches)
{
    BackoffPolicy p;
    p.maxAttempts = 3;
    EXPECT_TRUE(p.canRetry(1));  // first try failed
    EXPECT_TRUE(p.canRetry(2));  // one retry failed
    EXPECT_FALSE(p.canRetry(3)); // budget exhausted
}

TEST(CircuitBreaker, OpensOnConsecutiveTimeoutsOnly)
{
    BreakerConfig cfg;
    cfg.openAfterTimeouts = 3;
    CircuitBreaker b(cfg);
    b.onTimeout(0.1);
    b.onTimeout(0.2);
    // A success interleaved resets the streak.
    b.onSuccess(0.3);
    b.onTimeout(0.4);
    b.onTimeout(0.5);
    EXPECT_EQ(b.state(0.55), CircuitBreaker::State::Closed);
    EXPECT_TRUE(b.allows(0.55));
    b.onTimeout(0.6);
    EXPECT_EQ(b.state(0.61), CircuitBreaker::State::Open);
    EXPECT_FALSE(b.allows(0.61));
    EXPECT_EQ(b.openCount(), 1);
}

TEST(CircuitBreaker, CooldownAdmitsProbesThenCloses)
{
    BreakerConfig cfg;
    cfg.openAfterTimeouts = 1;
    cfg.cooldownSec = 0.05;
    cfg.halfOpenSuccesses = 2;
    CircuitBreaker b(cfg);
    b.onTimeout(1.0);
    EXPECT_EQ(b.state(1.04), CircuitBreaker::State::Open);
    EXPECT_DOUBLE_EQ(b.probeTime(), 1.05);
    // Cooldown elapsed: half-open admits probe traffic.
    EXPECT_EQ(b.state(1.05), CircuitBreaker::State::HalfOpen);
    EXPECT_TRUE(b.allows(1.05));
    b.onSuccess(1.06);
    EXPECT_EQ(b.state(1.06), CircuitBreaker::State::HalfOpen);
    b.onSuccess(1.07);
    EXPECT_EQ(b.state(1.07), CircuitBreaker::State::Closed);
    EXPECT_EQ(b.openCount(), 1);
}

TEST(CircuitBreaker, ProbeTimeoutReopensAndRestartsCooldown)
{
    BreakerConfig cfg;
    cfg.openAfterTimeouts = 1;
    cfg.cooldownSec = 0.05;
    cfg.halfOpenSuccesses = 2;
    CircuitBreaker b(cfg);
    b.onTimeout(1.0);
    ASSERT_EQ(b.state(1.06), CircuitBreaker::State::HalfOpen);
    b.onSuccess(1.06); // one probe passed...
    b.onTimeout(1.07); // ...but the next one failed
    EXPECT_EQ(b.state(1.08), CircuitBreaker::State::Open);
    EXPECT_EQ(b.openCount(), 2);
    // The cooldown anchors at the re-open, not the original trip.
    EXPECT_DOUBLE_EQ(b.probeTime(), 1.07 + 0.05);
    EXPECT_EQ(b.state(1.12), CircuitBreaker::State::HalfOpen);
    // A full probe streak is needed again from scratch.
    b.onSuccess(1.13);
    b.onSuccess(1.14);
    EXPECT_EQ(b.state(1.14), CircuitBreaker::State::Closed);
}

TEST(CircuitBreaker, StateNames)
{
    EXPECT_STREQ(breakerStateName(CircuitBreaker::State::Closed),
                 "closed");
    EXPECT_STREQ(breakerStateName(CircuitBreaker::State::Open),
                 "open");
    EXPECT_STREQ(breakerStateName(CircuitBreaker::State::HalfOpen),
                 "half_open");
}
