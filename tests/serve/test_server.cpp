/**
 * @file
 * Serving-simulator tests on synthetic cost tables: no model or
 * device is built, so each scenario is a few milliseconds of pure
 * event-loop work with hand-placed faults and exact expectations.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/reports_json.hh"
#include "serve/server.hh"

using namespace gnnmark;
using namespace gnnmark::serve;

namespace {

/** Flat 1 ms/batch table: batching is free, arithmetic is easy. */
BatchCostTable
flatTable()
{
    BatchCostTable t;
    t.sizes = {1};
    t.costs = {0.001};
    return t;
}

ServeOptions
baseOptions()
{
    ServeOptions opt;
    opt.traffic.ratePerSec = 3000;
    opt.traffic.durationSec = 0.2;
    opt.traffic.sloSec = 0.01;
    opt.traffic.seed = 5;
    opt.traffic.catalogItems = 64;
    opt.replicas = 2;
    opt.maxBatch = 8;
    opt.mirrorMetrics = false; // keep the global registry quiet
    return opt;
}

FaultEvent
straggler(int replica, double t, double duration, double magnitude)
{
    FaultEvent e;
    e.kind = FaultKind::Straggler;
    e.timeSec = t;
    e.replica = replica;
    e.durationSec = duration;
    e.magnitude = magnitude;
    return e;
}

FaultEvent
crash(int replica, double t)
{
    FaultEvent e;
    e.kind = FaultKind::ReplicaCrash;
    e.timeSec = t;
    e.replica = replica;
    return e;
}

void
checkConservation(const ServingReport &rep)
{
    EXPECT_EQ(rep.full + rep.fallback + rep.shed + rep.lost,
              rep.offered);
}

} // namespace

TEST(ServingSimulator, HealthyRunServesEverythingInTime)
{
    const ServingReport rep =
        ServingSimulator(flatTable(), baseOptions()).run();
    checkConservation(rep);
    EXPECT_GT(rep.offered, 0);
    EXPECT_EQ(rep.full, rep.offered);
    EXPECT_EQ(rep.sloMet, rep.offered);
    EXPECT_EQ(rep.shed, 0);
    EXPECT_EQ(rep.lost, 0);
    EXPECT_EQ(rep.retries, 0);
    EXPECT_EQ(rep.timeouts, 0);
    EXPECT_EQ(rep.hedgesLaunched, 0);
    EXPECT_GT(rep.goodputPerSec, 0.0);
    EXPECT_GT(rep.meanBatchSize, 1.0);
    EXPECT_LE(rep.p50Ms, rep.p99Ms);
    EXPECT_LE(rep.p99Ms, rep.maxMs);
}

TEST(ServingSimulator, ReportIsByteIdenticalAcrossRuns)
{
    ServeOptions opt = baseOptions();
    opt.faults = FaultPlan({straggler(0, 0.02, 0.1, 8.0)});
    opt.faultScenario = "straggler";
    const ServingReport a = ServingSimulator(flatTable(), opt).run();
    const ServingReport b = ServingSimulator(flatTable(), opt).run();
    EXPECT_EQ(reports::servingJson(a), reports::servingJson(b));
}

TEST(ServingSimulator, HedgeWinsWithoutDoubleCounting)
{
    // One request, replica 0 straggling 50x from t=0: the primary
    // lands on the slow replica, the hedge fires on replica 1 and
    // wins, and the answer is counted exactly once.
    ServeOptions opt = baseOptions();
    opt.traffic.ratePerSec = 10; // a lone arrival in a short window
    opt.traffic.durationSec = 0.15;
    opt.traffic.sloSec = 0.05;
    opt.traffic.seed = 3;
    opt.maxBatch = 1;
    opt.timeoutFactor = 60.0; // keep the slow primary from timing out
    opt.hedgeFactor = 2.0;
    opt.breakerEnabled = false;
    opt.faults = FaultPlan({straggler(0, 0.0, 10.0, 50.0)});
    const ServingReport rep =
        ServingSimulator(flatTable(), opt).run();
    checkConservation(rep);
    ASSERT_GT(rep.offered, 0);
    EXPECT_EQ(rep.full, rep.offered);
    EXPECT_GT(rep.hedgesLaunched, 0);
    EXPECT_EQ(rep.hedgeWins, rep.hedgesLaunched);
    EXPECT_EQ(rep.timeouts, 0);
    // The cancelled primary's work is accounted as cancelled time,
    // not as a completion.
    EXPECT_GT(rep.cancelledSec, 0.0);
    int64_t completed = 0;
    for (const ReplicaReport &r : rep.perReplica)
        completed += r.batchesCompleted;
    EXPECT_EQ(completed, rep.offered); // batch size 1, one win each
}

TEST(ServingSimulator, WholePoolCrashShedsOrLosesEverything)
{
    ServeOptions opt = baseOptions();
    opt.faults = FaultPlan({crash(0, 0.0), crash(1, 0.0)});
    opt.faultScenario = "crash";
    const ServingReport repShed =
        ServingSimulator(flatTable(), opt).run();
    checkConservation(repShed);
    EXPECT_EQ(repShed.full, 0);
    EXPECT_EQ(repShed.sloMet, 0);
    // Admission sees zero healthy replicas and sheds on arrival.
    EXPECT_GT(repShed.shed, 0);

    opt.shedEnabled = false;
    opt.fallbackEnabled = false;
    const ServingReport repNaive =
        ServingSimulator(flatTable(), opt).run();
    checkConservation(repNaive);
    EXPECT_EQ(repNaive.full, 0);
    EXPECT_EQ(repNaive.shed, 0);
    EXPECT_EQ(repNaive.lost, repNaive.offered);
}

TEST(ServingSimulator, CrashMidServiceTimesOutAndRetries)
{
    // Single overloaded replica crashing mid-run: the replica is
    // continuously busy, so the crash lands mid-service — in-flight
    // work never completes (only its timeout fires) and later
    // arrivals are shed as infeasible.
    ServeOptions opt = baseOptions();
    opt.replicas = 1;
    opt.traffic.ratePerSec = 12000;
    opt.traffic.durationSec = 0.1;
    opt.faults = FaultPlan({crash(0, 0.05)});
    opt.faultScenario = "crash";
    const ServingReport rep =
        ServingSimulator(flatTable(), opt).run();
    checkConservation(rep);
    EXPECT_GT(rep.full, 0);            // served before the crash
    EXPECT_LT(rep.full, rep.offered);  // nothing after it
    EXPECT_GT(rep.timeouts, 0);        // the in-flight batch died
    EXPECT_GT(rep.shed + rep.lost + rep.fallback, 0);
}

TEST(ServingSimulator, BreakerSidelinesTheStragglerReplica)
{
    // Load high enough that dispatch regularly spills past replica 0
    // onto the straggler, whose 40x service time then times out.
    ServeOptions opt = baseOptions();
    opt.traffic.ratePerSec = 12000;
    opt.traffic.durationSec = 0.3;
    opt.hedgeEnabled = false; // isolate the breaker's contribution
    opt.faults = FaultPlan({straggler(1, 0.02, 0.25, 40.0)});
    opt.faultScenario = "straggler";
    const ServingReport rep =
        ServingSimulator(flatTable(), opt).run();
    checkConservation(rep);
    EXPECT_GT(rep.breakerOpens, 0);
    ASSERT_EQ(rep.perReplica.size(), 2u);
    // Only the straggler's breaker trips.
    EXPECT_EQ(rep.perReplica[0].breakerOpens, 0);
    EXPECT_GT(rep.perReplica[1].breakerOpens, 0);
    EXPECT_GT(rep.perReplica[1].timeouts, 0);
}

TEST(ServingSimulator, FallbackServesFromTheCache)
{
    // A tiny catalogue makes cache hits near-certain once warm, so
    // requests degraded during the straggler window become fallbacks
    // rather than losses.
    ServeOptions opt = baseOptions();
    opt.traffic.catalogItems = 8;
    opt.traffic.durationSec = 0.3;
    opt.faults = FaultPlan({straggler(0, 0.02, 0.2, 40.0),
                            straggler(1, 0.02, 0.2, 40.0)});
    opt.faultScenario = "straggler";
    const ServingReport rep =
        ServingSimulator(flatTable(), opt).run();
    checkConservation(rep);
    EXPECT_GT(rep.fallback, 0);
    EXPECT_GT(rep.cacheHits, 0);
    EXPECT_GT(rep.cacheHitRate, 0.0);

    ServeOptions naive = opt;
    naive.fallbackEnabled = false;
    const ServingReport repNaive =
        ServingSimulator(flatTable(), naive).run();
    checkConservation(repNaive);
    EXPECT_EQ(repNaive.fallback, 0);
    EXPECT_EQ(repNaive.cacheHits, 0);
}

TEST(ServingSimulator, SheddingBoundsTailLatencyUnderOverload)
{
    // 4x overload on one replica: with shedding the served tail
    // stays near the SLO; without it the queue grows and p99 blows
    // past the deadline.
    ServeOptions opt = baseOptions();
    opt.replicas = 1;
    opt.maxBatch = 4;
    opt.traffic.ratePerSec = 16000; // capacity is 4000/s
    opt.traffic.durationSec = 0.1;
    opt.hedgeEnabled = false;
    opt.fallbackEnabled = false;
    const ServingReport shed =
        ServingSimulator(flatTable(), opt).run();
    checkConservation(shed);
    EXPECT_GT(shed.shed, 0);
    EXPECT_LE(shed.p99Ms, 2.0 * opt.traffic.sloSec * 1e3);

    ServeOptions naive = opt;
    naive.shedEnabled = false;
    const ServingReport open =
        ServingSimulator(flatTable(), naive).run();
    checkConservation(open);
    EXPECT_EQ(open.shed, 0);
    EXPECT_GT(open.p99Ms, shed.p99Ms);
    EXPECT_GE(shed.sloMet, open.sloMet);
}

TEST(ServingSimulator, CostTableInterpolatesAndExtrapolates)
{
    BatchCostTable t;
    t.sizes = {1, 4, 8};
    t.costs = {0.001, 0.002, 0.004};
    EXPECT_DOUBLE_EQ(t.costSec(1), 0.001);
    EXPECT_DOUBLE_EQ(t.costSec(4), 0.002);
    // Linear between anchors.
    EXPECT_NEAR(t.costSec(2), 0.001 + (0.002 - 0.001) / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(t.costSec(6), 0.003);
    // Beyond the last anchor: final segment's slope continues.
    EXPECT_NEAR(t.costSec(12), 0.004 + 4.0 * 0.0005, 1e-12);
}

TEST(ServingSimulatorDeath, RejectsBrokenConfigs)
{
    EXPECT_DEATH(ServingSimulator(BatchCostTable{}, baseOptions()),
                 "cost table");
    ServeOptions opt = baseOptions();
    opt.replicas = 0;
    EXPECT_DEATH(ServingSimulator(flatTable(), opt), "replica");
    opt = baseOptions();
    opt.maxBatch = 0;
    EXPECT_DEATH(ServingSimulator(flatTable(), opt), "maxBatch");
}
