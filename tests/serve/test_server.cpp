/**
 * @file
 * Serving-simulator tests on synthetic cost tables: no model or
 * device is built, so each scenario is a few milliseconds of pure
 * event-loop work with hand-placed faults and exact expectations.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/reports_json.hh"
#include "serve/server.hh"

using namespace gnnmark;
using namespace gnnmark::serve;

namespace {

/** Flat 1 ms/batch table: batching is free, arithmetic is easy. */
BatchCostTable
flatTable()
{
    BatchCostTable t;
    t.sizes = {1};
    t.costs = {0.001};
    return t;
}

ServeOptions
baseOptions()
{
    ServeOptions opt;
    opt.traffic.ratePerSec = 3000;
    opt.traffic.durationSec = 0.2;
    opt.traffic.sloSec = 0.01;
    opt.traffic.seed = 5;
    opt.traffic.catalogItems = 64;
    opt.replicas = 2;
    opt.maxBatch = 8;
    opt.mirrorMetrics = false; // keep the global registry quiet
    return opt;
}

FaultEvent
straggler(int replica, double t, double duration, double magnitude)
{
    FaultEvent e;
    e.kind = FaultKind::Straggler;
    e.timeSec = t;
    e.replica = replica;
    e.durationSec = duration;
    e.magnitude = magnitude;
    return e;
}

FaultEvent
crash(int replica, double t)
{
    FaultEvent e;
    e.kind = FaultKind::ReplicaCrash;
    e.timeSec = t;
    e.replica = replica;
    return e;
}

void
checkConservation(const ServingReport &rep)
{
    EXPECT_EQ(rep.full + rep.fallback + rep.shed + rep.lost,
              rep.offered);
}

} // namespace

TEST(ServingSimulator, HealthyRunServesEverythingInTime)
{
    const ServingReport rep =
        ServingSimulator(flatTable(), baseOptions()).run();
    checkConservation(rep);
    EXPECT_GT(rep.offered, 0);
    EXPECT_EQ(rep.full, rep.offered);
    EXPECT_EQ(rep.sloMet, rep.offered);
    EXPECT_EQ(rep.shed, 0);
    EXPECT_EQ(rep.lost, 0);
    EXPECT_EQ(rep.retries, 0);
    EXPECT_EQ(rep.timeouts, 0);
    EXPECT_EQ(rep.hedgesLaunched, 0);
    EXPECT_GT(rep.goodputPerSec, 0.0);
    EXPECT_GT(rep.meanBatchSize, 1.0);
    EXPECT_LE(rep.p50Ms, rep.p99Ms);
    EXPECT_LE(rep.p99Ms, rep.maxMs);
}

TEST(ServingSimulator, ReportIsByteIdenticalAcrossRuns)
{
    ServeOptions opt = baseOptions();
    opt.faults = FaultPlan({straggler(0, 0.02, 0.1, 8.0)});
    opt.faultScenario = "straggler";
    const ServingReport a = ServingSimulator(flatTable(), opt).run();
    const ServingReport b = ServingSimulator(flatTable(), opt).run();
    EXPECT_EQ(reports::servingJson(a), reports::servingJson(b));
}

TEST(ServingSimulator, HedgeWinsWithoutDoubleCounting)
{
    // One request, replica 0 straggling 50x from t=0: the primary
    // lands on the slow replica, the hedge fires on replica 1 and
    // wins, and the answer is counted exactly once.
    ServeOptions opt = baseOptions();
    opt.traffic.ratePerSec = 10; // a lone arrival in a short window
    opt.traffic.durationSec = 0.15;
    opt.traffic.sloSec = 0.05;
    opt.traffic.seed = 3;
    opt.maxBatch = 1;
    opt.timeoutFactor = 60.0; // keep the slow primary from timing out
    opt.hedgeFactor = 2.0;
    opt.breakerEnabled = false;
    opt.faults = FaultPlan({straggler(0, 0.0, 10.0, 50.0)});
    const ServingReport rep =
        ServingSimulator(flatTable(), opt).run();
    checkConservation(rep);
    ASSERT_GT(rep.offered, 0);
    EXPECT_EQ(rep.full, rep.offered);
    EXPECT_GT(rep.hedgesLaunched, 0);
    EXPECT_EQ(rep.hedgeWins, rep.hedgesLaunched);
    EXPECT_EQ(rep.timeouts, 0);
    // The cancelled primary's work is accounted as cancelled time,
    // not as a completion.
    EXPECT_GT(rep.cancelledSec, 0.0);
    int64_t completed = 0;
    for (const ReplicaReport &r : rep.perReplica)
        completed += r.batchesCompleted;
    EXPECT_EQ(completed, rep.offered); // batch size 1, one win each
}

TEST(ServingSimulator, WholePoolCrashShedsOrLosesEverything)
{
    ServeOptions opt = baseOptions();
    opt.faults = FaultPlan({crash(0, 0.0), crash(1, 0.0)});
    opt.faultScenario = "crash";
    const ServingReport repShed =
        ServingSimulator(flatTable(), opt).run();
    checkConservation(repShed);
    EXPECT_EQ(repShed.full, 0);
    EXPECT_EQ(repShed.sloMet, 0);
    // Admission sees zero healthy replicas and sheds on arrival.
    EXPECT_GT(repShed.shed, 0);

    opt.shedEnabled = false;
    opt.fallbackEnabled = false;
    const ServingReport repNaive =
        ServingSimulator(flatTable(), opt).run();
    checkConservation(repNaive);
    EXPECT_EQ(repNaive.full, 0);
    EXPECT_EQ(repNaive.shed, 0);
    EXPECT_EQ(repNaive.lost, repNaive.offered);
}

TEST(ServingSimulator, CrashMidServiceTimesOutAndRetries)
{
    // Single overloaded replica crashing mid-run: the replica is
    // continuously busy, so the crash lands mid-service — in-flight
    // work never completes (only its timeout fires) and later
    // arrivals are shed as infeasible.
    ServeOptions opt = baseOptions();
    opt.replicas = 1;
    opt.traffic.ratePerSec = 12000;
    opt.traffic.durationSec = 0.1;
    opt.faults = FaultPlan({crash(0, 0.05)});
    opt.faultScenario = "crash";
    const ServingReport rep =
        ServingSimulator(flatTable(), opt).run();
    checkConservation(rep);
    EXPECT_GT(rep.full, 0);            // served before the crash
    EXPECT_LT(rep.full, rep.offered);  // nothing after it
    EXPECT_GT(rep.timeouts, 0);        // the in-flight batch died
    EXPECT_GT(rep.shed + rep.lost + rep.fallback, 0);
}

TEST(ServingSimulator, BreakerSidelinesTheStragglerReplica)
{
    // Load high enough that dispatch regularly spills past replica 0
    // onto the straggler, whose 40x service time then times out.
    ServeOptions opt = baseOptions();
    opt.traffic.ratePerSec = 12000;
    opt.traffic.durationSec = 0.3;
    opt.hedgeEnabled = false; // isolate the breaker's contribution
    opt.faults = FaultPlan({straggler(1, 0.02, 0.25, 40.0)});
    opt.faultScenario = "straggler";
    const ServingReport rep =
        ServingSimulator(flatTable(), opt).run();
    checkConservation(rep);
    EXPECT_GT(rep.breakerOpens, 0);
    ASSERT_EQ(rep.perReplica.size(), 2u);
    // Only the straggler's breaker trips.
    EXPECT_EQ(rep.perReplica[0].breakerOpens, 0);
    EXPECT_GT(rep.perReplica[1].breakerOpens, 0);
    EXPECT_GT(rep.perReplica[1].timeouts, 0);
}

TEST(ServingSimulator, FallbackServesFromTheCache)
{
    // A tiny catalogue makes cache hits near-certain once warm, so
    // requests degraded during the straggler window become fallbacks
    // rather than losses.
    ServeOptions opt = baseOptions();
    opt.traffic.catalogItems = 8;
    opt.traffic.durationSec = 0.3;
    opt.faults = FaultPlan({straggler(0, 0.02, 0.2, 40.0),
                            straggler(1, 0.02, 0.2, 40.0)});
    opt.faultScenario = "straggler";
    const ServingReport rep =
        ServingSimulator(flatTable(), opt).run();
    checkConservation(rep);
    EXPECT_GT(rep.fallback, 0);
    EXPECT_GT(rep.cacheHits, 0);
    EXPECT_GT(rep.cacheHitRate, 0.0);

    ServeOptions naive = opt;
    naive.fallbackEnabled = false;
    const ServingReport repNaive =
        ServingSimulator(flatTable(), naive).run();
    checkConservation(repNaive);
    EXPECT_EQ(repNaive.fallback, 0);
    EXPECT_EQ(repNaive.cacheHits, 0);
}

TEST(ServingSimulator, SheddingBoundsTailLatencyUnderOverload)
{
    // 4x overload on one replica: with shedding the served tail
    // stays near the SLO; without it the queue grows and p99 blows
    // past the deadline.
    ServeOptions opt = baseOptions();
    opt.replicas = 1;
    opt.maxBatch = 4;
    opt.traffic.ratePerSec = 16000; // capacity is 4000/s
    opt.traffic.durationSec = 0.1;
    opt.hedgeEnabled = false;
    opt.fallbackEnabled = false;
    const ServingReport shed =
        ServingSimulator(flatTable(), opt).run();
    checkConservation(shed);
    EXPECT_GT(shed.shed, 0);
    EXPECT_LE(shed.p99Ms, 2.0 * opt.traffic.sloSec * 1e3);

    ServeOptions naive = opt;
    naive.shedEnabled = false;
    const ServingReport open =
        ServingSimulator(flatTable(), naive).run();
    checkConservation(open);
    EXPECT_EQ(open.shed, 0);
    EXPECT_GT(open.p99Ms, shed.p99Ms);
    EXPECT_GE(shed.sloMet, open.sloMet);
}

TEST(ServingSimulator, CostTableInterpolatesAndExtrapolates)
{
    BatchCostTable t;
    t.sizes = {1, 4, 8};
    t.costs = {0.001, 0.002, 0.004};
    EXPECT_DOUBLE_EQ(t.costSec(1), 0.001);
    EXPECT_DOUBLE_EQ(t.costSec(4), 0.002);
    // Linear between anchors.
    EXPECT_NEAR(t.costSec(2), 0.001 + (0.002 - 0.001) / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(t.costSec(6), 0.003);
    // Beyond the last anchor: final segment's slope continues.
    EXPECT_NEAR(t.costSec(12), 0.004 + 4.0 * 0.0005, 1e-12);
}

TEST(ServingSimulatorDeath, RejectsBrokenConfigs)
{
    EXPECT_DEATH(ServingSimulator(BatchCostTable{}, baseOptions()),
                 "cost table");
    ServeOptions opt = baseOptions();
    opt.replicas = 0;
    EXPECT_DEATH(ServingSimulator(flatTable(), opt), "replica");
    opt = baseOptions();
    opt.maxBatch = 0;
    EXPECT_DEATH(ServingSimulator(flatTable(), opt), "maxBatch");
}

TEST(ServingSimulator, WindowedTimelineConservesPerWindowCounts)
{
    ServeOptions opt = baseOptions();
    opt.windowSec = 0.05;
    const ServingReport rep =
        ServingSimulator(flatTable(), opt).run();
    ASSERT_FALSE(rep.windows.empty());
    EXPECT_DOUBLE_EQ(rep.windowSec, 0.05);

    // Outcomes are attributed to the arrival window, so each window
    // conserves exactly and the whole series sums to the run totals.
    int64_t offered = 0, full = 0, shed = 0, lost = 0, fallback = 0;
    for (const ServingWindow &w : rep.windows) {
        EXPECT_EQ(w.full + w.fallback + w.shed + w.lost, w.offered)
            << "window " << w.index;
        EXPECT_DOUBLE_EQ(w.startSec, w.index * rep.windowSec);
        offered += w.offered;
        full += w.full;
        shed += w.shed;
        lost += w.lost;
        fallback += w.fallback;
    }
    EXPECT_EQ(offered, rep.offered);
    EXPECT_EQ(full, rep.full);
    EXPECT_EQ(shed, rep.shed);
    EXPECT_EQ(lost, rep.lost);
    EXPECT_EQ(fallback, rep.fallback);
}

TEST(ServingSimulator, WindowedTimelineIsStableAcrossRuns)
{
    ServeOptions opt = baseOptions();
    opt.windowSec = 0.02;
    opt.traceSampleEvery = 8;
    opt.faults = FaultPlan({straggler(0, 0.05, 0.1, 6.0)});
    const std::string a = reports::servingJson(
        ServingSimulator(flatTable(), opt).run());
    const std::string b = reports::servingJson(
        ServingSimulator(flatTable(), opt).run());
    EXPECT_EQ(a, b);
}

TEST(ServingSimulator, StragglerFaultRaisesBurnAlertOverlappingFault)
{
    ServeOptions opt = baseOptions();
    opt.traffic.durationSec = 0.4;
    opt.windowSec = 0.02;
    opt.sloTarget = 0.99;
    opt.traffic.sloSec = 0.005;
    // The whole pool 10x slow over [0.1, 0.3): every request in the
    // fault interval blows the 5 ms SLO, so the burn-rate monitor
    // must raise at least one alert overlapping it.
    opt.faults = FaultPlan({straggler(0, 0.1, 0.2, 10.0),
                            straggler(1, 0.1, 0.2, 10.0)});
    const ServingReport rep =
        ServingSimulator(flatTable(), opt).run();
    ASSERT_FALSE(rep.alerts.empty());
    bool overlaps = false;
    for (const ServingAlert &a : rep.alerts)
        overlaps = overlaps || (a.startSec < 0.3 && a.endSec > 0.1);
    EXPECT_TRUE(overlaps);
    EXPECT_GT(rep.budgetConsumed, 1.0);
}

TEST(ServingSimulator, HealthyRunRaisesNoAlerts)
{
    ServeOptions opt = baseOptions();
    opt.windowSec = 0.02;
    const ServingReport rep =
        ServingSimulator(flatTable(), opt).run();
    EXPECT_TRUE(rep.alerts.empty());
    // Every request meets the SLO, so goodput accounts for them all.
    int64_t sloMet = 0;
    for (const ServingWindow &w : rep.windows)
        sloMet += w.sloMet;
    EXPECT_EQ(sloMet, rep.offered);
}

TEST(ServingSimulator, RequestTracesFollowSamplingAndExemplars)
{
    ServeOptions opt = baseOptions();
    opt.traceSampleEvery = 16;
    opt.traffic.durationSec = 0.3;
    // Straggler + overload produce shed/timeout exemplars.
    opt.traffic.ratePerSec = 6000;
    opt.faults = FaultPlan({straggler(0, 0.05, 0.2, 8.0)});
    ServingSimulator sim(flatTable(), opt);
    const ServingReport rep = sim.run();
    const std::vector<obs::RequestTrace> traces =
        sim.drainRequestTraces();
    ASSERT_FALSE(traces.empty());
    EXPECT_EQ(rep.tracedRequests,
              static_cast<int64_t>(traces.size()));

    bool sawExemplar = false;
    for (size_t i = 0; i < traces.size(); ++i) {
        if (i > 0)
            EXPECT_LT(traces[i - 1].id, traces[i].id);
        const obs::RequestTrace &t = traces[i];
        if (!t.exemplar)
            EXPECT_EQ(t.id % opt.traceSampleEvery, 0);
        sawExemplar = sawExemplar || t.exemplar;
        ASSERT_FALSE(t.spans.empty());
        EXPECT_EQ(t.spans.front().name, "arrival");
        for (const obs::RequestSpan &s : t.spans)
            EXPECT_GE(s.endSec, s.startSec);
    }
    EXPECT_TRUE(sawExemplar);

    // A second drain returns nothing.
    EXPECT_TRUE(sim.drainRequestTraces().empty());
}

TEST(ServingSimulator, TimelineAndTracingStayOffByDefault)
{
    ServingSimulator sim(flatTable(), baseOptions());
    const ServingReport rep = sim.run();
    EXPECT_TRUE(rep.windows.empty());
    EXPECT_TRUE(rep.alerts.empty());
    EXPECT_DOUBLE_EQ(rep.windowSec, 0);
    EXPECT_EQ(rep.traceSampleEvery, 0);
    EXPECT_TRUE(sim.drainRequestTraces().empty());
}
