/** @file Tests for the bounded LRU embedding cache. */

#include <gtest/gtest.h>

#include "serve/cache.hh"

using namespace gnnmark::serve;

TEST(EmbeddingCache, MissThenInsertThenHit)
{
    EmbeddingCache c(4);
    float v = -1;
    EXPECT_FALSE(c.lookup(7, &v));
    c.insert(7, 3.5f);
    EXPECT_TRUE(c.lookup(7, &v));
    EXPECT_FLOAT_EQ(v, 3.5f);
    EXPECT_EQ(c.hits(), 1);
    EXPECT_EQ(c.misses(), 1);
    EXPECT_DOUBLE_EQ(c.hitRate(), 0.5);
}

TEST(EmbeddingCache, EvictsLeastRecentlyUsed)
{
    EmbeddingCache c(2);
    c.insert(1, 1.0f);
    c.insert(2, 2.0f);
    // Touch 1 so 2 becomes the LRU entry.
    EXPECT_TRUE(c.lookup(1));
    c.insert(3, 3.0f);
    EXPECT_EQ(c.size(), 2u);
    EXPECT_EQ(c.evictions(), 1);
    EXPECT_TRUE(c.lookup(1));
    EXPECT_FALSE(c.lookup(2)); // evicted
    EXPECT_TRUE(c.lookup(3));
}

TEST(EmbeddingCache, InsertRefreshesValueWithoutEviction)
{
    EmbeddingCache c(2);
    c.insert(1, 1.0f);
    c.insert(2, 2.0f);
    c.insert(1, 9.0f); // refresh, not a new entry
    EXPECT_EQ(c.size(), 2u);
    EXPECT_EQ(c.evictions(), 0);
    float v = 0;
    EXPECT_TRUE(c.lookup(1, &v));
    EXPECT_FLOAT_EQ(v, 9.0f);
    // The refresh also bumped recency: 2 is now the victim.
    c.insert(3, 3.0f);
    EXPECT_FALSE(c.lookup(2));
}

TEST(EmbeddingCache, HitRateZeroWhenNeverQueried)
{
    EmbeddingCache c(2);
    EXPECT_DOUBLE_EQ(c.hitRate(), 0.0);
    c.insert(1, 1.0f);
    EXPECT_DOUBLE_EQ(c.hitRate(), 0.0);
}

TEST(EmbeddingCache, NullValueOutIsAccepted)
{
    EmbeddingCache c(1);
    c.insert(5, 2.0f);
    EXPECT_TRUE(c.lookup(5, nullptr));
    EXPECT_FALSE(c.lookup(6, nullptr));
}
