/** @file HeteroGraph and GraphBatch tests. */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "graph/batch.hh"
#include "graph/generators.hh"
#include "graph/hetero_graph.hh"

using namespace gnnmark;

TEST(HeteroGraph, TypesAndRelations)
{
    HeteroGraph g;
    int user = g.addNodeType("user", 10);
    int item = g.addNodeType("item", 5);
    EXPECT_EQ(g.numNodeTypes(), 2);
    EXPECT_EQ(g.typeName(user), "user");
    EXPECT_EQ(g.typeCount(item), 5);

    Relation rel{"clicked", user, item, {{0, 1}, {0, 2}, {9, 4}}};
    int rid = g.addRelation(rel);
    EXPECT_EQ(g.numRelations(), 1);
    EXPECT_EQ(g.relation(rid).edges.size(), 3u);
}

TEST(HeteroGraph, RelationCsrShape)
{
    HeteroGraph g;
    int a = g.addNodeType("a", 4);
    int b = g.addNodeType("b", 3);
    g.addRelation(Relation{"r", a, b, {{0, 0}, {0, 2}, {3, 1}}});
    CsrMatrix m = g.relationCsr(0);
    m.validate();
    EXPECT_EQ(m.rows, 4);
    EXPECT_EQ(m.cols, 3);
    EXPECT_EQ(m.nnz(), 3);
}

TEST(HeteroGraph, AdjListMatchesEdges)
{
    HeteroGraph g;
    int a = g.addNodeType("a", 3);
    int b = g.addNodeType("b", 3);
    g.addRelation(Relation{"r", a, b, {{1, 0}, {1, 2}, {2, 1}}});
    auto adj = g.relationAdjList(0);
    ASSERT_EQ(adj.size(), 3u);
    EXPECT_TRUE(adj[0].empty());
    EXPECT_EQ(adj[1].size(), 2u);
    EXPECT_EQ(adj[2].size(), 1u);
}

TEST(HeteroGraphDeath, BadEndpointsPanic)
{
    HeteroGraph g;
    int a = g.addNodeType("a", 2);
    EXPECT_DEATH(g.addRelation(Relation{"r", a, a, {{0, 5}}}),
                 "out of range");
    EXPECT_DEATH(g.addRelation(Relation{"r", a, 7, {}}),
                 "bad destination type");
}

TEST(GraphBatch, DisjointUnionStructure)
{
    Rng rng(3);
    auto mols = gen::molecules(rng, 4, 5, 8, 6);
    GraphBatch batch = GraphBatch::build(mols);

    int64_t nodes = 0, edges = 0;
    for (const auto &m : mols) {
        nodes += m.graph.numNodes();
        edges += m.graph.numEdges();
    }
    EXPECT_EQ(batch.graph.numNodes(), nodes);
    EXPECT_EQ(batch.graph.numEdges(), edges);
    EXPECT_EQ(batch.numGraphs(), 4);
    EXPECT_EQ(batch.nodeOffsets.front(), 0);
    EXPECT_EQ(batch.nodeOffsets.back(), nodes);

    // No edge crosses a graph boundary.
    for (size_t e = 0; e < batch.graph.edgeSrc().size(); ++e) {
        int32_t s = batch.graph.edgeSrc()[e];
        int32_t d = batch.graph.edgeDst()[e];
        int gs = 0, gd = 0;
        for (size_t g = 0; g + 1 < batch.nodeOffsets.size(); ++g) {
            if (s >= batch.nodeOffsets[g] && s < batch.nodeOffsets[g + 1])
                gs = static_cast<int>(g);
            if (d >= batch.nodeOffsets[g] && d < batch.nodeOffsets[g + 1])
                gd = static_cast<int>(g);
        }
        EXPECT_EQ(gs, gd);
    }
}

TEST(GraphBatch, FeaturesStackedInOrder)
{
    Rng rng(4);
    auto mols = gen::molecules(rng, 3, 5, 8, 6);
    GraphBatch batch = GraphBatch::build(mols);
    int64_t row = 0;
    for (const auto &m : mols) {
        for (int64_t v = 0; v < m.graph.numNodes(); ++v, ++row) {
            for (int64_t f = 0; f < 6; ++f)
                EXPECT_FLOAT_EQ(batch.features(row, f), m.features(v, f));
        }
    }
    EXPECT_EQ(batch.labels.size(), 3u);
    EXPECT_EQ(batch.targets.size(), 3u);
}

TEST(GraphBatchDeath, InconsistentFeatureWidthPanics)
{
    Rng rng(5);
    auto mols = gen::molecules(rng, 2, 5, 8, 6);
    mols[1].features = Tensor::zeros({mols[1].graph.numNodes(), 4});
    EXPECT_DEATH(GraphBatch::build(mols), "inconsistent features");
}
