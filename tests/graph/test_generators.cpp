/** @file Synthetic dataset generator tests. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/generators.hh"

using namespace gnnmark;

TEST(Generators, CitationShapesAndClasses)
{
    Rng rng(1);
    auto data = gen::citation(rng, 300, 200, 5);
    EXPECT_EQ(data.graph.numNodes(), 300);
    EXPECT_EQ(data.features.shape(), (std::vector<int64_t>{300, 200}));
    EXPECT_EQ(data.labels.size(), 300u);
    EXPECT_EQ(data.numClasses, 5);
    for (int32_t label : data.labels) {
        EXPECT_GE(label, 0);
        EXPECT_LT(label, 5);
    }
}

TEST(Generators, CitationFeaturesSparse)
{
    Rng rng(2);
    auto data = gen::citation(rng, 200, 500, 4, /*density=*/0.02);
    double zf = data.features.zeroFraction();
    EXPECT_GT(zf, 0.95);
    EXPECT_LT(zf, 0.999);
}

TEST(Generators, CitationHomophily)
{
    Rng rng(3);
    auto data = gen::citation(rng, 400, 100, 4, 0.02, 4.0, 0.9);
    int64_t intra = 0, total = 0;
    for (size_t e = 0; e < data.graph.edgeSrc().size(); ++e) {
        intra += data.labels[data.graph.edgeSrc()[e]] ==
                 data.labels[data.graph.edgeDst()[e]];
        ++total;
    }
    // Strong homophily should give far more intra-class edges than
    // the 25% a random pairing would.
    EXPECT_GT(static_cast<double>(intra) / total, 0.6);
}

TEST(Generators, CoraPresetShape)
{
    Rng rng(4);
    auto data = gen::cora(rng, 1.0);
    EXPECT_EQ(data.graph.numNodes(), 2708);
    EXPECT_EQ(data.features.size(1), 1433);
    EXPECT_EQ(data.numClasses, 7);
}

TEST(Generators, PowerLawIsHeavyTailed)
{
    Rng rng(5);
    Graph g = gen::powerLaw(rng, 2000, 3);
    int32_t max_deg = 0;
    double mean_deg = 0;
    for (int64_t v = 0; v < g.numNodes(); ++v) {
        max_deg = std::max(max_deg, g.degree(v));
        mean_deg += g.degree(v);
    }
    mean_deg /= g.numNodes();
    // Preferential attachment: hub degree far above the mean.
    EXPECT_GT(max_deg, mean_deg * 8);
}

TEST(Generators, RecsysZeroFractionControlled)
{
    Rng rng(6);
    auto mvl = gen::bipartiteRecsys(rng, 200, 150, 3000, 64, 0.22);
    EXPECT_NEAR(mvl.itemFeatures.zeroFraction(), 0.22, 0.02);
    auto nwp = gen::bipartiteRecsys(rng, 200, 150, 3000, 640, 0.11);
    EXPECT_NEAR(nwp.itemFeatures.zeroFraction(), 0.11, 0.02);
    // NWP features 10x wider, as in the paper.
    EXPECT_EQ(nwp.itemFeatures.size(1), 10 * mvl.itemFeatures.size(1));
}

TEST(Generators, RecsysRelationsConsistent)
{
    Rng rng(7);
    auto data = gen::bipartiteRecsys(rng, 50, 40, 500, 16, 0.2);
    const Relation &ui = data.graph.relation(data.relUserItem);
    const Relation &iu = data.graph.relation(data.relItemUser);
    EXPECT_EQ(ui.edges.size(), iu.edges.size());
    EXPECT_GT(ui.edges.size(), 100u);
}

TEST(Generators, TrafficSeriesShapeAndMissing)
{
    Rng rng(8);
    auto data = gen::traffic(rng, 100, 400);
    EXPECT_EQ(data.series.shape(), (std::vector<int64_t>{400, 100}));
    EXPECT_GE(data.sensors.numEdges(), 200); // at least the ring
    // ~18% missing readings.
    EXPECT_NEAR(data.series.zeroFraction(), 0.18, 0.03);
}

TEST(Generators, TrafficIsPeriodic)
{
    Rng rng(9);
    auto data = gen::traffic(rng, 10, 384);
    // Autocorrelation at the period (48) beats a random offset (17).
    auto corr = [&](int64_t lag) {
        double s = 0;
        int64_t cnt = 0;
        for (int64_t n = 0; n < 10; ++n) {
            for (int64_t t = 0; t + lag < 384; ++t) {
                if (data.series(t, n) != 0.0f &&
                    data.series(t + lag, n) != 0.0f) {
                    s += data.series(t, n) * data.series(t + lag, n);
                    ++cnt;
                }
            }
        }
        return s / cnt;
    };
    EXPECT_GT(corr(48), corr(17) + 0.01);
}

TEST(Generators, MoleculesWellFormed)
{
    Rng rng(10);
    auto mols = gen::molecules(rng, 50, 10, 24, 9);
    EXPECT_EQ(mols.size(), 50u);
    int positives = 0;
    for (const auto &m : mols) {
        EXPECT_GE(m.graph.numNodes(), 10);
        EXPECT_LE(m.graph.numNodes(), 24);
        EXPECT_EQ(m.features.size(1), 9);
        EXPECT_GE(m.graph.numEdges(),
                  2 * (m.graph.numNodes() - 1)); // connected backbone
        positives += m.label;
    }
    // Labels are learnable but not degenerate.
    EXPECT_GT(positives, 5);
    EXPECT_LT(positives, 45);
}

TEST(Generators, ProteinsBiggerThanMolecules)
{
    Rng rng(11);
    auto prot = gen::proteins(rng, 20);
    for (const auto &p : prot) {
        EXPECT_GE(p.graph.numNodes(), 20);
        EXPECT_EQ(p.features.size(1), 3);
    }
}

TEST(Generators, KnowledgeGraphSamplesConnected)
{
    Rng rng(12);
    auto kg = gen::knowledgeGraph(rng, 300, 40, 500, 12, 64);
    EXPECT_EQ(kg.entities.numNodes(), 300);
    EXPECT_EQ(kg.entitySets.size(), 40u);
    EXPECT_EQ(kg.targetTokens.size(), 40u);
    for (const auto &sent : kg.targetTokens) {
        EXPECT_EQ(sent.size(), 12u);
        for (int32_t tok : sent) {
            EXPECT_GE(tok, 0);
            EXPECT_LT(tok, 500);
        }
    }
    for (const auto &ents : kg.entitySets) {
        EXPECT_FALSE(ents.empty());
        EXPECT_TRUE(std::is_sorted(ents.begin(), ents.end()));
    }
}

TEST(Generators, SentimentTreesValidAndLabeled)
{
    Rng rng(13);
    auto trees = gen::sentimentTrees(rng, 30, 100, 3, 15, 5);
    EXPECT_EQ(trees.size(), 30u);
    for (const auto &t : trees) {
        t.validate();
        EXPECT_GE(t.label, 0);
        EXPECT_LT(t.label, 5);
        int leaves = 0;
        for (const auto &kids : t.children)
            leaves += kids.empty();
        EXPECT_GE(leaves, 3);
        EXPECT_LE(leaves, 15);
        // Binary internal nodes: n = 2*leaves - 1.
        EXPECT_EQ(t.numNodes(), 2 * leaves - 1);
    }
}

TEST(Generators, DeterministicGivenSeed)
{
    Rng a(99), b(99);
    auto da = gen::citation(a, 100, 50, 3);
    auto db = gen::citation(b, 100, 50, 3);
    EXPECT_EQ(da.graph.numEdges(), db.graph.numEdges());
    EXPECT_EQ(da.labels, db.labels);
    EXPECT_TRUE(allClose(da.features, db.features));
}
