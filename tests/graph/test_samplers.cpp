/** @file Neighbour / random-walk sampler tests. */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.hh"
#include "graph/samplers.hh"

using namespace gnnmark;

namespace {

void
checkBlockInvariants(const SampledBlock &block)
{
    // Offsets form a CSR over destinations.
    ASSERT_EQ(block.offsets.size(), block.dstNodes.size() + 1);
    EXPECT_EQ(block.offsets.front(), 0);
    EXPECT_EQ(block.offsets.back(),
              static_cast<int32_t>(block.neighbors.size()));
    for (size_t i = 0; i + 1 < block.offsets.size(); ++i)
        EXPECT_LE(block.offsets[i], block.offsets[i + 1]);
    // Neighbour entries index into srcNodes.
    for (int32_t p : block.neighbors) {
        EXPECT_GE(p, 0);
        EXPECT_LT(p, static_cast<int32_t>(block.srcNodes.size()));
    }
    // srcNodes sorted unique.
    EXPECT_TRUE(std::is_sorted(block.srcNodes.begin(),
                               block.srcNodes.end()));
    EXPECT_EQ(std::adjacent_find(block.srcNodes.begin(),
                                 block.srcNodes.end()),
              block.srcNodes.end());
    // Destinations are present among the sources (self features).
    for (int32_t d : block.dstNodes) {
        EXPECT_TRUE(std::binary_search(block.srcNodes.begin(),
                                       block.srcNodes.end(), d));
    }
    EXPECT_EQ(block.weights.size(), block.neighbors.size());
}

} // namespace

TEST(NeighborSampler, RespectsFanout)
{
    Rng rng(61);
    Graph g = gen::powerLaw(rng, 500, 4);
    NeighborSampler sampler(g, /*fanout=*/5);
    std::vector<int32_t> seeds = {0, 10, 20, 30};
    SampledBlock block = sampler.sample(seeds, rng);
    checkBlockInvariants(block);
    for (size_t i = 0; i < seeds.size(); ++i)
        EXPECT_LE(block.offsets[i + 1] - block.offsets[i], 5);
}

TEST(NeighborSampler, SampledNeighborsAreRealNeighbors)
{
    Rng rng(62);
    Graph g = gen::powerLaw(rng, 300, 3);
    NeighborSampler sampler(g, 4);
    std::vector<int32_t> seeds = {5, 6, 7};
    SampledBlock block = sampler.sample(seeds, rng);
    for (size_t i = 0; i < seeds.size(); ++i) {
        auto [begin, end] = g.neighbors(seeds[i]);
        std::set<int32_t> actual(begin, end);
        for (int32_t e = block.offsets[i]; e < block.offsets[i + 1];
             ++e) {
            int32_t global = block.srcNodes[block.neighbors[e]];
            EXPECT_TRUE(actual.count(global))
                << global << " is not a neighbor of " << seeds[i];
        }
    }
}

TEST(NeighborSampler, WeightsSumToOnePerDestination)
{
    Rng rng(63);
    Graph g = gen::powerLaw(rng, 300, 3);
    NeighborSampler sampler(g, 6);
    SampledBlock block = sampler.sample({1, 2, 3, 4}, rng);
    for (size_t i = 0; i + 1 < block.offsets.size(); ++i) {
        if (block.offsets[i] == block.offsets[i + 1])
            continue;
        double sum = 0;
        for (int32_t e = block.offsets[i]; e < block.offsets[i + 1]; ++e)
            sum += block.weights[e];
        EXPECT_NEAR(sum, 1.0, 1e-5);
    }
}

TEST(RandomWalkSampler, ProducesWeightedTopT)
{
    Rng rng(64);
    auto data = gen::bipartiteRecsys(rng, 100, 80, 1500, 8, 0.2);
    RandomWalkSampler sampler(
        data.graph.relationAdjList(data.relItemUser),
        data.graph.relationAdjList(data.relUserItem),
        /*walks=*/10, /*walk_length=*/2, /*top_t=*/4);
    std::vector<int32_t> seeds = {0, 1, 2, 3, 4, 5};
    SampledBlock block = sampler.sample(seeds, rng);
    checkBlockInvariants(block);
    for (size_t i = 0; i < seeds.size(); ++i) {
        int32_t count = block.offsets[i + 1] - block.offsets[i];
        EXPECT_LE(count, 4);
        if (count > 0) {
            double sum = 0;
            float prev = 2.0f;
            for (int32_t e = block.offsets[i];
                 e < block.offsets[i + 1]; ++e) {
                sum += block.weights[e];
                // Importance weights come out most-visited first.
                EXPECT_LE(block.weights[e], prev + 1e-6f);
                prev = block.weights[e];
            }
            EXPECT_NEAR(sum, 1.0, 1e-5);
        }
    }
}

TEST(RandomWalkSampler, NeighborsAreItems)
{
    Rng rng(65);
    auto data = gen::bipartiteRecsys(rng, 60, 40, 800, 8, 0.2);
    RandomWalkSampler sampler(
        data.graph.relationAdjList(data.relItemUser),
        data.graph.relationAdjList(data.relUserItem), 8, 2, 3);
    SampledBlock block = sampler.sample({0, 1, 2}, rng);
    for (int32_t s : block.srcNodes) {
        EXPECT_GE(s, 0);
        EXPECT_LT(s, 40);
    }
}

TEST(SamplerDeath, BadParamsPanic)
{
    Rng rng(66);
    Graph g(10, {});
    EXPECT_DEATH(NeighborSampler(g, 0), "fanout");
}
