/** @file Graph (CSR) structure tests. */

#include <gtest/gtest.h>

#include <cmath>

#include "graph/graph.hh"

using namespace gnnmark;

TEST(Graph, BuildsCsrFromEdges)
{
    Graph g(4, {{0, 1}, {0, 2}, {2, 3}});
    EXPECT_EQ(g.numNodes(), 4);
    EXPECT_EQ(g.numEdges(), 3);
    EXPECT_EQ(g.degree(0), 2);
    EXPECT_EQ(g.degree(1), 0);
    auto [begin, end] = g.neighbors(0);
    EXPECT_EQ(end - begin, 2);
    EXPECT_EQ(begin[0], 1);
    EXPECT_EQ(begin[1], 2);
}

TEST(Graph, DeduplicatesEdges)
{
    Graph g(3, {{0, 1}, {0, 1}, {1, 2}});
    EXPECT_EQ(g.numEdges(), 2);
}

TEST(Graph, SymmetricAddsReverses)
{
    Graph g(3, {{0, 1}}, /*symmetric=*/true);
    EXPECT_EQ(g.numEdges(), 2);
    EXPECT_EQ(g.degree(1), 1);
}

TEST(Graph, CooAlignedWithCsr)
{
    Graph g(4, {{2, 0}, {0, 3}, {2, 3}});
    for (size_t e = 0; e < g.edgeSrc().size(); ++e) {
        int32_t s = g.edgeSrc()[e];
        EXPECT_GE(static_cast<int32_t>(e), g.rowPtr()[s]);
        EXPECT_LT(static_cast<int32_t>(e), g.rowPtr()[s + 1]);
        EXPECT_EQ(g.colIdx()[e], g.edgeDst()[e]);
    }
}

TEST(Graph, TransposeFlipsEdges)
{
    Graph g(3, {{0, 1}, {0, 2}});
    Graph t = g.transposed();
    EXPECT_EQ(t.degree(0), 0);
    EXPECT_EQ(t.degree(1), 1);
    EXPECT_EQ(t.degree(2), 1);
    // Double transpose is the original.
    Graph tt = t.transposed();
    EXPECT_EQ(tt.edgeSrc(), g.edgeSrc());
    EXPECT_EQ(tt.edgeDst(), g.edgeDst());
}

TEST(Graph, SelfLoopsAdded)
{
    Graph g(3, {{0, 1}});
    Graph wl = g.withSelfLoops();
    EXPECT_EQ(wl.numEdges(), 4);
    for (int64_t v = 0; v < 3; ++v) {
        auto [begin, end] = wl.neighbors(v);
        bool has_self = false;
        for (const int32_t *p = begin; p != end; ++p)
            has_self |= *p == v;
        EXPECT_TRUE(has_self);
    }
}

TEST(Graph, AdjacencyCsrValid)
{
    Graph g(5, {{0, 1}, {1, 2}, {3, 4}}, true);
    CsrMatrix m = g.adjacency().csr();
    m.validate();
    EXPECT_EQ(m.nnz(), g.numEdges());
    for (float v : m.vals)
        EXPECT_FLOAT_EQ(v, 1.0f);
}

TEST(Graph, AdjacencyFormatParameter)
{
    Graph g(12, {{0, 1}, {1, 2}, {2, 3}, {4, 9}, {10, 11}}, true);
    const SparseMatrix csr = g.adjacency();
    EXPECT_EQ(csr.format(), SparseFormat::Csr);
    const SparseMatrix coo = g.adjacency(SparseFormat::Coo);
    EXPECT_EQ(coo.format(), SparseFormat::Coo);
    const SparseMatrix bell = g.adjacency(SparseFormat::BlockedEll);
    EXPECT_EQ(bell.format(), SparseFormat::BlockedEll);
    // All formats carry the same entries in the same order.
    EXPECT_EQ(coo.toCsr().colIdx, csr.csr().colIdx);
    EXPECT_EQ(bell.toCsr().vals, csr.csr().vals);
    // The normalised variants honour the parameter too.
    EXPECT_EQ(g.gcnNormAdjacency(SparseFormat::Coo).format(),
              SparseFormat::Coo);
    EXPECT_EQ(g.meanAdjacency(SparseFormat::BlockedEll).format(),
              SparseFormat::BlockedEll);
}

TEST(Graph, GcnNormSymmetricValues)
{
    Graph g(3, {{0, 1}}, true);
    CsrMatrix m = g.gcnNormAdjacency().csr();
    m.validate();
    // With self loops, degrees: node0=2, node1=2, node2=1.
    // Edge (0,1) value = 1/sqrt(2*2) = 0.5.
    bool found = false;
    for (int32_t e = m.rowPtr[0]; e < m.rowPtr[1]; ++e) {
        if (m.colIdx[e] == 1) {
            EXPECT_NEAR(m.vals[e], 0.5f, 1e-6f);
            found = true;
        }
    }
    EXPECT_TRUE(found);
    // Self loop on isolated node 2: 1/sqrt(1*1) = 1.
    for (int32_t e = m.rowPtr[2]; e < m.rowPtr[3]; ++e) {
        if (m.colIdx[e] == 2)
            EXPECT_NEAR(m.vals[e], 1.0f, 1e-6f);
    }
}

TEST(Graph, MeanAdjacencyRowsSumToOne)
{
    Graph g(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}});
    CsrMatrix m = g.meanAdjacency().csr();
    for (int64_t r = 0; r < 4; ++r) {
        double sum = 0;
        for (int32_t e = m.rowPtr[r]; e < m.rowPtr[r + 1]; ++e)
            sum += m.vals[e];
        if (g.degree(r) > 0)
            EXPECT_NEAR(sum, 1.0, 1e-6);
    }
}

TEST(GraphDeath, EdgeOutOfRangePanics)
{
    EXPECT_DEATH(Graph(2, {{0, 2}}), "out of range");
}

TEST(GraphDeath, NeighborsOutOfRangePanics)
{
    Graph g(2, {});
    EXPECT_DEATH(g.neighbors(5), "out of range");
}
