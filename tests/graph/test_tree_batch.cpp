/** @file Tree validation and level-wise batching tests. */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "graph/generators.hh"
#include "graph/tree.hh"

using namespace gnnmark;

namespace {

/** left/right leaves under one root: ((t0 t1) t2). */
Tree
smallTree()
{
    Tree t;
    t.children = {{}, {}, {0, 1}, {}, {2, 3}};
    t.token = {10, 11, -1, 12, -1};
    t.root = 4;
    t.label = 1;
    return t;
}

} // namespace

TEST(Tree, ValidatesGoodTree)
{
    smallTree().validate();
}

TEST(TreeDeath, CatchesLeafWithoutToken)
{
    Tree t = smallTree();
    t.token[0] = -1;
    EXPECT_DEATH(t.validate(), "no token");
}

TEST(TreeDeath, CatchesTwoParents)
{
    Tree t = smallTree();
    t.children[4] = {2, 0}; // node 0 now has parents 2 and 4
    EXPECT_DEATH(t.validate(), "parents");
}

TEST(TreeBatch, LevelsRespectDependencies)
{
    TreeBatch b = TreeBatch::build({smallTree()});
    EXPECT_EQ(b.totalNodes, 5);
    // Level 0: leaves 0,1,3. Level 1: node 2. Level 2: node 4.
    ASSERT_EQ(b.levels.size(), 3u);
    EXPECT_EQ(b.levels[0].nodes.size(), 3u);
    EXPECT_EQ(b.levels[1].nodes.size(), 1u);
    EXPECT_EQ(b.levels[2].nodes.size(), 1u);
    // Children of level-1 node are level-0 nodes 0 and 1.
    EXPECT_EQ(b.levels[1].childIds,
              (std::vector<int32_t>{0, 1}));
}

TEST(TreeBatch, OffsetsConsistent)
{
    TreeBatch b = TreeBatch::build({smallTree(), smallTree()});
    EXPECT_EQ(b.totalNodes, 10);
    EXPECT_EQ(b.roots.size(), 2u);
    EXPECT_EQ(b.roots[1], 9);
    for (const auto &level : b.levels) {
        ASSERT_EQ(level.childOffsets.size(), level.nodes.size() + 1);
        EXPECT_EQ(level.childOffsets.back(),
                  static_cast<int32_t>(level.childIds.size()));
        for (size_t i = 0; i + 1 < level.childOffsets.size(); ++i)
            EXPECT_LE(level.childOffsets[i], level.childOffsets[i + 1]);
    }
}

TEST(TreeBatch, TokensCarriedOver)
{
    TreeBatch b = TreeBatch::build({smallTree()});
    EXPECT_EQ(b.tokens[0], 10);
    EXPECT_EQ(b.tokens[3], 12);
    EXPECT_EQ(b.tokens[4], -1);
}

/** Property over random trees: every child sits in a lower level. */
class TreeBatchSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(TreeBatchSweep, ChildrenAlwaysInEarlierLevels)
{
    Rng rng(GetParam());
    auto trees = gen::sentimentTrees(rng, 20, 50, 2, 12);
    TreeBatch b = TreeBatch::build(trees);

    std::vector<int> level_of(b.totalNodes, -1);
    for (size_t li = 0; li < b.levels.size(); ++li) {
        for (int32_t v : b.levels[li].nodes)
            level_of[v] = static_cast<int>(li);
    }
    // Every node appears in exactly one level.
    for (int64_t v = 0; v < b.totalNodes; ++v)
        EXPECT_GE(level_of[v], 0);
    for (size_t li = 0; li < b.levels.size(); ++li) {
        for (int32_t c : b.levels[li].childIds)
            EXPECT_LT(level_of[c], static_cast<int>(li));
    }
    // Leaves (level 0) carry tokens; internal nodes never do.
    for (int32_t v : b.levels[0].nodes)
        EXPECT_GE(b.tokens[v], 0);
    for (size_t li = 1; li < b.levels.size(); ++li) {
        for (int32_t v : b.levels[li].nodes)
            EXPECT_EQ(b.tokens[v], -1);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeBatchSweep,
                         ::testing::Values(1, 2, 3, 4, 5));
