/** @file Workload-level tests: every suite member sets up, trains,
 *  emits kernels, and (for the robustly-learnable ones) reduces its
 *  loss. Kept at small scale so the whole file runs in seconds. */

#include <gtest/gtest.h>

#include <cmath>

#include "core/suite.hh"
#include "models/kgnn.hh"
#include "ops/exec_context.hh"
#include "profiler/profiler.hh"

using namespace gnnmark;

namespace {

WorkloadConfig
smallConfig()
{
    WorkloadConfig cfg;
    cfg.seed = 1234;
    cfg.scale = 0.25;
    return cfg;
}

} // namespace

/** Parameterised over every workload in the registry. */
class WorkloadSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadSweep, MetadataComplete)
{
    auto wl = BenchmarkSuite::create(GetParam());
    EXPECT_EQ(wl->name(), GetParam());
    EXPECT_FALSE(wl->modelName().empty());
    EXPECT_FALSE(wl->framework().empty());
    EXPECT_FALSE(wl->domain().empty());
    EXPECT_FALSE(wl->datasetName().empty());
    EXPECT_FALSE(wl->graphType().empty());
}

TEST_P(WorkloadSweep, TrainsAndEmitsKernels)
{
    auto wl = BenchmarkSuite::create(GetParam());
    wl->setup(smallConfig());
    EXPECT_GT(wl->iterationsPerEpoch(), 0);

    GpuDevice dev;
    Profiler prof;
    dev.addObserver(&prof);
    {
        ContextGuard guard(&dev);
        float loss1 = wl->trainIteration();
        float loss2 = wl->trainIteration();
        EXPECT_TRUE(std::isfinite(loss1));
        EXPECT_TRUE(std::isfinite(loss2));
    }
    EXPECT_GT(prof.totalLaunches(), 10);
    EXPECT_GT(prof.totalKernelTimeSec(), 0);
    EXPECT_GT(prof.totalTransferBytes(), 0); // inputs were uploaded
    EXPECT_GT(wl->parameterBytes(), 0);
}

TEST_P(WorkloadSweep, DeterministicAcrossRuns)
{
    auto run = [&]() {
        auto wl = BenchmarkSuite::create(GetParam());
        wl->setup(smallConfig());
        float loss = 0;
        for (int i = 0; i < 2; ++i)
            loss = wl->trainIteration();
        return loss;
    };
    EXPECT_FLOAT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(
    Suite, WorkloadSweep,
    ::testing::ValuesIn(BenchmarkSuite::workloadNames()),
    [](const auto &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

namespace {

/** Average loss of the first and last `k` of `n` iterations. */
std::pair<float, float>
lossTrend(Workload &wl, int n, int k)
{
    std::vector<float> losses;
    for (int i = 0; i < n; ++i)
        losses.push_back(wl.trainIteration());
    float head = 0, tail = 0;
    for (int i = 0; i < k; ++i) {
        head += losses[i] / k;
        tail += losses[n - 1 - i] / k;
    }
    return {head, tail};
}

} // namespace

TEST(WorkloadLearning, DeepGcnLossDecreases)
{
    auto wl = BenchmarkSuite::create("DGCN");
    wl->setup(smallConfig());
    auto [head, tail] = lossTrend(*wl, 20, 3);
    EXPECT_LT(tail, head * 0.8f);
}

TEST(WorkloadLearning, KgnnLossDecreases)
{
    auto wl = BenchmarkSuite::create("KGNNL");
    wl->setup(smallConfig());
    auto [head, tail] = lossTrend(*wl, 16, 3);
    EXPECT_LT(tail, head * 0.9f);
}

TEST(WorkloadLearning, GraphWriterLossDecreases)
{
    auto wl = BenchmarkSuite::create("GW");
    wl->setup(smallConfig());
    auto [head, tail] = lossTrend(*wl, 10, 2);
    EXPECT_LT(tail, head);
}

TEST(WorkloadLearning, ArgaLossDecreases)
{
    auto wl = BenchmarkSuite::create("ARGA");
    wl->setup(smallConfig());
    auto [head, tail] = lossTrend(*wl, 8, 2);
    EXPECT_LT(tail, head);
}

TEST(WorkloadLearning, TreeLstmLossDecreases)
{
    auto wl = BenchmarkSuite::create("TLSTM");
    wl->setup(smallConfig());
    auto [head, tail] = lossTrend(*wl, 24, 4);
    EXPECT_LT(tail, head);
}

TEST(WorkloadBehaviour, PinSageSamplerNotDdpCompatible)
{
    auto psage = BenchmarkSuite::create("PSAGE-MVL");
    EXPECT_FALSE(psage->samplerDdpCompatible());
    EXPECT_TRUE(psage->supportsMultiGpu());
    auto arga = BenchmarkSuite::create("ARGA");
    EXPECT_FALSE(arga->supportsMultiGpu());
    auto dgcn = BenchmarkSuite::create("DGCN");
    EXPECT_TRUE(dgcn->samplerDdpCompatible());
}

TEST(WorkloadBehaviour, NwpFeaturesWiderMeansMoreTransfer)
{
    WorkloadConfig cfg = smallConfig();
    auto measure = [&](const std::string &name) {
        auto wl = BenchmarkSuite::create(name);
        wl->setup(cfg);
        GpuDevice dev;
        Profiler prof;
        dev.addObserver(&prof);
        ContextGuard guard(&dev);
        wl->trainIteration();
        return prof.totalTransferBytes();
    };
    // 10x wider item features show up in the uploads.
    EXPECT_GT(measure("PSAGE-NWP"), 3 * measure("PSAGE-MVL"));
}

TEST(KgnnSetGraphs, TwoSetsMatchUndirectedEdges)
{
    Graph g(4, {{0, 1}, {1, 2}, {2, 3}, {0, 2}}, true);
    std::vector<int32_t> ids(4, 0);
    SetGraph two = buildTwoSets(g, ids);
    EXPECT_EQ(two.numSets(), 4); // undirected edge count
    for (int64_t s = 0; s < two.numSets(); ++s)
        EXPECT_LT(two.memberA[s], two.memberB[s]);
}

TEST(KgnnSetGraphs, ThreeSetsShareTwoSets)
{
    Graph g(3, {{0, 1}, {1, 2}}, true);
    std::vector<int32_t> ids(3, 0);
    SetGraph two = buildTwoSets(g, ids);
    SetGraph three = buildThreeSets(two, 4);
    // The path 0-1-2 forms exactly one connected triple.
    EXPECT_EQ(three.numSets(), 1);
}
