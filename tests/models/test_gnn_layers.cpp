/** @file Unit tests for the reusable GNN layer blocks. */

#include <gtest/gtest.h>

#include "graph/generators.hh"
#include "graph/samplers.hh"
#include "models/deepgcn.hh"
#include "models/gnn_layers.hh"
#include "models/stgcn.hh"

using namespace gnnmark;

TEST(GcnLayer, ShapeAndSelfLoopPropagation)
{
    Rng rng(81);
    Graph g(4, {{0, 1}, {1, 2}}, /*symmetric=*/true);
    SparseMatrix adj = g.gcnNormAdjacency();
    GcnLayer layer(3, 5, rng);
    Variable x(Tensor::randn({4, 3}, rng));
    Variable y = layer.forward(adj, adj, x);
    EXPECT_EQ(y.value().shape(), (std::vector<int64_t>{4, 5}));
    // Node 3 is isolated but has a self loop: output is nonzero.
    double mag = 0;
    for (int64_t f = 0; f < 5; ++f)
        mag += std::abs(y.value()(3, f));
    EXPECT_GT(mag, 1e-6);
}

TEST(GcnLayer, GradientsFlowToWeights)
{
    Rng rng(82);
    Graph g(6, {{0, 1}, {2, 3}, {4, 5}}, true);
    SparseMatrix adj = g.gcnNormAdjacency();
    GcnLayer layer(4, 4, rng);
    Variable x(Tensor::randn({6, 4}, rng));
    ag::sumAll(layer.forward(adj, adj, x)).backward();
    for (const Variable &p : layer.parameters())
        EXPECT_TRUE(p.hasGrad());
}

TEST(SageLayer, AggregatesWeightedNeighbours)
{
    Rng rng(83);
    Graph g = gen::powerLaw(rng, 64, 3);
    NeighborSampler sampler(g, 4);
    std::vector<int32_t> seeds = {0, 1, 2, 3};
    SampledBlock block = sampler.sample(seeds, rng);

    SageLayer layer(8, 8, rng);
    Variable feats = Variable::param(Tensor::randn(
        {static_cast<int64_t>(block.srcNodes.size()), 8}, rng));
    std::vector<int32_t> dst_index;
    for (int32_t d : block.dstNodes) {
        dst_index.push_back(static_cast<int32_t>(
            std::lower_bound(block.srcNodes.begin(),
                             block.srcNodes.end(), d) -
            block.srcNodes.begin()));
    }
    Variable out = layer.forward(block, feats, dst_index);
    EXPECT_EQ(out.value().shape(), (std::vector<int64_t>{4, 8}));
    // ReLU output is non-negative.
    for (int64_t i = 0; i < out.value().numel(); ++i)
        EXPECT_GE(out.value().data()[i], 0.0f);
    ag::sumAll(out).backward();
    EXPECT_TRUE(feats.hasGrad());
}

TEST(StConvBlock, TemporalShrinkage)
{
    Rng rng(84);
    Graph g = gen::powerLaw(rng, 20, 2);
    SparseMatrix adj = g.gcnNormAdjacency();
    StConvBlock block(1, 4, 6, rng);
    Variable x(Tensor::randn({2, 1, 12, 20}, rng));
    Variable y = block.forward(x, adj, adj);
    // Two Kt=3 temporal convolutions shrink T by 4.
    EXPECT_EQ(y.value().shape(), (std::vector<int64_t>{2, 6, 8, 20}));
}

TEST(DeepGcnLayer, ResidualPreservesShapeAndGrads)
{
    Rng rng(85);
    Graph g = gen::powerLaw(rng, 30, 3);
    Tensor inv_deg = Tensor::zeros({30});
    for (int64_t v = 0; v < 30; ++v) {
        inv_deg(v) =
            1.0f / static_cast<float>(std::max(1, g.degree(v)));
    }
    DeepGcnLayer layer(16, rng);
    Variable h = Variable::param(Tensor::randn({30, 16}, rng));
    Variable out =
        layer.forward(h, g.edgeSrc(), g.edgeDst(), inv_deg);
    EXPECT_EQ(out.value().shape(), h.value().shape());
    ag::sumAll(out).backward();
    EXPECT_TRUE(h.hasGrad());
    for (const Variable &p : layer.parameters())
        EXPECT_TRUE(p.hasGrad());
}

TEST(DeepGcnLayer, SoftmaxAggregationIsConvexForIdenticalMessages)
{
    // With a single incoming edge, the softmax weight is exactly 1, so
    // the aggregate equals the (relu'd, eps-shifted) message.
    Rng rng(86);
    Graph g(2, {{0, 1}});
    Tensor inv_deg = Tensor::ones({2});
    DeepGcnLayer layer(4, rng);
    Variable h(Tensor::randn({2, 4}, rng));
    Variable out = layer.forward(h, g.edgeSrc(), g.edgeDst(), inv_deg);
    EXPECT_EQ(out.value().shape(), (std::vector<int64_t>{2, 4}));
}
