/** @file Tests for warp trace recording and coalescing. */

#include <gtest/gtest.h>

#include "sim/warp_trace.hh"

using namespace gnnmark;

namespace {

WarpTraceSink
makeSink(WarpTrace &t, int cap = 1024)
{
    return WarpTraceSink(t, cap, 128);
}

} // namespace

TEST(WarpTrace, AluCountsAndFlops)
{
    WarpTrace t;
    auto sink = makeSink(t);
    sink.fp32(2);
    sink.fma(3);
    sink.sfu(1);
    sink.int32(4);
    sink.misc(1);
    EXPECT_EQ(t.counts.fp32, 6u); // fp32 + fma + sfu
    EXPECT_EQ(t.counts.int32, 4u);
    EXPECT_EQ(t.counts.misc, 1u);
    // flops: 2*32 + 3*64 + 1*32
    EXPECT_DOUBLE_EQ(t.counts.flops, 64 + 192 + 32);
    EXPECT_DOUBLE_EQ(t.counts.intOps, 4 * 32);
}

TEST(WarpTrace, CoalescedLoadIsOneLine)
{
    WarpTrace t;
    auto sink = makeSink(t);
    sink.loadCoalesced(0, 4); // 32 lanes * 4B = 128B aligned
    ASSERT_FALSE(t.ops.empty());
    const TraceOp &op = t.ops.back();
    EXPECT_EQ(op.kind, InstrKind::Load);
    EXPECT_EQ(op.lineCount, 1);
    EXPECT_EQ(op.minLines, 1);
    EXPECT_FALSE(op.divergent());
}

TEST(WarpTrace, MisalignedCoalescedLoadSpansTwoLinesAndDiverges)
{
    WarpTrace t;
    auto sink = makeSink(t);
    sink.loadCoalesced(64, 4); // crosses a 128B boundary
    const TraceOp &op = t.ops.back();
    EXPECT_EQ(op.lineCount, 2);
    EXPECT_EQ(op.minLines, 1);
    EXPECT_TRUE(op.divergent());
}

TEST(WarpTrace, ScatteredLoadHitsManyLines)
{
    WarpTrace t;
    auto sink = makeSink(t);
    uint64_t addrs[32];
    for (int i = 0; i < 32; ++i)
        addrs[i] = static_cast<uint64_t>(i) * 4096;
    sink.loadGlobal(addrs, 32, 4);
    const TraceOp &op = t.ops.back();
    EXPECT_EQ(op.lineCount, 32);
    EXPECT_TRUE(op.divergent());
}

TEST(WarpTrace, DuplicateLaneAddressesCoalesce)
{
    WarpTrace t;
    auto sink = makeSink(t);
    uint64_t addrs[32];
    for (int i = 0; i < 32; ++i)
        addrs[i] = 256; // all lanes same address
    sink.loadGlobal(addrs, 32, 4);
    EXPECT_EQ(t.ops.back().lineCount, 1);
}

TEST(WarpTrace, MemOpsCarryImplicitAddressInts)
{
    WarpTrace t;
    auto sink = makeSink(t);
    uint64_t before = t.counts.int32;
    sink.loadCoalesced(0, 4);
    EXPECT_GT(t.counts.int32, before);
}

TEST(WarpTrace, StoreAndAtomicKinds)
{
    WarpTrace t;
    auto sink = makeSink(t);
    sink.storeCoalesced(0, 4);
    uint64_t a = 512;
    sink.atomicGlobal(&a, 1, 4);
    EXPECT_EQ(t.counts.stores, 2u);
    bool saw_store = false, saw_atomic = false;
    for (const auto &op : t.ops) {
        saw_store |= op.kind == InstrKind::Store;
        saw_atomic |= op.kind == InstrKind::Atomic;
    }
    EXPECT_TRUE(saw_store);
    EXPECT_TRUE(saw_atomic);
}

TEST(WarpTrace, CapStopsRecordingButKeepsCounting)
{
    WarpTrace t;
    WarpTraceSink sink(t, 10, 128);
    for (int i = 0; i < 50; ++i)
        sink.fp32(1);
    EXPECT_EQ(t.recordedInstrs, 10u);
    EXPECT_EQ(t.counts.fp32, 50u);
    EXPECT_TRUE(sink.full());
    EXPECT_NEAR(t.extrapolationFactor(), 5.0, 1e-9);
}

TEST(WarpTrace, ScaleRemainderMultipliesCounts)
{
    WarpTrace t;
    auto sink = makeSink(t);
    sink.fma(10);
    sink.int32(4);
    sink.scaleRemainder(3.0);
    EXPECT_EQ(t.counts.fp32, 30u);
    EXPECT_EQ(t.counts.int32, 12u);
    EXPECT_DOUBLE_EQ(t.counts.flops, 10 * 64 * 3.0);
}

TEST(WarpTrace, PartialWarpLanes)
{
    WarpTrace t;
    auto sink = makeSink(t);
    sink.loadCoalesced(0, 4, 8); // 8 active lanes, 32B
    const TraceOp &op = t.ops.back();
    EXPECT_EQ(op.lineCount, 1);
    EXPECT_EQ(op.minLines, 1);
}

TEST(WarpTrace, WideLanesNeedMoreMinLines)
{
    WarpTrace t;
    auto sink = makeSink(t);
    // 32 lanes x 8 bytes = 256B => 2 lines even when aligned.
    uint64_t addrs[32];
    for (int i = 0; i < 32; ++i)
        addrs[i] = static_cast<uint64_t>(i) * 8;
    sink.loadGlobal(addrs, 32, 8);
    const TraceOp &op = t.ops.back();
    EXPECT_EQ(op.lineCount, 2);
    EXPECT_EQ(op.minLines, 2);
    EXPECT_FALSE(op.divergent());
}

TEST(WarpTraceDeath, BadLaneCountPanics)
{
    WarpTrace t;
    auto sink = makeSink(t);
    uint64_t a = 0;
    EXPECT_DEATH(sink.loadGlobal(&a, 0, 4), "lanes out of range");
    EXPECT_DEATH(sink.loadGlobal(&a, 33, 4), "lanes out of range");
}
