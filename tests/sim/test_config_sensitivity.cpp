/** @file Property tests: the timing model responds monotonically to
 *  its architectural knobs (the sensitivity directions the
 *  arch-sensitivity bench reports). */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "sim/gpu_device.hh"

using namespace gnnmark;

namespace {

/** Streaming pointer-chase-ish kernel touching fresh lines. */
KernelDesc
memoryKernel(int64_t blocks)
{
    KernelDesc desc;
    desc.name = "mem";
    desc.blocks = blocks;
    desc.warpsPerBlock = 8;
    desc.loadDepFraction = 1.0;
    desc.trace = [](int64_t warp_id, WarpTraceSink &sink) {
        for (int i = 0; i < 128; ++i) {
            sink.loadCoalesced(
                static_cast<uint64_t>(warp_id) * 16384 + i * 128, 4);
            sink.fp32(1);
        }
    };
    return desc;
}

/** Compute-dense kernel (saturates the fp ports). */
KernelDesc
computeKernel(int64_t blocks)
{
    KernelDesc desc;
    desc.name = "fma";
    desc.blocks = blocks;
    desc.warpsPerBlock = 8;
    desc.aluIlp = 4.0;
    desc.trace = [](int64_t, WarpTraceSink &sink) { sink.fma(1024); };
    return desc;
}

double
timeWith(const GpuConfig &cfg, const KernelDesc &desc)
{
    GpuDevice dev(cfg, 9);
    return dev.launch(desc).timeSec;
}

} // namespace

TEST(ConfigSensitivity, DramLatencySlowsMemoryBoundKernels)
{
    GpuConfig slow = GpuConfig::v100();
    slow.dramLatency = 900;
    EXPECT_GT(timeWith(slow, memoryKernel(64)),
              timeWith(GpuConfig::v100(), memoryKernel(64)) * 1.3);
}

TEST(ConfigSensitivity, FpPortsBoundComputeKernels)
{
    GpuConfig wide = GpuConfig::v100();
    wide.fp32PortsPerCycle = 4;
    EXPECT_LT(timeWith(wide, computeKernel(640)),
              timeWith(GpuConfig::v100(), computeKernel(640)) * 0.75);
}

TEST(ConfigSensitivity, MoreSmsShortenBigGrids)
{
    GpuConfig big = GpuConfig::v100();
    big.numSms = 160;
    // 40 waves' worth of blocks on the V100.
    EXPECT_LT(timeWith(big, computeKernel(80 * 8 * 8)),
              timeWith(GpuConfig::v100(), computeKernel(80 * 8 * 8)) *
                  0.7);
}

TEST(ConfigSensitivity, A100PresetIsFasterOnMemoryBoundWork)
{
    EXPECT_LT(timeWith(GpuConfig::a100(), memoryKernel(2048)),
              timeWith(GpuConfig::v100(), memoryKernel(2048)));
}

TEST(ConfigSensitivity, ClockScalesComputeTime)
{
    GpuConfig fast = GpuConfig::v100();
    fast.clockGhz = 2.76; // 2x
    double base = timeWith(GpuConfig::v100(), computeKernel(640));
    double clocked = timeWith(fast, computeKernel(640));
    EXPECT_NEAR(clocked, base / 2, base * 0.1);
}

TEST(ConfigSensitivity, ColdFetchPenaltyAddsIFetchStalls)
{
    GpuConfig cheap = GpuConfig::v100();
    cheap.ifetchColdCycles = 20;
    GpuConfig costly = GpuConfig::v100();
    costly.ifetchColdCycles = 400;

    auto ifetch = [&](const GpuConfig &cfg) {
        GpuDevice dev(cfg, 9);
        KernelRecord r = dev.launch(computeKernel(8));
        return r.stallCycles[static_cast<size_t>(
            StallReason::InstructionFetch)];
    };
    EXPECT_GT(ifetch(costly), ifetch(cheap) * 3);
}

TEST(ConfigSensitivity, LaunchOverheadBoundsWallTimeOfTinyKernels)
{
    GpuConfig cfg = GpuConfig::v100();
    GpuDevice dev(cfg, 9);
    KernelDesc tiny;
    tiny.name = "tiny";
    tiny.blocks = 1;
    tiny.warpsPerBlock = 1;
    tiny.trace = [](int64_t, WarpTraceSink &sink) { sink.fp32(4); };
    for (int i = 0; i < 1000; ++i)
        dev.launch(tiny);
    // 1000 dispatches dominate the device time of trivial kernels.
    EXPECT_GE(dev.wallTimeSec(), 1000 * cfg.launchOverheadSec * 0.99);
}
