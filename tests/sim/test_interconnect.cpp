/** @file Tests for the NVLink interconnect model. */

#include <gtest/gtest.h>

#include "sim/interconnect.hh"

using namespace gnnmark;

TEST(Interconnect, SingleGpuIsFree)
{
    Interconnect ic;
    EXPECT_EQ(ic.allReduceTime(1e9, 1), 0.0);
    EXPECT_EQ(ic.broadcastTime(1e9, 1), 0.0);
}

TEST(Interconnect, ZeroBytesIsFree)
{
    Interconnect ic;
    EXPECT_EQ(ic.allReduceTime(0, 4), 0.0);
    EXPECT_EQ(ic.p2pTime(0), 0.0);
}

TEST(Interconnect, AllReduceMonotoneInBytes)
{
    Interconnect ic;
    EXPECT_LT(ic.allReduceTime(1e6, 4), ic.allReduceTime(1e8, 4));
}

TEST(Interconnect, AllReduceRingFormula)
{
    InterconnectConfig cfg;
    cfg.linksPerGpu = 6;
    cfg.perLinkBandwidth = 25e9;
    cfg.messageLatencySec = 0.0;
    Interconnect ic(cfg);
    // Ring bandwidth = 75 GB/s; 4 GPUs: 2*(3/4) payload traversals.
    double bytes = 75e9;
    EXPECT_NEAR(ic.allReduceTime(bytes, 4), 1.5, 1e-9);
}

TEST(Interconnect, LatencyTermsDominateSmallMessages)
{
    Interconnect ic;
    double tiny = ic.allReduceTime(64, 4);
    // 6 steps x 5us latency.
    EXPECT_GE(tiny, 6 * 5e-6 * 0.99);
}

TEST(Interconnect, BroadcastLogHops)
{
    InterconnectConfig cfg;
    cfg.messageLatencySec = 0.0;
    Interconnect ic(cfg);
    double two = ic.broadcastTime(75e9, 2);
    double four = ic.broadcastTime(75e9, 4);
    EXPECT_NEAR(four / two, 2.0, 1e-9);
}

TEST(Interconnect, P2pUsesRingBandwidth)
{
    InterconnectConfig cfg;
    cfg.messageLatencySec = 0.0;
    Interconnect ic(cfg);
    EXPECT_NEAR(ic.p2pTime(75e9), 1.0, 1e-9);
}

TEST(Interconnect, MoreGpusCostMoreLatencySteps)
{
    Interconnect ic;
    double bytes = 1e4; // latency-dominated
    EXPECT_LT(ic.allReduceTime(bytes, 2), ic.allReduceTime(bytes, 4));
}
