/** @file Direct unit tests of the Profiler aggregation arithmetic,
 *  fed with synthetic KernelRecords (no device in the loop). */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "profiler/profiler.hh"

using namespace gnnmark;

namespace {

KernelRecord
record(const std::string &name, OpClass cls, double time_sec,
       double fp32 = 0, double int32 = 0, double mem = 0)
{
    KernelRecord r;
    r.name = name;
    r.opClass = cls;
    r.timeSec = time_sec;
    r.cycles = time_sec * 1.38e9;
    r.fp32Instrs = fp32;
    r.int32Instrs = int32;
    r.memInstrs = mem;
    r.flops = fp32 * 64;
    r.intOps = int32 * 32;
    return r;
}

} // namespace

TEST(Profiler, OpBreakdownIsTimeWeighted)
{
    Profiler p;
    p.onKernel(record("a", OpClass::Gemm, 0.003));
    p.onKernel(record("b", OpClass::ElementWise, 0.001));
    auto breakdown = p.opTimeBreakdown();
    EXPECT_NEAR(breakdown[static_cast<size_t>(OpClass::Gemm)], 0.75,
                1e-9);
    EXPECT_NEAR(breakdown[static_cast<size_t>(OpClass::ElementWise)],
                0.25, 1e-9);
    EXPECT_EQ(p.totalLaunches(), 2);
    EXPECT_DOUBLE_EQ(p.totalKernelTimeSec(), 0.004);
}

TEST(Profiler, InstructionMixNormalised)
{
    Profiler p;
    p.onKernel(record("a", OpClass::Gemm, 1.0, /*fp32=*/600,
                      /*int32=*/300, /*mem=*/100));
    auto mix = p.instructionMix();
    EXPECT_NEAR(mix.fp32Frac, 0.6, 1e-9);
    EXPECT_NEAR(mix.int32Frac, 0.3, 1e-9);
    EXPECT_NEAR(mix.otherFrac, 0.1, 1e-9);
}

TEST(Profiler, ThroughputFromLaneOps)
{
    Profiler p;
    p.onKernel(record("a", OpClass::Gemm, 2.0, /*fp32=*/1e9));
    // 1e9 fma instrs * 64 flops over 2 seconds.
    EXPECT_NEAR(p.gflops(), 32.0, 1e-6);
}

TEST(Profiler, StallBreakdownNormalised)
{
    Profiler p;
    KernelRecord r = record("a", OpClass::Sort, 1.0);
    r.stallCycles[static_cast<size_t>(StallReason::MemoryDependency)] =
        30;
    r.stallCycles[static_cast<size_t>(
        StallReason::ExecutionDependency)] = 10;
    p.onKernel(r);
    StallVector b = p.stallBreakdown();
    EXPECT_NEAR(b[static_cast<size_t>(StallReason::MemoryDependency)],
                0.75, 1e-9);
    EXPECT_NEAR(
        b[static_cast<size_t>(StallReason::ExecutionDependency)], 0.25,
        1e-9);
}

TEST(Profiler, CacheRatesAggregateAcrossKernels)
{
    Profiler p;
    KernelRecord a = record("a", OpClass::Gather, 1.0);
    a.l1Accesses = 100;
    a.l1Hits = 10;
    a.loads = 100;
    a.divergentLoads = 40;
    KernelRecord b = record("b", OpClass::ElementWise, 1.0);
    b.l1Accesses = 100;
    b.l1Hits = 30;
    b.loads = 100;
    b.divergentLoads = 0;
    p.onKernel(a);
    p.onKernel(b);
    EXPECT_NEAR(p.l1HitRate(), 0.2, 1e-9);
    EXPECT_NEAR(p.divergentLoadFraction(), 0.2, 1e-9);
}

TEST(Profiler, TransferSparsityIsByteWeighted)
{
    Profiler p;
    TransferRecord big;
    big.bytes = 3000;
    big.zeroFraction = 1.0;
    TransferRecord small;
    small.bytes = 1000;
    small.zeroFraction = 0.0;
    p.onTransfer(big);
    p.onTransfer(small);
    EXPECT_NEAR(p.avgTransferSparsity(), 0.75, 1e-9);
    EXPECT_DOUBLE_EQ(p.totalTransferBytes(), 4000.0);
}

TEST(Profiler, TimelineStampsIterations)
{
    Profiler p;
    TransferRecord t;
    t.bytes = 10;
    p.onTransfer(t);
    p.beginIteration();
    p.onTransfer(t);
    p.beginIteration();
    p.onTransfer(t);
    const auto &tl = p.sparsityTimeline();
    ASSERT_EQ(tl.size(), 3u);
    EXPECT_EQ(tl[0].iteration, 0);
    EXPECT_EQ(tl[1].iteration, 1);
    EXPECT_EQ(tl[2].iteration, 2);
}

TEST(Profiler, KernelStatsKeyedByName)
{
    Profiler p;
    p.onKernel(record("gemm_64", OpClass::Gemm, 0.001));
    p.onKernel(record("gemm_64", OpClass::Gemm, 0.002));
    p.onKernel(record("relu", OpClass::ElementWise, 0.001));
    const auto &stats = p.kernelStats();
    ASSERT_EQ(stats.size(), 2u);
    EXPECT_EQ(stats.at("gemm_64").launches, 2);
    EXPECT_DOUBLE_EQ(stats.at("gemm_64").timeSec, 0.003);
}

TEST(Profiler, ResetClearsEverything)
{
    Profiler p;
    p.onKernel(record("a", OpClass::Gemm, 1.0, 100, 100, 100));
    TransferRecord t;
    t.bytes = 10;
    p.onTransfer(t);
    p.reset();
    EXPECT_EQ(p.totalLaunches(), 0);
    EXPECT_EQ(p.totalKernelTimeSec(), 0);
    EXPECT_EQ(p.totalTransferBytes(), 0);
    EXPECT_TRUE(p.sparsityTimeline().empty());
}

TEST(Profiler, IpcIsCycleWeighted)
{
    Profiler p;
    KernelRecord slow = record("a", OpClass::Gemm, 3.0);
    slow.ipc = 1.0;
    KernelRecord fast = record("b", OpClass::Gemm, 1.0);
    fast.ipc = 2.0;
    p.onKernel(slow);
    p.onKernel(fast);
    // (1.0 * 3 + 2.0 * 1) / 4 cycles-weighted.
    EXPECT_NEAR(p.avgIpc(), 1.25, 1e-9);
}

TEST(OpClassNames, AllDistinct)
{
    std::set<std::string> seen;
    for (OpClass c : allOpClasses())
        EXPECT_TRUE(seen.insert(opClassName(c)).second);
    EXPECT_EQ(seen.size(), kNumOpClasses);
}

TEST(StallNames, AllDistinct)
{
    std::set<std::string> seen;
    for (size_t r = 0; r < kNumStallReasons; ++r) {
        EXPECT_TRUE(
            seen.insert(stallReasonName(static_cast<StallReason>(r)))
                .second);
    }
}

TEST(Profiler, EmptyRunReportsZeroesNotNaN)
{
    const Profiler p;
    EXPECT_EQ(p.totalLaunches(), 0);
    EXPECT_DOUBLE_EQ(p.totalKernelTimeSec(), 0);
    EXPECT_DOUBLE_EQ(p.gflops(), 0);
    EXPECT_DOUBLE_EQ(p.giops(), 0);
    EXPECT_DOUBLE_EQ(p.avgIpc(), 0);
    EXPECT_DOUBLE_EQ(p.l1HitRate(), 0);
    EXPECT_DOUBLE_EQ(p.l2HitRate(), 0);
    EXPECT_DOUBLE_EQ(p.divergentLoadFraction(), 0);
    EXPECT_DOUBLE_EQ(p.avgTransferSparsity(), 0);
    for (double share : p.opTimeBreakdown()) {
        EXPECT_TRUE(std::isfinite(share));
        EXPECT_DOUBLE_EQ(share, 0);
    }
    const auto mix = p.instructionMix();
    EXPECT_TRUE(std::isfinite(mix.fp32Frac));
    EXPECT_TRUE(std::isfinite(mix.int32Frac));
    EXPECT_TRUE(std::isfinite(mix.otherFrac));
    for (double s : p.stallBreakdown())
        EXPECT_TRUE(std::isfinite(s));
}

TEST(Profiler, ZeroTimeKernelsDoNotPoisonAggregates)
{
    Profiler p;
    // A degenerate kernel: zero time, zero cycles, zero instructions.
    p.onKernel(record("noop", OpClass::Other, 0.0));
    p.onKernel(record("real", OpClass::Gemm, 0.001, /*fp32=*/100));
    EXPECT_EQ(p.totalLaunches(), 2);
    EXPECT_TRUE(std::isfinite(p.avgIpc()));
    EXPECT_TRUE(std::isfinite(p.gflops()));
    for (double share : p.opTimeBreakdown())
        EXPECT_TRUE(std::isfinite(share));
    // All measured time belongs to the real kernel.
    EXPECT_DOUBLE_EQ(
        p.opTimeBreakdown()[static_cast<size_t>(OpClass::Gemm)], 1.0);
}

TEST(Profiler, ResetAfterResetStaysClean)
{
    Profiler p;
    p.reset();
    p.reset();
    EXPECT_EQ(p.totalLaunches(), 0);
    EXPECT_TRUE(std::isfinite(p.avgIpc()));
}
