/** @file Tests for the deterministic fault injector. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/fault_injector.hh"

using namespace gnnmark;

namespace {

FaultEvent
event(FaultKind kind, double t, int replica = 0, double duration = 0,
      double magnitude = 1.0)
{
    FaultEvent e;
    e.kind = kind;
    e.timeSec = t;
    e.replica = replica;
    e.durationSec = duration;
    e.magnitude = magnitude;
    return e;
}

} // namespace

TEST(FaultPlan, SortsEventsByTime)
{
    FaultPlan plan({event(FaultKind::ReplicaCrash, 3.0, 1),
                    event(FaultKind::Straggler, 1.0, 0, 0.5, 2.0),
                    event(FaultKind::TransientKernel, 2.0)});
    ASSERT_EQ(plan.events().size(), 3u);
    EXPECT_DOUBLE_EQ(plan.events()[0].timeSec, 1.0);
    EXPECT_DOUBLE_EQ(plan.events()[1].timeSec, 2.0);
    EXPECT_DOUBLE_EQ(plan.events()[2].timeSec, 3.0);
}

TEST(FaultPlanDeath, RejectsInvalidMagnitudes)
{
    EXPECT_DEATH(
        FaultPlan({event(FaultKind::Straggler, 0.0, 0, 1.0, 0.5)}),
        "straggler magnitude");
    EXPECT_DEATH(
        FaultPlan({event(FaultKind::DegradedLink, 0.0, 0, 1.0, 1.5)}),
        "degraded-link magnitude");
    EXPECT_DEATH(
        FaultPlan({event(FaultKind::ReplicaCrash, -1.0)}),
        "timeSec >= 0");
}

TEST(FaultPlan, GenerateIsDeterministic)
{
    FaultRates rates;
    rates.crashPerSec = 0.5;
    rates.stragglerPerSec = 2.0;
    rates.degradedLinkPerSec = 1.0;
    rates.transientPerSec = 3.0;

    Rng a(42), b(42);
    FaultPlan pa = FaultPlan::generate(a, rates, 10.0, 4);
    FaultPlan pb = FaultPlan::generate(b, rates, 10.0, 4);
    ASSERT_EQ(pa.events().size(), pb.events().size());
    EXPECT_FALSE(pa.empty());
    for (size_t i = 0; i < pa.events().size(); ++i) {
        EXPECT_EQ(static_cast<int>(pa.events()[i].kind),
                  static_cast<int>(pb.events()[i].kind));
        EXPECT_DOUBLE_EQ(pa.events()[i].timeSec,
                         pb.events()[i].timeSec);
        EXPECT_EQ(pa.events()[i].replica, pb.events()[i].replica);
    }
    for (const FaultEvent &e : pa.events()) {
        EXPECT_GE(e.timeSec, 0.0);
        EXPECT_LT(e.timeSec, 10.0);
        EXPECT_GE(e.replica, 0);
        EXPECT_LT(e.replica, 4);
    }
}

TEST(FaultPlan, ZeroRatesGenerateNothing)
{
    Rng rng(1);
    FaultPlan plan = FaultPlan::generate(rng, FaultRates{}, 100.0, 2);
    EXPECT_TRUE(plan.empty());
}

TEST(FaultInjector, StragglerFactorWindowed)
{
    FaultInjector inj(FaultPlan(
        {event(FaultKind::Straggler, 1.0, 2, 0.5, 3.0)}));
    EXPECT_DOUBLE_EQ(inj.stragglerFactor(2, 0.5), 1.0); // before
    EXPECT_DOUBLE_EQ(inj.stragglerFactor(2, 1.2), 3.0); // during
    EXPECT_DOUBLE_EQ(inj.stragglerFactor(2, 1.6), 1.0); // after
    EXPECT_DOUBLE_EQ(inj.stragglerFactor(0, 1.2), 1.0); // other replica
}

TEST(FaultInjector, OverlappingStragglersTakeWorst)
{
    FaultInjector inj(FaultPlan(
        {event(FaultKind::Straggler, 0.0, 1, 2.0, 2.0),
         event(FaultKind::Straggler, 0.5, 1, 1.0, 4.0)}));
    EXPECT_DOUBLE_EQ(inj.stragglerFactor(1, 0.2), 2.0);
    EXPECT_DOUBLE_EQ(inj.stragglerFactor(1, 0.8), 4.0);
}

TEST(FaultInjector, LinkFactorTakesWorstActiveHop)
{
    FaultInjector inj(FaultPlan(
        {event(FaultKind::DegradedLink, 0.0, 0, 2.0, 0.5),
         event(FaultKind::DegradedLink, 0.5, 0, 1.0, 0.25)}));
    EXPECT_DOUBLE_EQ(inj.linkFactor(0.2), 0.5);
    EXPECT_DOUBLE_EQ(inj.linkFactor(0.8), 0.25);
    EXPECT_DOUBLE_EQ(inj.linkFactor(3.0), 1.0);
}

TEST(FaultInjector, PermanentCrashNeverHeals)
{
    FaultInjector inj(FaultPlan(
        {event(FaultKind::ReplicaCrash, 2.0, 1)}));
    EXPECT_FALSE(inj.crashed(1, 1.9));
    EXPECT_TRUE(inj.crashed(1, 2.0));
    EXPECT_TRUE(inj.crashed(1, 1e9));
    EXPECT_FALSE(inj.crashed(0, 1e9));
    EXPECT_EQ(inj.crashesUpTo(1.9).size(), 0u);
    EXPECT_EQ(inj.crashesUpTo(2.5).size(), 1u);
}

TEST(FaultInjector, TransientFailuresCountedInWindow)
{
    FaultInjector inj(FaultPlan(
        {event(FaultKind::TransientKernel, 1.0),
         event(FaultKind::TransientKernel, 2.0),
         event(FaultKind::TransientKernel, 3.0)}));
    EXPECT_EQ(inj.transientFailures(0.0, 0.9), 0);
    EXPECT_EQ(inj.transientFailures(0.0, 2.0), 2); // (t0, t1]
    EXPECT_EQ(inj.transientFailures(2.0, 3.0), 1);
}
