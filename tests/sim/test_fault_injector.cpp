/** @file Tests for the deterministic fault injector. */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "base/io.hh"
#include "sim/fault_injector.hh"
#include "sim/fault_plan_io.hh"

using namespace gnnmark;

namespace {

FaultEvent
event(FaultKind kind, double t, int replica = 0, double duration = 0,
      double magnitude = 1.0)
{
    FaultEvent e;
    e.kind = kind;
    e.timeSec = t;
    e.replica = replica;
    e.durationSec = duration;
    e.magnitude = magnitude;
    return e;
}

} // namespace

TEST(FaultPlan, SortsEventsByTime)
{
    FaultPlan plan({event(FaultKind::ReplicaCrash, 3.0, 1),
                    event(FaultKind::Straggler, 1.0, 0, 0.5, 2.0),
                    event(FaultKind::TransientKernel, 2.0)});
    ASSERT_EQ(plan.events().size(), 3u);
    EXPECT_DOUBLE_EQ(plan.events()[0].timeSec, 1.0);
    EXPECT_DOUBLE_EQ(plan.events()[1].timeSec, 2.0);
    EXPECT_DOUBLE_EQ(plan.events()[2].timeSec, 3.0);
}

TEST(FaultPlanDeath, RejectsInvalidMagnitudes)
{
    EXPECT_DEATH(
        FaultPlan({event(FaultKind::Straggler, 0.0, 0, 1.0, 0.5)}),
        "straggler magnitude");
    EXPECT_DEATH(
        FaultPlan({event(FaultKind::DegradedLink, 0.0, 0, 1.0, 1.5)}),
        "degraded-link magnitude");
    EXPECT_DEATH(
        FaultPlan({event(FaultKind::ReplicaCrash, -1.0)}),
        "timeSec >= 0");
}

TEST(FaultPlan, GenerateIsDeterministic)
{
    FaultRates rates;
    rates.crashPerSec = 0.5;
    rates.stragglerPerSec = 2.0;
    rates.degradedLinkPerSec = 1.0;
    rates.transientPerSec = 3.0;

    Rng a(42), b(42);
    FaultPlan pa = FaultPlan::generate(a, rates, 10.0, 4);
    FaultPlan pb = FaultPlan::generate(b, rates, 10.0, 4);
    ASSERT_EQ(pa.events().size(), pb.events().size());
    EXPECT_FALSE(pa.empty());
    for (size_t i = 0; i < pa.events().size(); ++i) {
        EXPECT_EQ(static_cast<int>(pa.events()[i].kind),
                  static_cast<int>(pb.events()[i].kind));
        EXPECT_DOUBLE_EQ(pa.events()[i].timeSec,
                         pb.events()[i].timeSec);
        EXPECT_EQ(pa.events()[i].replica, pb.events()[i].replica);
    }
    for (const FaultEvent &e : pa.events()) {
        EXPECT_GE(e.timeSec, 0.0);
        EXPECT_LT(e.timeSec, 10.0);
        EXPECT_GE(e.replica, 0);
        EXPECT_LT(e.replica, 4);
    }
}

TEST(FaultPlan, ZeroRatesGenerateNothing)
{
    Rng rng(1);
    FaultPlan plan = FaultPlan::generate(rng, FaultRates{}, 100.0, 2);
    EXPECT_TRUE(plan.empty());
}

TEST(FaultInjector, StragglerFactorWindowed)
{
    FaultInjector inj(FaultPlan(
        {event(FaultKind::Straggler, 1.0, 2, 0.5, 3.0)}));
    EXPECT_DOUBLE_EQ(inj.stragglerFactor(2, 0.5), 1.0); // before
    EXPECT_DOUBLE_EQ(inj.stragglerFactor(2, 1.2), 3.0); // during
    EXPECT_DOUBLE_EQ(inj.stragglerFactor(2, 1.6), 1.0); // after
    EXPECT_DOUBLE_EQ(inj.stragglerFactor(0, 1.2), 1.0); // other replica
}

TEST(FaultInjector, OverlappingStragglersTakeWorst)
{
    FaultInjector inj(FaultPlan(
        {event(FaultKind::Straggler, 0.0, 1, 2.0, 2.0),
         event(FaultKind::Straggler, 0.5, 1, 1.0, 4.0)}));
    EXPECT_DOUBLE_EQ(inj.stragglerFactor(1, 0.2), 2.0);
    EXPECT_DOUBLE_EQ(inj.stragglerFactor(1, 0.8), 4.0);
}

TEST(FaultInjector, LinkFactorTakesWorstActiveHop)
{
    FaultInjector inj(FaultPlan(
        {event(FaultKind::DegradedLink, 0.0, 0, 2.0, 0.5),
         event(FaultKind::DegradedLink, 0.5, 0, 1.0, 0.25)}));
    EXPECT_DOUBLE_EQ(inj.linkFactor(0.2), 0.5);
    EXPECT_DOUBLE_EQ(inj.linkFactor(0.8), 0.25);
    EXPECT_DOUBLE_EQ(inj.linkFactor(3.0), 1.0);
}

TEST(FaultInjector, PermanentCrashNeverHeals)
{
    FaultInjector inj(FaultPlan(
        {event(FaultKind::ReplicaCrash, 2.0, 1)}));
    EXPECT_FALSE(inj.crashed(1, 1.9));
    EXPECT_TRUE(inj.crashed(1, 2.0));
    EXPECT_TRUE(inj.crashed(1, 1e9));
    EXPECT_FALSE(inj.crashed(0, 1e9));
    EXPECT_EQ(inj.crashesUpTo(1.9).size(), 0u);
    EXPECT_EQ(inj.crashesUpTo(2.5).size(), 1u);
}

TEST(FaultInjector, TransientFailuresCountedInWindow)
{
    FaultInjector inj(FaultPlan(
        {event(FaultKind::TransientKernel, 1.0),
         event(FaultKind::TransientKernel, 2.0),
         event(FaultKind::TransientKernel, 3.0)}));
    EXPECT_EQ(inj.transientFailures(0.0, 0.9), 0);
    EXPECT_EQ(inj.transientFailures(0.0, 2.0), 2); // (t0, t1]
    EXPECT_EQ(inj.transientFailures(2.0, 3.0), 1);
}

TEST(FaultInjector, ServiceFactorCrashDominatesStraggler)
{
    // Straggler window covers the crash; once crashed the replica
    // does no work at all, so the factor jumps to +inf, not 4x.
    FaultInjector inj(FaultPlan(
        {event(FaultKind::Straggler, 1.0, 0, 5.0, 4.0),
         event(FaultKind::ReplicaCrash, 3.0, 0)}));
    EXPECT_DOUBLE_EQ(inj.serviceFactor(0, 0.5), 1.0);
    EXPECT_DOUBLE_EQ(inj.serviceFactor(0, 2.0), 4.0);
    EXPECT_TRUE(std::isinf(inj.serviceFactor(0, 3.0)));
    EXPECT_TRUE(std::isinf(inj.serviceFactor(0, 100.0)));
    // The straggler query itself still reports the window; the
    // precedence lives in serviceFactor, by contract.
    EXPECT_DOUBLE_EQ(inj.stragglerFactor(0, 4.0), 4.0);
    EXPECT_DOUBLE_EQ(inj.serviceFactor(1, 4.0), 1.0);
}

TEST(FaultInjector, CrashTimeIsFirstCrashOrInfinity)
{
    FaultInjector inj(FaultPlan(
        {event(FaultKind::ReplicaCrash, 5.0, 1),
         event(FaultKind::ReplicaCrash, 2.0, 1),
         event(FaultKind::Straggler, 0.5, 0, 1.0, 2.0)}));
    EXPECT_DOUBLE_EQ(inj.crashTime(1), 2.0);
    EXPECT_TRUE(std::isinf(inj.crashTime(0)));
    EXPECT_TRUE(std::isinf(inj.crashTime(7)));
}

TEST(FaultInjector, NextTransitionAfterSeesStartsAndEnds)
{
    // Straggler [1, 1.5), crash at 2: transitions at 1, 1.5, 2.
    FaultInjector inj(FaultPlan(
        {event(FaultKind::Straggler, 1.0, 0, 0.5, 2.0),
         event(FaultKind::ReplicaCrash, 2.0, 1)}));
    EXPECT_DOUBLE_EQ(inj.nextTransitionAfter(0.0), 1.0);
    EXPECT_DOUBLE_EQ(inj.nextTransitionAfter(1.0), 1.5);
    EXPECT_DOUBLE_EQ(inj.nextTransitionAfter(1.5), 2.0);
    EXPECT_TRUE(std::isinf(inj.nextTransitionAfter(2.0)));
    EXPECT_TRUE(std::isinf(FaultInjector().nextTransitionAfter(0.0)));
}

TEST(FaultPlanDeath, GenerateRejectsBadRates)
{
    Rng rng(3);
    FaultRates bad;
    bad.crashPerSec = -0.5;
    EXPECT_DEATH(FaultPlan::generate(rng, bad, 10.0, 2),
                 "finite and >= 0");
    bad.crashPerSec = std::numeric_limits<double>::infinity();
    EXPECT_DEATH(FaultPlan::generate(rng, bad, 10.0, 2),
                 "finite and >= 0");
    EXPECT_DEATH(FaultPlan::generate(rng, FaultRates{}, 0.0, 2),
                 "horizon");
    EXPECT_DEATH(FaultPlan::generate(rng, FaultRates{}, 10.0, 0),
                 "world");
}

TEST(FaultPlanIo, TextRoundTripIsExact)
{
    Rng rng(11);
    FaultRates rates;
    rates.crashPerSec = 0.3;
    rates.stragglerPerSec = 2.0;
    rates.degradedLinkPerSec = 1.0;
    rates.transientPerSec = 4.0;
    FaultPlan plan = FaultPlan::generate(rng, rates, 8.0, 4);
    ASSERT_FALSE(plan.empty());

    const std::string text = faultPlanToText(plan);
    FaultPlan back = faultPlanFromText(text, "round-trip");
    ASSERT_EQ(back.events().size(), plan.events().size());
    for (size_t i = 0; i < plan.events().size(); ++i) {
        const FaultEvent &a = plan.events()[i];
        const FaultEvent &b = back.events()[i];
        EXPECT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind));
        // %.17g round-trips doubles bitwise.
        EXPECT_EQ(a.timeSec, b.timeSec);
        EXPECT_EQ(a.replica, b.replica);
        EXPECT_EQ(a.durationSec, b.durationSec);
        EXPECT_EQ(a.magnitude, b.magnitude);
    }
    // Serializing the reloaded plan reproduces the bytes.
    EXPECT_EQ(faultPlanToText(back), text);
}

TEST(FaultPlanIo, ParserSkipsCommentsAndBlankLines)
{
    FaultPlan plan = faultPlanFromText(
        "# leading comment\n"
        "gnnmark-fault-plan v1\n"
        "\n"
        "# a straggler\n"
        "straggler time=0.5 replica=1 duration=2 magnitude=4\r\n"
        "crash time=1.25 replica=2\n",
        "test");
    ASSERT_EQ(plan.events().size(), 2u);
    EXPECT_EQ(static_cast<int>(plan.events()[0].kind),
              static_cast<int>(FaultKind::Straggler));
    EXPECT_DOUBLE_EQ(plan.events()[0].magnitude, 4.0);
    EXPECT_EQ(plan.events()[1].replica, 2);
}

TEST(FaultPlanIo, CorruptInputsThrowIoError)
{
    auto kindOf = [](const std::string &text) {
        try {
            faultPlanFromText(text, "test");
        } catch (const IoError &e) {
            return e.kind();
        }
        ADD_FAILURE() << "no IoError for: " << text;
        return IoError::Kind::OpenFailed;
    };
    EXPECT_EQ(kindOf(""), IoError::Kind::BadMagic);
    EXPECT_EQ(kindOf("not-a-plan v1\n"), IoError::Kind::BadMagic);
    EXPECT_EQ(kindOf("gnnmark-fault-plan v9\n"),
              IoError::Kind::BadVersion);
    EXPECT_EQ(kindOf("gnnmark-fault-plan v1\nmeteor time=1\n"),
              IoError::Kind::Corrupt); // unknown kind
    EXPECT_EQ(kindOf("gnnmark-fault-plan v1\ncrash replica=0\n"),
              IoError::Kind::Corrupt); // missing time
    EXPECT_EQ(kindOf("gnnmark-fault-plan v1\ncrash time=abc\n"),
              IoError::Kind::Corrupt); // bad number
    EXPECT_EQ(kindOf("gnnmark-fault-plan v1\ncrash time=1 huh=2\n"),
              IoError::Kind::Corrupt); // unknown field
    EXPECT_EQ(
        kindOf("gnnmark-fault-plan v1\n"
               "straggler time=1 replica=0 magnitude=0.5\n"),
        IoError::Kind::Corrupt); // invalid magnitude
}
