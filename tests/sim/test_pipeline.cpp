/** @file Tests for the SM warp pipeline model. */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "sim/cache_model.hh"
#include "sim/warp_pipeline.hh"

using namespace gnnmark;

namespace {

struct PipelineFixture : public ::testing::Test
{
    GpuConfig cfg = GpuConfig::v100();
    Rng rng{99};

    WaveResult
    run(const std::vector<WarpTrace> &warps, KernelDesc desc = {})
    {
        CacheModel l1(cfg.l1SizeBytes, cfg.l1Assoc, cfg.cacheLineBytes);
        CacheModel l2(cfg.l2SizeBytes, cfg.l2Assoc, cfg.cacheLineBytes);
        WarpPipeline pipe(cfg, l1, l2, rng);
        return pipe.run(warps, desc);
    }

    WarpTrace
    aluTrace(int n_fma)
    {
        WarpTrace t;
        WarpTraceSink sink(t, cfg.maxTraceInstrs, cfg.cacheLineBytes);
        sink.fma(n_fma);
        return t;
    }

    WarpTrace
    streamTrace(int n_loads, uint64_t base, uint64_t stride)
    {
        WarpTrace t;
        WarpTraceSink sink(t, cfg.maxTraceInstrs, cfg.cacheLineBytes);
        for (int i = 0; i < n_loads; ++i)
            sink.loadCoalesced(base + i * stride, 4);
        return t;
    }
};

} // namespace

TEST_F(PipelineFixture, EmptyWaveIsFree)
{
    WaveResult r = run({});
    EXPECT_EQ(r.cycles, 0);
    EXPECT_EQ(r.issued, 0);
}

TEST_F(PipelineFixture, SingleWarpAluBoundedByDependencies)
{
    WaveResult r = run({aluTrace(1000)});
    // One warp at ILP 2: roughly half the instructions wait the full
    // ALU latency; cold instruction fetches add a bounded extra.
    double cold_fetch =
        (4096.0 / cfg.cacheLineBytes) * cfg.ifetchColdCycles;
    EXPECT_GE(r.cycles, 1000);
    EXPECT_LE(r.cycles, 1000.0 * cfg.aluLatency + cold_fetch);
    EXPECT_DOUBLE_EQ(r.issued, 1000);
    EXPECT_DOUBLE_EQ(r.flops, 1000 * 64.0);
}

TEST_F(PipelineFixture, FpPortCapsThroughput)
{
    // Many independent warps of pure FMA: throughput is limited by
    // fp32PortsPerCycle, not issueWidth.
    std::vector<WarpTrace> warps;
    for (int w = 0; w < 32; ++w)
        warps.push_back(aluTrace(500));
    WaveResult r = run(warps);
    double min_cycles = 32.0 * 500.0 / cfg.fp32PortsPerCycle;
    EXPECT_GE(r.cycles, min_cycles * 0.95);
    // And with that many warps we should be close to the cap.
    EXPECT_LE(r.cycles, min_cycles * 1.6);
}

TEST_F(PipelineFixture, MoreWarpsHideLatency)
{
    WaveResult one = run({streamTrace(200, 0, 128)});
    std::vector<WarpTrace> many;
    for (int w = 0; w < 16; ++w)
        many.push_back(streamTrace(200, 0x100000 * (w + 1), 128));
    WaveResult sixteen = run(many);
    // 16x the work should take much less than 16x the time.
    EXPECT_LT(sixteen.cycles, one.cycles * 8);
}

TEST_F(PipelineFixture, ColdStreamMissesInL1)
{
    WaveResult r = run({streamTrace(500, 0, 128)});
    EXPECT_EQ(r.loads, 500);
    EXPECT_EQ(r.l1Hits, 0);
    EXPECT_EQ(r.l1Accesses, 500);
    EXPECT_GT(r.dramBytes, 0);
}

TEST_F(PipelineFixture, RepeatedLineHitsInL1)
{
    WaveResult r = run({streamTrace(500, 0, 0)}); // same line always
    EXPECT_EQ(r.l1Hits, 499);
}

TEST_F(PipelineFixture, MemoryStallsDominantForPointerChase)
{
    KernelDesc desc;
    desc.loadDepFraction = 1.0; // every load feeds the next instr
    WaveResult r = run({streamTrace(300, 0, 4096)}, desc);
    double mem = r.stalls[static_cast<size_t>(
        StallReason::MemoryDependency)];
    double exec = r.stalls[static_cast<size_t>(
        StallReason::ExecutionDependency)];
    EXPECT_GT(mem, 10 * std::max(1.0, exec));
}

TEST_F(PipelineFixture, ExecDependencyStallsForSerialAlu)
{
    KernelDesc desc;
    desc.aluIlp = 1.0; // fully serial chain
    WaveResult r = run({aluTrace(500)}, desc);
    double exec = r.stalls[static_cast<size_t>(
        StallReason::ExecutionDependency)];
    EXPECT_GT(exec, 500.0); // ~ (latency-1) per instruction
}

TEST_F(PipelineFixture, BarrierAttributesSynchronization)
{
    WarpTrace t;
    WarpTraceSink sink(t, cfg.maxTraceInstrs, cfg.cacheLineBytes);
    for (int i = 0; i < 50; ++i) {
        sink.fp32(1);
        sink.barrier();
    }
    WaveResult r = run({t});
    EXPECT_GT(r.stalls[static_cast<size_t>(
                  StallReason::Synchronization)], 0);
}

TEST_F(PipelineFixture, BigCodeCausesFetchStalls)
{
    KernelDesc small_code;
    small_code.codeBytes = 2048;
    KernelDesc big_code;
    big_code.codeBytes = 256 * 1024; // far beyond the 12KB L0I

    auto make = [&]() {
        std::vector<WarpTrace> warps;
        for (int w = 0; w < 8; ++w)
            warps.push_back(aluTrace(2000));
        return warps;
    };
    WaveResult small_r = run(make(), small_code);
    WaveResult big_r = run(make(), big_code);
    auto ifetch = [](const WaveResult &r) {
        return r.stalls[static_cast<size_t>(
            StallReason::InstructionFetch)];
    };
    EXPECT_GT(ifetch(big_r), 5 * std::max(1.0, ifetch(small_r)));
    // With a single warp the fetch latency cannot hide behind other
    // warps, so the slowdown is visible in cycles too.
    WaveResult lone_small = run({aluTrace(2000)}, small_code);
    WaveResult lone_big = run({aluTrace(2000)}, big_code);
    EXPECT_GT(lone_big.cycles, lone_small.cycles * 1.5);
}

TEST_F(PipelineFixture, DivergentLoadsCountedAndSlower)
{
    WarpTrace coalesced;
    {
        WarpTraceSink sink(coalesced, cfg.maxTraceInstrs,
                           cfg.cacheLineBytes);
        for (int i = 0; i < 200; ++i)
            sink.loadCoalesced(i * 128, 4);
    }
    WarpTrace divergent;
    {
        WarpTraceSink sink(divergent, cfg.maxTraceInstrs,
                           cfg.cacheLineBytes);
        uint64_t addrs[32];
        for (int i = 0; i < 200; ++i) {
            for (int l = 0; l < 32; ++l)
                addrs[l] = (i * 32 + l) * 4096;
            sink.loadGlobal(addrs, 32, 4);
        }
    }
    WaveResult rc = run({coalesced});
    WaveResult rd = run({divergent});
    EXPECT_EQ(rc.divergentLoads, 0);
    EXPECT_EQ(rd.divergentLoads, 200);
    EXPECT_GT(rd.cycles, rc.cycles);
    EXPECT_GT(rd.l2Accesses, rc.l2Accesses * 20);
}

TEST_F(PipelineFixture, ExtrapolationScalesTruncatedTraces)
{
    WarpTrace t;
    WarpTraceSink sink(t, /*cap=*/100, cfg.cacheLineBytes);
    sink.fma(1000); // only 100 recorded
    WaveResult r = run({t});
    EXPECT_DOUBLE_EQ(r.issued, 1000);
    // Cycles are extrapolated by ~10x relative to the recorded run.
    EXPECT_GE(r.cycles, 1000);
}

TEST_F(PipelineFixture, L2SharedAcrossRuns)
{
    CacheModel l1(cfg.l1SizeBytes, cfg.l1Assoc, cfg.cacheLineBytes);
    CacheModel l2(cfg.l2SizeBytes, cfg.l2Assoc, cfg.cacheLineBytes);
    KernelDesc desc;
    {
        WarpPipeline pipe(cfg, l1, l2, rng);
        WaveResult first = pipe.run({streamTrace(300, 0, 128)}, desc);
        EXPECT_EQ(first.l2Hits, 0);
    }
    {
        // Second kernel reading the same data: L2 is warm.
        l1.flush();
        WarpPipeline pipe(cfg, l1, l2, rng);
        WaveResult second = pipe.run({streamTrace(300, 0, 128)}, desc);
        EXPECT_EQ(second.l2Hits, 300);
    }
}
