/** @file Tests for the GpuDevice launch/sampling/transfer machinery. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/gpu_device.hh"

using namespace gnnmark;

namespace {

/** Simple observer that collects everything. */
struct Collector : public KernelObserver
{
    std::vector<KernelRecord> kernels;
    std::vector<TransferRecord> transfers;
    void onKernel(const KernelRecord &r) override { kernels.push_back(r); }
    void onTransfer(const TransferRecord &r) override
    {
        transfers.push_back(r);
    }
};

KernelDesc
simpleKernel(const std::string &name, int64_t blocks, int fma_per_warp)
{
    KernelDesc desc;
    desc.name = name;
    desc.opClass = OpClass::ElementWise;
    desc.blocks = blocks;
    desc.warpsPerBlock = 4;
    desc.trace = [fma_per_warp](int64_t, WarpTraceSink &sink) {
        sink.int32(2);
        sink.fma(fma_per_warp);
        sink.loadCoalesced(0x1000, 4);
    };
    return desc;
}

} // namespace

TEST(GpuDevice, LaunchProducesTimedRecord)
{
    GpuDevice dev;
    KernelRecord r = dev.launch(simpleKernel("k", 16, 100));
    EXPECT_GT(r.timeSec, 0);
    EXPECT_GT(r.cycles, 0);
    EXPECT_TRUE(r.detailed);
    EXPECT_EQ(r.invocation, 0);
    EXPECT_EQ(r.opClass, OpClass::ElementWise);
    EXPECT_EQ(r.activeSms, 16);
}

TEST(GpuDevice, InstructionCountsScaleWithGrid)
{
    GpuDevice dev;
    KernelRecord small = dev.launch(simpleKernel("a", 80, 100));
    KernelRecord big = dev.launch(simpleKernel("b", 800, 100));
    EXPECT_NEAR(big.fp32Instrs / small.fp32Instrs, 10.0, 0.5);
    EXPECT_NEAR(big.flops / small.flops, 10.0, 0.5);
}

TEST(GpuDevice, MoreWavesTakeLonger)
{
    GpuDevice dev;
    KernelRecord one_wave = dev.launch(simpleKernel("w1", 80, 2000));
    // 80 SMs x 16 resident blocks exhausted -> multiple waves.
    KernelRecord many_waves =
        dev.launch(simpleKernel("w2", 80 * 40, 2000));
    EXPECT_GT(many_waves.timeSec, 2 * one_wave.timeSec);
}

TEST(GpuDevice, SamplingCacheKicksIn)
{
    GpuConfig cfg = GpuConfig::v100();
    cfg.detailSampleLimit = 3;
    GpuDevice dev(cfg);
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(dev.launch(simpleKernel("same", 32, 50)).detailed);
    KernelRecord replay = dev.launch(simpleKernel("same", 32, 50));
    EXPECT_FALSE(replay.detailed);
    EXPECT_EQ(replay.invocation, 3);
    // Replayed metrics match the detailed averages.
    KernelRecord fresh = dev.launch(simpleKernel("other", 32, 50));
    EXPECT_NEAR(replay.fp32Instrs, fresh.fp32Instrs,
                fresh.fp32Instrs * 0.05);
}

TEST(GpuDevice, ReplayScalesToNewGeometry)
{
    GpuConfig cfg = GpuConfig::v100();
    cfg.detailSampleLimit = 1;
    GpuDevice dev(cfg);
    dev.launch(simpleKernel("k", 100, 50));
    KernelRecord scaled = dev.launch(simpleKernel("k", 200, 50));
    EXPECT_FALSE(scaled.detailed);
    KernelRecord base = dev.launch(simpleKernel("base", 200, 50));
    EXPECT_NEAR(scaled.fp32Instrs, base.fp32Instrs,
                base.fp32Instrs * 0.05);
}

TEST(GpuDevice, ObserverReceivesEverything)
{
    GpuDevice dev;
    Collector obs;
    dev.addObserver(&obs);
    dev.launch(simpleKernel("k", 8, 10));
    std::vector<float> data = {0.0f, 1.0f, 0.0f, 2.0f};
    dev.copyHostToDevice(data.data(), data.size(), 0x1000, "input");
    ASSERT_EQ(obs.kernels.size(), 1u);
    ASSERT_EQ(obs.transfers.size(), 1u);
    EXPECT_EQ(obs.transfers[0].tag, "input");
}

TEST(GpuDevice, TransferSparsityMeasured)
{
    GpuDevice dev;
    std::vector<float> data(100, 0.0f);
    for (int i = 0; i < 25; ++i)
        data[i] = 1.0f;
    TransferRecord r =
        dev.copyHostToDevice(data.data(), data.size(), 0x1000, "x");
    EXPECT_NEAR(r.zeroFraction, 0.75, 1e-9);
    EXPECT_DOUBLE_EQ(r.bytes, 400.0);
    EXPECT_GT(r.timeSec, 0);
}

TEST(GpuDevice, IntTransferSparsity)
{
    GpuDevice dev;
    std::vector<int32_t> idx = {0, 1, 0, 2, 0, 3};
    TransferRecord r = dev.copyHostToDevice(idx.data(), idx.size(), 0x1000, "i");
    EXPECT_NEAR(r.zeroFraction, 0.5, 1e-9);
}

TEST(GpuDevice, CompressionAblationSpeedsSparseTransfers)
{
    std::vector<float> sparse(1 << 20, 0.0f);
    GpuDevice plain;
    GpuConfig cfg = GpuConfig::v100();
    cfg.h2dCompression = true;
    GpuDevice compressed(cfg);
    double t_plain =
        plain.copyHostToDevice(sparse.data(), sparse.size(), 0x1000, "x")
            .timeSec;
    double t_comp = compressed
                        .copyHostToDevice(sparse.data(), sparse.size(),
                                          0x1000, "x")
                        .timeSec;
    EXPECT_LT(t_comp, t_plain * 0.2);
}

TEST(GpuDevice, TimersAccumulateAndReset)
{
    GpuDevice dev;
    dev.launch(simpleKernel("k", 8, 10));
    std::vector<float> data(64, 1.0f);
    dev.copyHostToDevice(data.data(), data.size(), 0x1000, "x");
    EXPECT_GT(dev.kernelTimeSec(), 0);
    EXPECT_GT(dev.transferTimeSec(), 0);
    EXPECT_GT(dev.wallTimeSec(),
              dev.kernelTimeSec() + dev.transferTimeSec());
    EXPECT_EQ(dev.kernelCount(), 1);
    dev.resetTimers();
    EXPECT_EQ(dev.kernelTimeSec(), 0);
    EXPECT_EQ(dev.kernelCount(), 0);
}

TEST(GpuDevice, BandwidthBoundKernelThrottled)
{
    GpuDevice dev;
    // Huge streaming kernel: every warp reads fresh lines.
    KernelDesc desc;
    desc.name = "stream";
    desc.blocks = 8000;
    desc.warpsPerBlock = 8;
    desc.loadDepFraction = 0.1;
    desc.trace = [](int64_t warp_id, WarpTraceSink &sink) {
        for (int i = 0; i < 64; ++i) {
            sink.loadCoalesced(
                static_cast<uint64_t>(warp_id) * 8192 + i * 128, 4);
        }
    };
    KernelRecord r = dev.launch(desc);
    double bw_time = r.dramBytes / dev.config().dramBandwidth;
    EXPECT_GE(r.timeSec, bw_time * 0.99);
    EXPECT_GT(r.stallCycles[static_cast<size_t>(
                  StallReason::MemoryThrottle)], 0);
}

TEST(GpuDevice, FreshDeviceDeterministic)
{
    auto run = [](uint64_t seed) {
        GpuDevice dev(GpuConfig::v100(), seed);
        return dev.launch(simpleKernel("k", 64, 300)).timeSec;
    };
    EXPECT_DOUBLE_EQ(run(7), run(7));
}

TEST(GpuDeviceDeath, InvalidGeometryPanics)
{
    GpuDevice dev;
    KernelDesc desc = simpleKernel("k", 0, 1);
    EXPECT_DEATH(dev.launch(desc), "no blocks");
}
