/** @file Tests for the set-associative LRU cache model. */

#include <gtest/gtest.h>

#include "sim/cache_model.hh"

using namespace gnnmark;

TEST(CacheModel, ColdMissThenHit)
{
    CacheModel c(1024, 2, 64);
    EXPECT_FALSE(c.access(0));
    EXPECT_TRUE(c.access(0));
    EXPECT_TRUE(c.access(63));  // same line
    EXPECT_FALSE(c.access(64)); // next line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(CacheModel, LruEvictsOldest)
{
    // 2-way, 1 set: capacity 2 lines.
    CacheModel c(128, 2, 64);
    c.access(0);   // A
    c.access(64);  // B
    c.access(0);   // touch A; B is now LRU
    c.access(128); // C evicts B
    EXPECT_TRUE(c.access(0));
    EXPECT_FALSE(c.access(64)); // B was evicted
}

TEST(CacheModel, SetIndexingSeparatesSets)
{
    // 2 sets, direct-mapped: lines 0 and 1 land in different sets.
    CacheModel c(128, 1, 64);
    c.access(0);
    c.access(64);
    EXPECT_TRUE(c.access(0));
    EXPECT_TRUE(c.access(64));
    // Conflicting line in set 0 evicts line 0 only.
    c.access(128);
    EXPECT_FALSE(c.access(0));
    EXPECT_TRUE(c.access(64));
}

TEST(CacheModel, FlushDropsEverything)
{
    CacheModel c(1024, 4, 64);
    c.access(0);
    c.flush();
    EXPECT_FALSE(c.access(0));
}

TEST(CacheModel, ProbeDoesNotFill)
{
    CacheModel c(1024, 4, 64);
    EXPECT_FALSE(c.probe(0));
    EXPECT_FALSE(c.access(0)); // still a miss: probe didn't fill
    EXPECT_TRUE(c.probe(0));
}

TEST(CacheModel, ResetStatsKeepsContents)
{
    CacheModel c(1024, 4, 64);
    c.access(0);
    c.resetStats();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_TRUE(c.access(0)); // line survived the stats reset
}

TEST(CacheModel, HitRate)
{
    CacheModel c(1024, 4, 64);
    EXPECT_EQ(c.hitRate(), 0.0);
    c.access(0);
    c.access(0);
    c.access(0);
    c.access(0);
    EXPECT_NEAR(c.hitRate(), 0.75, 1e-9);
}

TEST(CacheModelDeath, BadGeometryPanics)
{
    EXPECT_DEATH(CacheModel(100, 2, 64), "multiple");
    EXPECT_DEATH(CacheModel(1024, 2, 63), "power of two");
}

/**
 * Property: a working set no larger than the capacity never misses
 * after the first (cold) pass, for any associativity.
 */
class CacheResidency : public ::testing::TestWithParam<int>
{
};

TEST_P(CacheResidency, WorkingSetFitsAfterWarmup)
{
    const int assoc = GetParam();
    CacheModel c(64 * 64, assoc, 64); // 64 lines capacity
    for (int round = 0; round < 3; ++round) {
        for (uint64_t line = 0; line < 64; ++line)
            c.access(line * 64);
    }
    EXPECT_EQ(c.misses(), 64u);
    EXPECT_EQ(c.hits(), 128u);
}

TEST_P(CacheResidency, ThrashingWorkingSetMissesEveryTime)
{
    const int assoc = GetParam();
    CacheModel c(64 * 64, assoc, 64);
    // Working set = 2x capacity, streamed cyclically: true LRU evicts
    // the line just before it would be reused.
    uint64_t miss_before = 0;
    for (int round = 0; round < 4; ++round) {
        for (uint64_t line = 0; line < 128; ++line)
            c.access(line * 64);
    }
    miss_before = c.misses();
    EXPECT_EQ(miss_before, 4u * 128u); // everything misses
}

INSTANTIATE_TEST_SUITE_P(Assoc, CacheResidency,
                         ::testing::Values(1, 2, 4, 8, 16));
