/** @file Stream/event timing model: SimStream scheduling semantics,
 *  IterationTimeline wall-clock mapping, and TimelineCollector's
 *  phase-mark segmentation of a kernel stream. */

#include <gtest/gtest.h>

#include "sim/stream.hh"

using namespace gnnmark;

namespace {

KernelRecord
kernel(double time_sec)
{
    KernelRecord r;
    r.name = "k";
    r.timeSec = time_sec;
    return r;
}

TransferRecord
transfer(double time_sec)
{
    TransferRecord r;
    r.tag = "t";
    r.timeSec = time_sec;
    return r;
}

} // namespace

TEST(SimStream, OpsRunBackToBack)
{
    SimStream s("comm");
    const StreamOp &a = s.enqueue("a", 0.0, 2.0);
    EXPECT_EQ(a.startSec, 0.0);
    EXPECT_EQ(a.endSec, 2.0);
    // Ready at t=1 but the stream is busy until t=2.
    const StreamOp &b = s.enqueue("b", 1.0, 3.0);
    EXPECT_EQ(b.startSec, 2.0);
    EXPECT_EQ(b.endSec, 5.0);
    EXPECT_EQ(s.cursorSec(), 5.0);
}

TEST(SimStream, ReadyTimeDelaysStart)
{
    SimStream s;
    s.enqueue("a", 0.0, 1.0);
    const StreamOp &late = s.enqueue("late", 10.0, 1.0);
    EXPECT_EQ(late.startSec, 10.0);
    EXPECT_EQ(late.endSec, 11.0);
}

TEST(SimStream, EventsCarryCompletionAcrossStreams)
{
    SimStream compute, comm;
    compute.enqueue("fwd", 0.0, 4.0);
    const SimEvent done = compute.recordEvent();
    EXPECT_EQ(done.timeSec, 4.0);
    comm.waitEvent(done);
    const StreamOp &op = comm.enqueue("reduce", 0.0, 1.0);
    EXPECT_EQ(op.startSec, 4.0);
    EXPECT_EQ(op.endSec, 5.0);
}

TEST(IterationTimeline, WallClockMapsTransferPrologueAndKernels)
{
    IterationTimeline t;
    t.kernelSec = 10.0;
    t.transferSec = 2.0;
    t.kernelCount = 10;
    t.launchOverheadSec = 0.1; // dispatch 1.0 < kernel 10.0
    EXPECT_DOUBLE_EQ(t.wallSec(), 12.0);
    EXPECT_DOUBLE_EQ(t.wallAtKernelTime(0.0), 2.0);
    EXPECT_DOUBLE_EQ(t.wallAtKernelTime(5.0), 7.0);
    EXPECT_DOUBLE_EQ(t.wallAtKernelTime(10.0), 12.0);
    // Clamped at both ends.
    EXPECT_DOUBLE_EQ(t.wallAtKernelTime(-1.0), 2.0);
    EXPECT_DOUBLE_EQ(t.wallAtKernelTime(99.0), 12.0);
}

TEST(IterationTimeline, DispatchBoundStreamStretchesKernelTime)
{
    IterationTimeline t;
    t.kernelSec = 1.0;
    t.kernelCount = 1000;
    t.launchOverheadSec = 4e-3; // dispatch window 4.0 paces the stream
    EXPECT_DOUBLE_EQ(t.wallSec(), 4.0);
    // Cumulative kernel time is spread uniformly over the window.
    EXPECT_DOUBLE_EQ(t.wallAtKernelTime(0.5), 2.0);
    EXPECT_DOUBLE_EQ(t.wallAtKernelTime(1.0), 4.0);
}

TEST(IterationTimeline, BucketReadinessFollowsBackwardKernelOrder)
{
    IterationTimeline t;
    t.kernelSec = 8.0;
    t.kernelCount = 8;
    t.launchOverheadSec = 0;
    t.backwardBeginKernelSec = 4.0;
    t.backwardEndKernelSec = 8.0;
    t.backwardKernelEnds = {5.0, 6.0, 7.0, 8.0};
    // 2 buckets over 4 backward kernels: ready after kernels 2 and 4.
    EXPECT_DOUBLE_EQ(t.bucketReadySec(0, 2), 6.0);
    EXPECT_DOUBLE_EQ(t.bucketReadySec(1, 2), 8.0);
    // More buckets than kernels: indexes collapse onto kernel ends,
    // monotonically non-decreasing, last bucket at backward end.
    double prev = 0;
    for (int i = 0; i < 8; ++i) {
        const double ready = t.bucketReadySec(i, 8);
        EXPECT_GE(ready, prev);
        prev = ready;
    }
    EXPECT_DOUBLE_EQ(t.bucketReadySec(7, 8), 8.0);
}

TEST(IterationTimeline, NoBackwardWindowFallsBackToStreamEnd)
{
    IterationTimeline t;
    t.kernelSec = 3.0;
    t.kernelCount = 3;
    EXPECT_FALSE(t.hasBackward());
    EXPECT_DOUBLE_EQ(t.bucketReadySec(0, 4), 3.0);
    EXPECT_DOUBLE_EQ(t.bucketReadySec(3, 4), 3.0);
}

TEST(TimelineCollector, IgnoresWarmupBeforeFirstIterationMark)
{
    TimelineCollector c(1e-6);
    c.onKernel(kernel(1.0));
    c.onTransfer(transfer(0.5));
    EXPECT_TRUE(c.iterations().empty());
    c.onPhase(PhaseMark::IterationBegin);
    c.onKernel(kernel(2.0));
    ASSERT_EQ(c.iterations().size(), 1u);
    EXPECT_DOUBLE_EQ(c.iterations()[0].kernelSec, 2.0);
    EXPECT_EQ(c.iterations()[0].kernelCount, 1);
}

TEST(TimelineCollector, SegmentsIterationsAndBackwardWindows)
{
    TimelineCollector c(1e-6);
    for (int iter = 0; iter < 2; ++iter) {
        c.onPhase(PhaseMark::IterationBegin);
        c.onTransfer(transfer(0.25));
        c.onKernel(kernel(1.0)); // forward
        c.onPhase(PhaseMark::BackwardBegin);
        c.onKernel(kernel(0.5));
        c.onKernel(kernel(0.5));
        c.onPhase(PhaseMark::BackwardEnd);
        c.onKernel(kernel(0.1)); // optimizer
    }
    ASSERT_EQ(c.iterations().size(), 2u);
    for (const IterationTimeline &t : c.iterations()) {
        EXPECT_TRUE(t.hasBackward());
        EXPECT_DOUBLE_EQ(t.transferSec, 0.25);
        EXPECT_DOUBLE_EQ(t.kernelSec, 2.1);
        EXPECT_DOUBLE_EQ(t.backwardBeginKernelSec, 1.0);
        EXPECT_DOUBLE_EQ(t.backwardEndKernelSec, 2.0);
        ASSERT_EQ(t.backwardKernelEnds.size(), 2u);
        EXPECT_DOUBLE_EQ(t.backwardKernelEnds[0], 1.5);
        EXPECT_DOUBLE_EQ(t.backwardKernelEnds[1], 2.0);
    }
}

TEST(TimelineCollector, MultipleBackwardSegmentsAccumulate)
{
    // ARGA runs backward twice per iteration: the window spans from
    // the first begin to the last end, and every gradient kernel
    // lands in backwardKernelEnds.
    TimelineCollector c(1e-6);
    c.onPhase(PhaseMark::IterationBegin);
    c.onKernel(kernel(1.0));
    c.onPhase(PhaseMark::BackwardBegin);
    c.onKernel(kernel(0.5));
    c.onPhase(PhaseMark::BackwardEnd);
    c.onKernel(kernel(0.2)); // between-backward compute
    c.onPhase(PhaseMark::BackwardBegin);
    c.onKernel(kernel(0.3));
    c.onPhase(PhaseMark::BackwardEnd);
    ASSERT_EQ(c.iterations().size(), 1u);
    const IterationTimeline &t = c.iterations()[0];
    EXPECT_TRUE(t.hasBackward());
    EXPECT_DOUBLE_EQ(t.backwardBeginKernelSec, 1.0);
    EXPECT_DOUBLE_EQ(t.backwardEndKernelSec, 2.0);
    ASSERT_EQ(t.backwardKernelEnds.size(), 2u);
    EXPECT_DOUBLE_EQ(t.backwardKernelEnds[0], 1.5);
    EXPECT_DOUBLE_EQ(t.backwardKernelEnds[1], 2.0);
}

TEST(TimelineCollector, ResetDropsState)
{
    TimelineCollector c(1e-6);
    c.onPhase(PhaseMark::IterationBegin);
    c.onKernel(kernel(1.0));
    c.reset();
    EXPECT_TRUE(c.iterations().empty());
    c.onKernel(kernel(1.0)); // back to warm-up: ignored
    EXPECT_TRUE(c.iterations().empty());
}
