/** @file Accuracy/cost validation of the device's nvprof-style
 *  per-kernel-name sampling (DESIGN.md decision #2): replayed
 *  launches must agree with fully-detailed simulation. */

#include <gtest/gtest.h>

#include "core/characterization.hh"
#include "core/suite.hh"

using namespace gnnmark;

namespace {

WorkloadProfile
profileWithLimit(int detail_limit)
{
    RunOptions opt;
    opt.scale = 0.25;
    opt.iterations = 4;
    opt.seed = 31;
    opt.deviceConfig.detailSampleLimit = detail_limit;
    CharacterizationRunner runner(opt);
    auto wl = BenchmarkSuite::create("DGCN");
    return runner.run(*wl);
}

} // namespace

TEST(SamplingAccuracy, ReplayedMetricsTrackDetailedOnes)
{
    // A tiny sampling budget (replaying almost everything) must give
    // metrics close to a generous budget (simulating almost
    // everything in detail).
    WorkloadProfile replayed = profileWithLimit(1);
    WorkloadProfile detailed = profileWithLimit(1000);

    EXPECT_EQ(replayed.profiler.totalLaunches(),
              detailed.profiler.totalLaunches());
    EXPECT_NEAR(replayed.profiler.totalKernelTimeSec(),
                detailed.profiler.totalKernelTimeSec(),
                detailed.profiler.totalKernelTimeSec() * 0.25);

    auto rb = replayed.profiler.opTimeBreakdown();
    auto db = detailed.profiler.opTimeBreakdown();
    for (size_t c = 0; c < kNumOpClasses; ++c)
        EXPECT_NEAR(rb[c], db[c], 0.08) << opClassName(
            static_cast<OpClass>(c));

    auto rmix = replayed.profiler.instructionMix();
    auto dmix = detailed.profiler.instructionMix();
    EXPECT_NEAR(rmix.int32Frac, dmix.int32Frac, 0.05);
    EXPECT_NEAR(rmix.fp32Frac, dmix.fp32Frac, 0.05);

    EXPECT_NEAR(replayed.profiler.divergentLoadFraction(),
                detailed.profiler.divergentLoadFraction(), 0.08);
}

TEST(SamplingAccuracy, InstructionTotalsIdenticalUnderReplay)
{
    // Instruction counts are exact per-warp rates scaled by geometry:
    // replay must preserve the totals to within averaging noise.
    WorkloadProfile replayed = profileWithLimit(1);
    WorkloadProfile detailed = profileWithLimit(1000);
    auto total = [](const WorkloadProfile &p) {
        const auto &mix = p.profiler.instructionMix();
        (void)mix;
        double flops = 0;
        for (OpClass c : allOpClasses())
            flops += p.profiler.classStats(c).flops;
        return flops;
    };
    EXPECT_NEAR(total(replayed), total(detailed),
                total(detailed) * 0.05);
}
