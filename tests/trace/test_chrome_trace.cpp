/** @file Chrome-trace exporter tests: well-formed Trace Event JSON
 *  from synthetic records and from a real (tiny) workload run. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <thread>

#include "base/io.hh"
#include "base/thread_pool.hh"
#include "core/characterization.hh"
#include "obs/json.hh"
#include "obs/span.hh"
#include "profiler/chrome_trace.hh"

using namespace gnnmark;

namespace {

KernelRecord
kernel(const std::string &name, double time_sec)
{
    KernelRecord record;
    record.name = name;
    record.opClass = OpClass::Gemm;
    record.timeSec = time_sec;
    record.ipc = 1.5;
    record.l1Accesses = 100;
    record.l1Hits = 80;
    return record;
}

} // namespace

TEST(ChromeTrace, EmitsCompleteEventsWithRunningClock)
{
    ChromeTraceWriter writer;
    writer.onKernel(kernel("gemm_a", 10e-6));
    writer.onKernel(kernel("gemm_b", 5e-6));
    TransferRecord copy;
    copy.tag = "features";
    copy.bytes = 4096;
    copy.zeroFraction = 0.5;
    copy.timeSec = 2e-6;
    writer.onTransfer(copy);
    EXPECT_EQ(writer.eventCount(), 3u);

    const std::string doc = writer.json();
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"gemm_a\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"H2D features\""), std::string::npos);
    // Kernels run on tid 0, transfers on tid 1.
    EXPECT_NE(doc.find("\"tid\":0,\"name\":\"gemm_a\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"tid\":1,\"name\":\"H2D features\""),
              std::string::npos);
    // gemm_b starts where gemm_a ended (10 us).
    EXPECT_NE(doc.find("\"ts\":10.0000,\"dur\":5.0000"),
              std::string::npos);
    EXPECT_NE(doc.find("\"l1_hit_rate\":\"0.8000\""), std::string::npos);
    EXPECT_NE(doc.find("\"zero_fraction\":\"0.5000\""),
              std::string::npos);
}

TEST(ChromeTrace, EscapesJsonMetacharacters)
{
    ChromeTraceWriter writer;
    writer.onKernel(kernel("evil\"name\\with\nnoise", 1e-6));
    const std::string doc = writer.json();
    EXPECT_NE(doc.find("evil\\\"name\\\\with\\nnoise"),
              std::string::npos);
    EXPECT_EQ(doc.find("evil\"name"), std::string::npos);
}

TEST(ChromeTrace, BalancedBracesAndQuotes)
{
    ChromeTraceWriter writer;
    for (int i = 0; i < 5; ++i)
        writer.onKernel(kernel("k" + std::to_string(i), 1e-6));
    const std::string doc = writer.json();
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (char c : doc) {
        if (escaped) {
            escaped = false;
            continue;
        }
        if (c == '\\') {
            escaped = true;
        } else if (c == '"') {
            in_string = !in_string;
        } else if (!in_string && (c == '{' || c == '[')) {
            ++depth;
        } else if (!in_string && (c == '}' || c == ']')) {
            --depth;
            EXPECT_GE(depth, 0);
        }
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(in_string);
}

TEST(ChromeTrace, CapturesARealRunThroughRunOptions)
{
    ChromeTraceWriter writer;
    RunOptions opt;
    opt.scale = 0.25;
    opt.iterations = 1;
    opt.extraObserver = &writer;
    CharacterizationRunner runner(opt);
    const WorkloadProfile profile = runner.run("STGCN");
    EXPECT_GE(static_cast<int64_t>(writer.eventCount()),
              profile.profiler.totalLaunches());

    const std::string path =
        ::testing::TempDir() + "gnnmark_chrome_trace.json";
    writer.write(path);
    const std::vector<uint8_t> bytes = readFileBytes(path);
    std::remove(path.c_str());
    EXPECT_EQ(bytes.size(), writer.json().size());
}

TEST(ChromeTrace, MergedTraceCarriesDeviceWorkerAndHostLanes)
{
    // One trace file must hold all three lane families: device events
    // (pid 1), the host thread's spans and pool-worker spans (pid 2).
    ThreadPool &pool = ThreadPool::instance();
    const int saved_threads = pool.threadCount();
    pool.setThreadCount(3);
    obs::SpanTracer &tracer = obs::SpanTracer::instance();
    tracer.clear();
    tracer.setEnabled(true);

    ChromeTraceWriter writer;
    RunOptions opt;
    opt.scale = 0.25;
    opt.iterations = 1;
    opt.extraObserver = &writer;
    CharacterizationRunner runner(opt);
    runner.run("STGCN");

    // The tiny workload may run its loops inline on the caller, so
    // pin down the worker lanes deterministically: every chunk sleeps
    // until both pool workers have claimed (and span-traced) a chunk
    // of their own. On a single-CPU host any one thread — the caller
    // or a single eager worker — can otherwise drain the whole range
    // before the others are ever scheduled.
    std::atomic<bool> worker_seen[2] = {};
    ThreadPool::instance().parallelFor(
        0, 64, 1, [&](int64_t, int64_t) {
            GNN_SPAN("test.worker_chunk");
            const int w = ThreadPool::currentWorkerIndex();
            if (w >= 0 && w < 2)
                worker_seen[w] = true;
            for (int spin = 0;
                 spin < 5000 && !(worker_seen[0] && worker_seen[1]);
                 ++spin)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
        });

    tracer.setEnabled(false);
    writer.addHostSpans(tracer.collect());
    tracer.clear();
    pool.setThreadCount(saved_threads);

    const obs::JsonValue doc = obs::parseJson(writer.json());
    const obs::JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    bool device_kernel = false;
    bool host_span = false;
    bool worker_span = false;
    std::set<std::string> process_names;
    std::set<std::string> thread_names;
    for (const obs::JsonValue &e : events->array) {
        const obs::JsonValue *ph = e.find("ph");
        const obs::JsonValue *pid = e.find("pid");
        ASSERT_NE(ph, nullptr);
        ASSERT_NE(pid, nullptr);
        if (ph->string == "M") {
            const std::string meta_name = e.find("name")->string;
            const std::string label =
                e.find("args")->find("name")->string;
            if (meta_name == "process_name")
                process_names.insert(label);
            if (meta_name == "thread_name")
                thread_names.insert(label);
            continue;
        }
        ASSERT_EQ(ph->string, "X");
        ASSERT_TRUE(e.find("ts")->isNumber());
        ASSERT_TRUE(e.find("dur")->isNumber());
        if (pid->number == 1 && e.find("tid")->number == 0)
            device_kernel = true;
        if (pid->number == 2) {
            if (e.find("tid")->number == 0)
                host_span = true;
            else
                worker_span = true;
        }
    }
    EXPECT_TRUE(device_kernel);
    EXPECT_TRUE(host_span);
    EXPECT_TRUE(worker_span);
    EXPECT_EQ(process_names,
              (std::set<std::string>{"device (sim time)",
                                     "host (wall clock)"}));
    EXPECT_TRUE(thread_names.count("kernels"));
    EXPECT_TRUE(thread_names.count("host"));
    std::string all_names;
    for (const std::string &n : thread_names)
        all_names += n + " ";
    EXPECT_TRUE(thread_names.count("worker-0")) << all_names;
}

TEST(ChromeTrace, RankLanesAndMirroring)
{
    ChromeTraceWriter writer;
    writer.onKernel(kernel("k0", 1e-6));
    writer.setRank(1);
    writer.onKernel(kernel("k1", 2e-6));
    writer.setRank(0);
    writer.onKernel(kernel("k0b", 3e-6));

    const std::string doc = writer.json();
    // Rank 0 keeps tid 0; rank 1's kernels run on tid 2.
    EXPECT_NE(doc.find("\"tid\":0,\"name\":\"k0\""), std::string::npos);
    EXPECT_NE(doc.find("\"tid\":2,\"name\":\"k1\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"kernels rank 1\""),
              std::string::npos);
    // Per-rank clocks are independent: k0b starts at rank 0's 1 us.
    EXPECT_NE(doc.find("\"ts\":1.0000,\"dur\":3.0000"),
              std::string::npos);
}

TEST(ChromeTrace, MirrorDeviceLanesCopiesRankZero)
{
    ChromeTraceWriter writer;
    writer.onKernel(kernel("k", 1e-6));
    TransferRecord copy;
    copy.tag = "feat";
    copy.bytes = 64;
    copy.timeSec = 1e-6;
    writer.onTransfer(copy);
    const size_t before = writer.eventCount();
    writer.mirrorDeviceLanes(3);
    // Ranks 1 and 2 each get a copy of both rank-0 events.
    EXPECT_EQ(writer.eventCount(), before + 4);
    const std::string doc = writer.json();
    EXPECT_NE(doc.find("\"mirrored\":\"true\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"kernels rank 2\""),
              std::string::npos);
}

TEST(ChromeTrace, RequestLanesLandOnTheirOwnProcess)
{
    ChromeTraceWriter writer;
    writer.onKernel(kernel("gemm_a", 10e-6));

    std::vector<obs::RequestTrace> traces(2);
    traces[0].id = 32;
    traces[0].outcome = "full";
    traces[0].spans.push_back({"arrival", 0.010, 0.010, ""});
    traces[0].spans.push_back({"infer", 0.011, 0.013, "replica=1"});
    traces[1].id = 45;
    traces[1].outcome = "shed";
    traces[1].exemplar = true;
    traces[1].spans.push_back({"admission_reject", 0.020, 0.020, ""});
    writer.addRequestLanes(traces);
    EXPECT_EQ(writer.eventCount(), 4u);

    const std::string doc = writer.json();
    const obs::JsonValue parsed = obs::parseJson(doc);
    ASSERT_TRUE(parsed.find("traceEvents")->isArray());

    // Each request gets a named lane on pid 3; exemplars say so.
    EXPECT_NE(doc.find("\"serving requests (sim time)\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"req 32 (full)\""), std::string::npos);
    EXPECT_NE(doc.find("\"req 45 [exemplar] (shed)\""),
              std::string::npos);
    // Spans carry simulated-time microseconds and their detail.
    EXPECT_NE(doc.find("\"cat\":\"request\""), std::string::npos);
    EXPECT_NE(doc.find("\"replica=1\""), std::string::npos);
    // Device events stay on pid 1, requests on pid 3.
    EXPECT_NE(doc.find("\"pid\":3"), std::string::npos);
}

TEST(ChromeTrace, NoRequestLanesMeansNoThirdProcess)
{
    ChromeTraceWriter writer;
    writer.onKernel(kernel("gemm_a", 10e-6));
    writer.addRequestLanes({});
    EXPECT_EQ(writer.json().find("\"pid\":3"), std::string::npos);
}
