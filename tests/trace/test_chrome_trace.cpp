/** @file Chrome-trace exporter tests: well-formed Trace Event JSON
 *  from synthetic records and from a real (tiny) workload run. */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "base/io.hh"
#include "core/characterization.hh"
#include "profiler/chrome_trace.hh"

using namespace gnnmark;

namespace {

KernelRecord
kernel(const std::string &name, double time_sec)
{
    KernelRecord record;
    record.name = name;
    record.opClass = OpClass::Gemm;
    record.timeSec = time_sec;
    record.ipc = 1.5;
    record.l1Accesses = 100;
    record.l1Hits = 80;
    return record;
}

} // namespace

TEST(ChromeTrace, EmitsCompleteEventsWithRunningClock)
{
    ChromeTraceWriter writer;
    writer.onKernel(kernel("gemm_a", 10e-6));
    writer.onKernel(kernel("gemm_b", 5e-6));
    TransferRecord copy;
    copy.tag = "features";
    copy.bytes = 4096;
    copy.zeroFraction = 0.5;
    copy.timeSec = 2e-6;
    writer.onTransfer(copy);
    EXPECT_EQ(writer.eventCount(), 3u);

    const std::string doc = writer.json();
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"gemm_a\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"H2D features\""), std::string::npos);
    // Kernels run on tid 0, transfers on tid 1.
    EXPECT_NE(doc.find("\"tid\":0,\"name\":\"gemm_a\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"tid\":1,\"name\":\"H2D features\""),
              std::string::npos);
    // gemm_b starts where gemm_a ended (10 us).
    EXPECT_NE(doc.find("\"ts\":10.0000,\"dur\":5.0000"),
              std::string::npos);
    EXPECT_NE(doc.find("\"l1_hit_rate\":\"0.8000\""), std::string::npos);
    EXPECT_NE(doc.find("\"zero_fraction\":\"0.5000\""),
              std::string::npos);
}

TEST(ChromeTrace, EscapesJsonMetacharacters)
{
    ChromeTraceWriter writer;
    writer.onKernel(kernel("evil\"name\\with\nnoise", 1e-6));
    const std::string doc = writer.json();
    EXPECT_NE(doc.find("evil\\\"name\\\\with\\nnoise"),
              std::string::npos);
    EXPECT_EQ(doc.find("evil\"name"), std::string::npos);
}

TEST(ChromeTrace, BalancedBracesAndQuotes)
{
    ChromeTraceWriter writer;
    for (int i = 0; i < 5; ++i)
        writer.onKernel(kernel("k" + std::to_string(i), 1e-6));
    const std::string doc = writer.json();
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (char c : doc) {
        if (escaped) {
            escaped = false;
            continue;
        }
        if (c == '\\') {
            escaped = true;
        } else if (c == '"') {
            in_string = !in_string;
        } else if (!in_string && (c == '{' || c == '[')) {
            ++depth;
        } else if (!in_string && (c == '}' || c == ']')) {
            --depth;
            EXPECT_GE(depth, 0);
        }
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(in_string);
}

TEST(ChromeTrace, CapturesARealRunThroughRunOptions)
{
    ChromeTraceWriter writer;
    RunOptions opt;
    opt.scale = 0.25;
    opt.iterations = 1;
    opt.extraObserver = &writer;
    CharacterizationRunner runner(opt);
    const WorkloadProfile profile = runner.run("STGCN");
    EXPECT_GE(static_cast<int64_t>(writer.eventCount()),
              profile.profiler.totalLaunches());

    const std::string path =
        ::testing::TempDir() + "gnnmark_chrome_trace.json";
    writer.write(path);
    const std::vector<uint8_t> bytes = readFileBytes(path);
    std::remove(path.c_str());
    EXPECT_EQ(bytes.size(), writer.json().size());
}
