/** @file File-level trace I/O tests: round trip through disk, and a
 *  typed IoError for every way a trace file can be malformed. */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "base/io.hh"
#include "common/file_corruption.hh"
#include "sim/warp_trace.hh"
#include "trace/reader.hh"
#include "trace/toolkit.hh"
#include "trace/writer.hh"

using namespace gnnmark;
using namespace gnnmark::trace;

namespace {

/** A small synthetic trace exercising every event kind. */
RecordedTrace
makeTrace()
{
    RecordedTrace trace;
    trace.header.workload = "SYNTH";
    trace.header.seed = 99;
    trace.header.scale = 0.5;
    trace.header.iterations = 3;
    trace.header.warmupIterations = 1;
    trace.header.iterationsPerEpoch = 24;
    trace.header.parameterBytes = 1.5e6;
    trace.header.losses = {1.5f, 1.25f, 1.125f};
    trace.header.config = GpuConfig::v100();
    trace.header.config.detailSampleLimit = 3;

    trace.events.emplace_back(
        TransferEvent{"features", 0x7f00dead0000ULL, 1 << 16, 0.33});
    trace.events.emplace_back(TraceMarker::TimersReset);
    for (int launch_idx = 0; launch_idx < 4; ++launch_idx) {
        LaunchEvent launch;
        launch.name = launch_idx % 2 == 0 ? "gemm_128" : "relu_4096";
        launch.opClass = launch_idx % 2 == 0 ? OpClass::Gemm
                                             : OpClass::ElementWise;
        launch.blocks = 16 + launch_idx;
        launch.warpsPerBlock = 4;
        launch.inputRanges = {{0x1000, 4096}};
        launch.outputRanges = {{0x9000, 2048}};
        for (int w = 0; w < 2; ++w) {
            WarpTrace wt;
            WarpTraceSink sink(wt, 128, 128);
            sink.fma(4 + launch_idx);
            sink.loadCoalesced(0x1000 + static_cast<uint64_t>(w) * 128,
                               4);
            sink.storeCoalesced(0x9000, 4);
            launch.warps.push_back(
                {static_cast<int64_t>(launch_idx * 64 + w), wt});
        }
        trace.events.emplace_back(std::move(launch));
        if (launch_idx == 1)
            trace.events.emplace_back(TraceMarker::IterationBegin);
    }
    return trace;
}

} // namespace

class TraceFile : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "gnnmark_trace_io.gnntrace";
        writeTraceFile(path_, makeTrace());
    }

    void TearDown() override { std::remove(path_.c_str()); }

    IoError::Kind
    readKind()
    {
        try {
            readTraceFile(path_);
        } catch (const IoError &e) {
            return e.kind();
        }
        ADD_FAILURE() << "readTraceFile accepted a malformed file";
        return IoError::Kind::OpenFailed;
    }

    std::string path_;
};

TEST_F(TraceFile, RoundTripsThroughDisk)
{
    const RecordedTrace ref = makeTrace();
    const RecordedTrace back = readTraceFile(path_);

    EXPECT_EQ(back.header.workload, "SYNTH");
    EXPECT_EQ(back.header.seed, 99u);
    EXPECT_DOUBLE_EQ(back.header.scale, 0.5);
    EXPECT_EQ(back.header.iterations, 3);
    EXPECT_EQ(back.header.warmupIterations, 1);
    EXPECT_EQ(back.header.iterationsPerEpoch, 24);
    EXPECT_DOUBLE_EQ(back.header.parameterBytes, 1.5e6);
    EXPECT_EQ(back.header.losses, ref.header.losses);
    EXPECT_EQ(back.header.config.detailSampleLimit, 3);
    ASSERT_EQ(back.events.size(), ref.events.size());

    // Serialization is canonical: an exact re-encode proves deep
    // equality of every event without a field-by-field comparator.
    EXPECT_EQ(serializeTrace(back), serializeTrace(ref));
}

TEST_F(TraceFile, StatsSeeTheSyntheticStream)
{
    const TraceStats stats = computeTraceStats(readTraceFile(path_));
    EXPECT_EQ(stats.launches, 4);
    EXPECT_EQ(stats.transfers, 1);
    EXPECT_EQ(stats.markers, 2);
    EXPECT_EQ(stats.tracedWarps, 8);
    EXPECT_EQ(
        stats.perClass[static_cast<size_t>(OpClass::Gemm)].launches, 2);
    EXPECT_EQ(stats.perClass[static_cast<size_t>(OpClass::ElementWise)]
                  .launches,
              2);
    EXPECT_GT(stats.uniqueLines, 0u);
}

TEST_F(TraceFile, EncodedBeatsNaiveDump)
{
    const RecordedTrace trace = readTraceFile(path_);
    EXPECT_LT(serializeTrace(trace).size(), naiveSizeBytes(trace));
}

TEST_F(TraceFile, TruncationIsShortRead)
{
    test::truncateToFraction(path_, 0.6);
    EXPECT_EQ(readKind(), IoError::Kind::ShortRead);
}

TEST_F(TraceFile, HeaderBitFlipIsCorrupt)
{
    test::flipByteAt(path_, 24); // inside the header section
    EXPECT_EQ(readKind(), IoError::Kind::Corrupt);
}

TEST_F(TraceFile, PayloadBitFlipIsCorrupt)
{
    test::flipByteAt(path_, -12); // inside the payload, pre-checksum
    EXPECT_EQ(readKind(), IoError::Kind::Corrupt);
}

TEST_F(TraceFile, WrongMagicIsBadMagic)
{
    test::flipByteAt(path_, 3);
    EXPECT_EQ(readKind(), IoError::Kind::BadMagic);
}

TEST_F(TraceFile, FutureVersionIsBadVersion)
{
    test::flipByteAt(path_, 8); // low byte of the version word
    EXPECT_EQ(readKind(), IoError::Kind::BadVersion);
}

TEST_F(TraceFile, TrailingGarbageIsTrailingBytes)
{
    test::appendGarbage(path_, 16);
    EXPECT_EQ(readKind(), IoError::Kind::TrailingBytes);
}

TEST_F(TraceFile, MissingFileIsOpenFailed)
{
    std::remove(path_.c_str());
    EXPECT_EQ(readKind(), IoError::Kind::OpenFailed);
}

TEST_F(TraceFile, EverySingleByteFlipIsCaught)
{
    // Exhaustive single-bit-flip sweep over the whole image: the
    // checksum (or a structural check before it) must reject every
    // one — a trace reader that silently accepts corruption would
    // poison downstream sweeps.
    const std::vector<uint8_t> good = readFileBytes(path_);
    for (size_t i = 0; i < good.size(); ++i) {
        std::vector<uint8_t> bad = good;
        bad[i] ^= 0x01;
        EXPECT_THROW((void)parseTrace(bad, "flipped"), IoError)
            << "byte " << i << " flip was accepted";
    }
}
