/** @file Record→replay fidelity: on the recording configuration, a
 *  replayed trace must reproduce the live characterization bitwise —
 *  every profiler aggregate and every printed report. On other
 *  configurations it must price the what-if sensibly. */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/reports.hh"
#include "obs/span.hh"
#include "core/suite.hh"
#include "core/trace_capture.hh"
#include "trace/reader.hh"
#include "trace/replayer.hh"
#include "trace/writer.hh"

using namespace gnnmark;

namespace {

RunOptions
smallRun()
{
    RunOptions opt;
    opt.seed = 7;
    opt.scale = 0.25;
    opt.iterations = 2;
    opt.warmupIterations = 1;
    return opt;
}

/** Assert every aggregate the paper reports matches exactly. */
void
expectProfilesIdentical(const WorkloadProfile &live,
                        const WorkloadProfile &replayed)
{
    EXPECT_EQ(live.profiler.totalLaunches(),
              replayed.profiler.totalLaunches());
    EXPECT_EQ(live.profiler.totalKernelTimeSec(),
              replayed.profiler.totalKernelTimeSec());
    EXPECT_EQ(live.profiler.l1HitRate(), replayed.profiler.l1HitRate());
    EXPECT_EQ(live.profiler.l2HitRate(), replayed.profiler.l2HitRate());
    EXPECT_EQ(live.profiler.divergentLoadFraction(),
              replayed.profiler.divergentLoadFraction());
    EXPECT_EQ(live.profiler.gflops(), replayed.profiler.gflops());
    EXPECT_EQ(live.profiler.giops(), replayed.profiler.giops());
    EXPECT_EQ(live.profiler.avgIpc(), replayed.profiler.avgIpc());

    const auto live_mix = live.profiler.instructionMix();
    const auto replay_mix = replayed.profiler.instructionMix();
    EXPECT_EQ(live_mix.int32Frac, replay_mix.int32Frac);
    EXPECT_EQ(live_mix.fp32Frac, replay_mix.fp32Frac);
    EXPECT_EQ(live_mix.otherFrac, replay_mix.otherFrac);

    EXPECT_EQ(live.profiler.stallBreakdown(),
              replayed.profiler.stallBreakdown());
    EXPECT_EQ(live.profiler.opTimeBreakdown(),
              replayed.profiler.opTimeBreakdown());
    EXPECT_EQ(live.profiler.avgTransferSparsity(),
              replayed.profiler.avgTransferSparsity());
    EXPECT_EQ(live.profiler.totalTransferBytes(),
              replayed.profiler.totalTransferBytes());

    EXPECT_EQ(live.wallTimeSec, replayed.wallTimeSec);
    EXPECT_EQ(live.epochTimeSec, replayed.epochTimeSec);
    EXPECT_EQ(live.iterationsPerEpoch, replayed.iterationsPerEpoch);
    EXPECT_EQ(live.parameterBytes, replayed.parameterBytes);
    EXPECT_EQ(live.losses, replayed.losses);
}

/** Render every report the paper derives from one profile. */
std::string
renderReports(const WorkloadProfile &profile)
{
    std::ostringstream os;
    const std::vector<WorkloadProfile> profiles = {profile};
    reports::printFig2OpBreakdown(profiles, os);
    reports::printFig3InstructionMix(profiles, os);
    reports::printFig4Throughput(profiles, os);
    reports::printFig5Stalls(profiles, os);
    reports::printFig6Cache(profiles, os);
    reports::printFig7Sparsity(profiles, os);
    reports::printKernelTable(profile, os);
    return os.str();
}

} // namespace

/** Per-ISSUE acceptance: every suite workload round-trips. */
class TraceReplayFidelity : public ::testing::TestWithParam<std::string>
{
};

TEST_P(TraceReplayFidelity, ReplayMatchesLiveRunExactly)
{
    WorkloadProfile live;
    const trace::RecordedTrace trace =
        recordWorkloadTrace(GetParam(), smallRun(), &live);
    ASSERT_FALSE(trace.events.empty());

    const WorkloadProfile replayed =
        toWorkloadProfile(trace::replayTrace(trace));
    EXPECT_EQ(replayed.name, live.name);
    expectProfilesIdentical(live, replayed);
}

TEST_P(TraceReplayFidelity, SerializedReplayMatchesToo)
{
    // The fidelity must survive the disk format, not just the
    // in-memory event list.
    WorkloadProfile live;
    const trace::RecordedTrace trace =
        recordWorkloadTrace(GetParam(), smallRun(), &live);
    const std::vector<uint8_t> bytes = trace::serializeTrace(trace);
    const trace::RecordedTrace loaded =
        trace::parseTrace(bytes, "in-memory trace");

    expectProfilesIdentical(
        live, toWorkloadProfile(trace::replayTrace(loaded)));
}

INSTANTIATE_TEST_SUITE_P(
    Suite, TraceReplayFidelity,
    ::testing::ValuesIn(BenchmarkSuite::workloadNames()),
    [](const auto &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

/** Bitwise-identical *printed reports* for three workloads. */
class TraceReplayReports : public ::testing::TestWithParam<std::string>
{
};

TEST_P(TraceReplayReports, PrintedReportsAreBitwiseIdentical)
{
    WorkloadProfile live;
    const trace::RecordedTrace trace =
        recordWorkloadTrace(GetParam(), smallRun(), &live);
    const WorkloadProfile replayed =
        toWorkloadProfile(trace::replayTrace(trace));
    EXPECT_EQ(renderReports(live), renderReports(replayed));
}

INSTANTIATE_TEST_SUITE_P(Suite, TraceReplayReports,
                         ::testing::Values("STGCN", "KGNNL", "ARGA"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

TEST(TraceReplay, ReplayIsRepeatable)
{
    const trace::RecordedTrace trace =
        recordWorkloadTrace("STGCN", smallRun());
    const WorkloadProfile a =
        toWorkloadProfile(trace::replayTrace(trace));
    const WorkloadProfile b =
        toWorkloadProfile(trace::replayTrace(trace));
    expectProfilesIdentical(a, b);
}

TEST(TraceReplay, LargerL2ImprovesHitRate)
{
    const trace::RecordedTrace trace =
        recordWorkloadTrace("STGCN", smallRun());

    GpuConfig small = trace.header.config;
    small.l2SizeBytes = 1 * MiB;
    GpuConfig large = trace.header.config;
    large.l2SizeBytes = 48 * MiB;

    const auto results = trace::sweepTrace(trace, {small, large});
    ASSERT_EQ(results.size(), 2u);
    EXPECT_LT(results[0].profiler.l2HitRate(),
              results[1].profiler.l2HitRate());
    // More cache never hurts the modeled epoch time.
    EXPECT_GE(results[0].wallTimeSec, results[1].wallTimeSec);
}

TEST(TraceReplay, SmCountSweepStillRuns)
{
    // Changing the SM count changes which warps the device wants to
    // simulate; the archive fallback must cover the difference.
    const trace::RecordedTrace trace =
        recordWorkloadTrace("KGNNL", smallRun());
    GpuConfig fewer = trace.header.config;
    fewer.numSms = 40;
    const trace::ReplayResult result = trace::replayTrace(trace, fewer);
    EXPECT_GT(result.kernelLaunches, 0);
    EXPECT_GT(result.wallTimeSec, 0);
}

TEST(TraceReplay, ReplayCountsMatchTraceStream)
{
    const trace::RecordedTrace trace =
        recordWorkloadTrace("ARGA", smallRun());
    int64_t launches_in_stream = 0;
    for (const auto &event : trace.events)
        if (std::holds_alternative<trace::LaunchEvent>(event))
            ++launches_in_stream;
    const trace::ReplayResult result = trace::replayTrace(trace);
    EXPECT_EQ(result.profiler.totalLaunches(), launches_in_stream);
}

TEST(TraceReplay, EnablingObservabilityDoesNotPerturbTheReport)
{
    // Replays are fully deterministic (addresses come from the trace),
    // so this asserts the observability layer's core guarantee
    // byte-for-byte: span tracing on or off, the printed reports are
    // identical.
    const trace::RecordedTrace trace =
        recordWorkloadTrace("STGCN", smallRun());
    obs::SpanTracer &tracer = obs::SpanTracer::instance();
    tracer.setEnabled(false);
    const std::string off =
        renderReports(toWorkloadProfile(trace::replayTrace(trace)));
    tracer.setEnabled(true);
    const std::string on =
        renderReports(toWorkloadProfile(trace::replayTrace(trace)));
    tracer.setEnabled(false);
    tracer.clear();
    EXPECT_EQ(off, on);
    EXPECT_GT(off.size(), 0u);
}

TEST(TraceReplay, ReplayRecoversIterationTimelines)
{
    // v2 traces carry backward phase markers, so a replay can rebuild
    // the per-iteration kernel timelines the DDP overlap model prices
    // gradient buckets against.
    const trace::RecordedTrace trace =
        recordWorkloadTrace("STGCN", smallRun());
    const trace::ReplayResult result = trace::replayTrace(trace);
    ASSERT_EQ(result.iterations.size(),
              static_cast<size_t>(smallRun().iterations));
    for (const IterationTimeline &t : result.iterations) {
        EXPECT_GT(t.kernelSec, 0);
        EXPECT_GT(t.kernelCount, 0);
        EXPECT_TRUE(t.hasBackward());
        EXPECT_GT(t.backwardEndKernelSec, t.backwardBeginKernelSec);
        EXPECT_LE(t.backwardEndKernelSec, t.kernelSec * (1 + 1e-12));
        // Backward kernel ends are cumulative and ordered.
        double prev = t.backwardBeginKernelSec;
        for (double end : t.backwardKernelEnds) {
            EXPECT_GE(end, prev);
            prev = end;
        }
    }
}

TEST(TraceReplay, DoubleBackwardWorkloadKeepsOneWindowPerIteration)
{
    // ARGA runs two backward sweeps per iteration; the collector must
    // still produce exactly one (merged) window per iteration.
    const trace::RecordedTrace trace =
        recordWorkloadTrace("ARGA", smallRun());
    const trace::ReplayResult result = trace::replayTrace(trace);
    ASSERT_EQ(result.iterations.size(),
              static_cast<size_t>(smallRun().iterations));
    for (const IterationTimeline &t : result.iterations)
        EXPECT_TRUE(t.hasBackward());
}
