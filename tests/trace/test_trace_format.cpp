/** @file Codec-level tests for the binary trace format: varint edge
 *  cases, per-structure round trips, and string-table interning. */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "base/io.hh"
#include "sim/warp_trace.hh"
#include "trace/format.hh"

using namespace gnnmark;
using namespace gnnmark::trace;

namespace {

ByteCursor
cursorOver(const ByteBuilder &b)
{
    return ByteCursor(b.buffer().data(), b.size(), "test image");
}

/** Build a realistic warp trace through the production sink. */
WarpTrace
makeWarpTrace(uint64_t base, int cap = 64)
{
    WarpTrace trace;
    WarpTraceSink sink(trace, cap, 128);
    sink.fma(3);
    sink.loadCoalesced(base, 4);
    sink.int32(2);
    // A divergent gather: every lane on its own line.
    uint64_t addrs[32];
    for (int lane = 0; lane < 32; ++lane)
        addrs[lane] = base + 4096 + static_cast<uint64_t>(lane) * 512;
    sink.loadGlobal(addrs, 32, 4);
    sink.sharedStore();
    sink.barrier();
    sink.storeCoalesced(base + 65536, 4);
    sink.sfu(1);
    sink.scaleRemainder(2.5);
    return trace;
}

} // namespace

TEST(TraceVarint, EdgeValuesRoundTrip)
{
    const std::vector<uint64_t> values = {
        0,   1,   127, 128, 129, 16383, 16384, 1ULL << 32,
        (1ULL << 63) - 1, std::numeric_limits<uint64_t>::max()};
    ByteBuilder b;
    for (uint64_t v : values)
        b.varint(v);
    ByteCursor c = cursorOver(b);
    for (uint64_t v : values)
        EXPECT_EQ(c.varint(), v);
    EXPECT_TRUE(c.exhausted());
}

TEST(TraceVarint, SignedZigzagRoundTrip)
{
    const std::vector<int64_t> values = {
        0, -1, 1, -64, 64, -65, 12345, -12345,
        std::numeric_limits<int64_t>::min(),
        std::numeric_limits<int64_t>::max()};
    ByteBuilder b;
    for (int64_t v : values)
        b.svarint(v);
    ByteCursor c = cursorOver(b);
    for (int64_t v : values)
        EXPECT_EQ(c.svarint(), v);
    EXPECT_TRUE(c.exhausted());
}

TEST(TraceVarint, SmallValuesStaySmall)
{
    ByteBuilder b;
    b.varint(127);
    EXPECT_EQ(b.size(), 1u);
    b.varint(128);
    EXPECT_EQ(b.size(), 3u);
}

TEST(TraceVarint, TruncatedVarintIsShortRead)
{
    ByteBuilder b;
    b.u8(0x80); // continuation bit set, then nothing
    ByteCursor c = cursorOver(b);
    try {
        c.varint();
        FAIL() << "accepted a truncated varint";
    } catch (const IoError &e) {
        EXPECT_EQ(e.kind(), IoError::Kind::ShortRead);
    }
}

TEST(TraceFloat, DoublesAreBitExact)
{
    const std::vector<double> values = {0.0, -0.0, 1.0 / 3.0, 1e300,
                                        -4.9e-324, 3.14159};
    ByteBuilder b;
    for (double v : values)
        b.f64(v);
    ByteCursor c = cursorOver(b);
    for (double v : values) {
        double got = c.f64();
        EXPECT_EQ(std::memcmp(&got, &v, sizeof(v)), 0);
    }
}

TEST(TraceFormat, GpuConfigRoundTripsEveryField)
{
    GpuConfig cfg = GpuConfig::a100();
    cfg.l1BypassIrregular = true;
    cfg.h2dCompression = true;
    cfg.detailSampleLimit = 11;
    cfg.aluIlp = 3.25;
    ByteBuilder b;
    encodeGpuConfig(b, cfg);
    ByteCursor c = cursorOver(b);
    const GpuConfig back = decodeGpuConfig(c);
    EXPECT_TRUE(c.exhausted());
    // Structural equality via the codec itself: re-encode and compare.
    ByteBuilder b2;
    encodeGpuConfig(b2, back);
    EXPECT_EQ(b.buffer(), b2.buffer());
    EXPECT_EQ(back.numSms, cfg.numSms);
    EXPECT_EQ(back.l2SizeBytes, cfg.l2SizeBytes);
    EXPECT_EQ(back.detailSampleLimit, 11);
    EXPECT_TRUE(back.l1BypassIrregular);
    EXPECT_DOUBLE_EQ(back.aluIlp, 3.25);
}

TEST(TraceFormat, RangesDeltaCodecRoundTrips)
{
    const std::vector<std::pair<uint64_t, uint64_t>> ranges = {
        {0x7f0000001000ULL, 4096},
        {0x7f0000002000ULL, 128},   // forward delta
        {0x7e0000000000ULL, 1 << 20}, // backward delta
        {0, 1},
    };
    ByteBuilder b;
    encodeRanges(b, ranges);
    ByteCursor c = cursorOver(b);
    EXPECT_EQ(decodeRanges(c), ranges);
    EXPECT_TRUE(c.exhausted());

    ByteBuilder empty;
    encodeRanges(empty, {});
    ByteCursor ce = cursorOver(empty);
    EXPECT_TRUE(decodeRanges(ce).empty());
}

TEST(TraceFormat, WarpTraceRoundTripsExactly)
{
    const WarpTrace trace = makeWarpTrace(0x7f1234560000ULL);
    ASSERT_GT(trace.ops.size(), 0u);
    ASSERT_GT(trace.lines.size(), 0u);

    ByteBuilder b;
    encodeWarpTrace(b, trace);
    ByteCursor c = cursorOver(b);
    const WarpTrace back = decodeWarpTrace(c);
    EXPECT_TRUE(c.exhausted());

    EXPECT_EQ(back.recordedInstrs, trace.recordedInstrs);
    EXPECT_EQ(back.lines, trace.lines);
    EXPECT_EQ(back.counts.fp32, trace.counts.fp32);
    EXPECT_EQ(back.counts.int32, trace.counts.int32);
    EXPECT_EQ(back.counts.misc, trace.counts.misc);
    EXPECT_EQ(back.counts.loads, trace.counts.loads);
    EXPECT_EQ(back.counts.stores, trace.counts.stores);
    EXPECT_DOUBLE_EQ(back.counts.flops, trace.counts.flops);
    EXPECT_DOUBLE_EQ(back.counts.intOps, trace.counts.intOps);
    ASSERT_EQ(back.ops.size(), trace.ops.size());
    for (size_t i = 0; i < trace.ops.size(); ++i) {
        EXPECT_EQ(back.ops[i].kind, trace.ops[i].kind) << i;
        EXPECT_EQ(back.ops[i].lineCount, trace.ops[i].lineCount) << i;
        EXPECT_EQ(back.ops[i].minLines, trace.ops[i].minLines) << i;
        EXPECT_EQ(back.ops[i].lineBegin, trace.ops[i].lineBegin) << i;
    }
}

TEST(TraceFormat, CoalescedStreamsCompressWell)
{
    // A long perfectly-strided stream: the line pool must collapse to
    // (delta, run) pairs, far below 8 bytes/line.
    WarpTrace trace;
    WarpTraceSink sink(trace, 4096, 128);
    for (int i = 0; i < 1000; ++i)
        sink.loadCoalesced(0x10000000ULL + static_cast<uint64_t>(i) * 128,
                           4, 32);
    ByteBuilder b;
    encodeWarpTrace(b, trace);
    const size_t naive = trace.lines.size() * sizeof(uint64_t) +
                         trace.ops.size() * sizeof(TraceOp);
    EXPECT_LT(b.size() * 10, naive)
        << "stride RLE should beat raw structs 10x on coalesced "
           "streams";
}

TEST(TraceFormat, StringTableInternsRepeats)
{
    StringTableWriter w;
    ByteBuilder b;
    const std::string name = "a_rather_long_kernel_name_indeed";
    w.put(b, name);
    const size_t first = b.size();
    for (int i = 0; i < 9; ++i)
        w.put(b, name);
    EXPECT_LT(b.size() - first, first) << "repeats must not re-emit";

    StringTableReader r;
    ByteCursor c = cursorOver(b);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(r.get(c), name);
    EXPECT_TRUE(c.exhausted());
}

TEST(TraceFormat, EventCodecRoundTripsAllKinds)
{
    LaunchEvent launch;
    launch.name = "spmm_csr";
    launch.opClass = OpClass::SpMM;
    launch.blocks = 420;
    launch.warpsPerBlock = 8;
    launch.codeBytes = 9000;
    launch.aluIlp = 1.75;
    launch.loadDepFraction = 0.8;
    launch.irregular = true;
    launch.outputRanges = {{0x1000, 512}};
    launch.inputRanges = {{0x8000, 4096}, {0x2000, 64}};
    launch.warps.push_back({7, makeWarpTrace(0x40000)});
    launch.warps.push_back({2048, makeWarpTrace(0x90000)});

    const TransferEvent transfer{"features", 0xdeadbeef000ULL, 1 << 20,
                                 0.42};

    StringTableWriter w;
    ByteBuilder b;
    encodeEvent(b, w, TraceEvent(launch));
    encodeEvent(b, w, TraceEvent(transfer));
    encodeEvent(b, w, TraceEvent(TraceMarker::IterationBegin));

    StringTableReader r;
    ByteCursor c = cursorOver(b);

    const TraceEvent e1 = decodeEvent(c, r);
    const auto *k = std::get_if<LaunchEvent>(&e1);
    ASSERT_NE(k, nullptr);
    EXPECT_EQ(k->name, launch.name);
    EXPECT_EQ(k->opClass, launch.opClass);
    EXPECT_EQ(k->blocks, launch.blocks);
    EXPECT_EQ(k->warpsPerBlock, launch.warpsPerBlock);
    EXPECT_EQ(k->codeBytes, launch.codeBytes);
    EXPECT_DOUBLE_EQ(k->aluIlp, launch.aluIlp);
    EXPECT_DOUBLE_EQ(k->loadDepFraction, launch.loadDepFraction);
    EXPECT_EQ(k->irregular, launch.irregular);
    EXPECT_EQ(k->outputRanges, launch.outputRanges);
    EXPECT_EQ(k->inputRanges, launch.inputRanges);
    ASSERT_EQ(k->warps.size(), 2u);
    EXPECT_EQ(k->warps[0].warpId, 7);
    EXPECT_EQ(k->warps[1].warpId, 2048);
    EXPECT_EQ(k->warps[1].trace.lines, launch.warps[1].trace.lines);

    const TraceEvent e2 = decodeEvent(c, r);
    const auto *t = std::get_if<TransferEvent>(&e2);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->tag, transfer.tag);
    EXPECT_EQ(t->addr, transfer.addr);
    EXPECT_EQ(t->bytes, transfer.bytes);
    EXPECT_DOUBLE_EQ(t->zeroFraction, transfer.zeroFraction);

    const TraceEvent e3 = decodeEvent(c, r);
    const auto *m = std::get_if<TraceMarker>(&e3);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(*m, TraceMarker::IterationBegin);
    EXPECT_TRUE(c.exhausted());
}

TEST(TraceFormat, CorruptOpcodeKindIsTypedError)
{
    WarpTrace trace = makeWarpTrace(0x1000);
    ByteBuilder b;
    encodeWarpTrace(b, trace);
    // First byte is the fp32 count varint... find and smash a kind
    // byte by brute force: decoding any single-byte corruption must
    // either round-trip to a valid trace or throw IoError — never
    // assert or crash.
    for (size_t i = 0; i < b.size(); ++i) {
        std::vector<uint8_t> bytes = b.buffer();
        bytes[i] ^= 0xff;
        ByteCursor c(bytes.data(), bytes.size(), "fuzzed warp");
        try {
            (void)decodeWarpTrace(c);
        } catch (const IoError &) {
            // expected for most flips
        }
    }
    SUCCEED();
}
