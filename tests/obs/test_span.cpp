/** @file Tests for the host-side span tracer. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "base/thread_pool.hh"
#include "obs/span.hh"

using namespace gnnmark;

namespace {

/** Spans are process-global; isolate and always re-disable. */
struct SpanTest : ::testing::Test
{
    void SetUp() override
    {
        obs::SpanTracer::instance().setEnabled(false);
        obs::SpanTracer::instance().clear();
    }
    void TearDown() override
    {
        obs::SpanTracer::instance().setEnabled(false);
        obs::SpanTracer::instance().clear();
    }
};

int64_t
totalSpans(const std::vector<obs::ThreadSpans> &threads)
{
    int64_t n = 0;
    for (const auto &t : threads)
        n += static_cast<int64_t>(t.spans.size());
    return n;
}

} // namespace

TEST_F(SpanTest, DisabledTracerRecordsNothing)
{
    {
        GNN_SPAN("test.should_not_appear");
    }
    EXPECT_EQ(obs::SpanTracer::instance().spanCount(), 0u);
}

TEST_F(SpanTest, EnabledSpansCarryNameAndDuration)
{
    obs::SpanTracer &tracer = obs::SpanTracer::instance();
    tracer.setEnabled(true);
    {
        GNN_SPAN("test.outer");
        GNN_SPAN("test.inner");
    }
    tracer.setEnabled(false);

    const std::vector<obs::ThreadSpans> threads = tracer.collect();
    ASSERT_EQ(totalSpans(threads), 2);
    bool found_outer = false;
    for (const auto &t : threads) {
        for (const auto &s : t.spans) {
            EXPECT_GE(s.durUs, 0.0);
            EXPECT_GE(s.startUs, 0.0);
            if (std::string(s.name) == "test.outer")
                found_outer = true;
        }
    }
    EXPECT_TRUE(found_outer);
}

TEST_F(SpanTest, MidScopeDisableStillRecordsTheLatchedSpan)
{
    obs::SpanTracer &tracer = obs::SpanTracer::instance();
    tracer.setEnabled(true);
    {
        GNN_SPAN("test.latched");
        tracer.setEnabled(false);
        // The span latched enabled-state at construction, so its
        // destructor still records.
    }
    EXPECT_EQ(tracer.spanCount(), 1u);
}

TEST_F(SpanTest, ClearDropsBufferedSpans)
{
    obs::SpanTracer &tracer = obs::SpanTracer::instance();
    tracer.setEnabled(true);
    {
        GNN_SPAN("test.cleared");
    }
    tracer.setEnabled(false);
    EXPECT_EQ(tracer.spanCount(), 1u);
    tracer.clear();
    EXPECT_EQ(tracer.spanCount(), 0u);
}

TEST_F(SpanTest, NowUsIsMonotonic)
{
    obs::SpanTracer &tracer = obs::SpanTracer::instance();
    const double a = tracer.nowUs();
    const double b = tracer.nowUs();
    EXPECT_GE(b, a);
}

TEST_F(SpanTest, WorkerThreadsGetTheirOwnLanes)
{
    ThreadPool &pool = ThreadPool::instance();
    const int saved = pool.threadCount();
    pool.setThreadCount(3);

    obs::SpanTracer &tracer = obs::SpanTracer::instance();
    tracer.setEnabled(true);
    {
        // Recorded directly so the host lane exists even if the pool
        // workers drain every chunk of the loop below.
        GNN_SPAN("test.host");
    }
    // On a single-CPU host any one thread can drain the whole range
    // before the others are ever scheduled, so every chunk yields
    // until at least one pool worker has recorded a span.
    std::atomic<bool> worker_ran{false};
    parallel_for(0, 64, 1,
                 [&](int64_t, int64_t) {
                     GNN_SPAN("test.chunk");
                     if (ThreadPool::currentWorkerIndex() >= 0) {
                         worker_ran = true;
                         return;
                     }
                     for (int spin = 0; spin < 5000 && !worker_ran;
                          ++spin)
                         std::this_thread::sleep_for(
                             std::chrono::milliseconds(1));
                 });
    tracer.setEnabled(false);

    const std::vector<obs::ThreadSpans> threads = tracer.collect();
    pool.setThreadCount(saved);

    EXPECT_EQ(totalSpans(threads), 65);
    // The host thread collects first and keeps lane 0; workers that
    // recorded anything report distinct positive lanes.
    ASSERT_FALSE(threads.empty());
    EXPECT_EQ(threads.front().lane, 0);
    std::vector<int> lanes;
    bool saw_worker = false;
    for (const auto &t : threads) {
        for (int lane : lanes)
            EXPECT_NE(lane, t.lane);
        lanes.push_back(t.lane);
        if (t.threadName.rfind("worker-", 0) == 0)
            saw_worker = true;
    }
    EXPECT_TRUE(saw_worker);
}
