/** @file Tests for the observability layer's JSON writer/parser. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <string>

#include "obs/json.hh"

using namespace gnnmark;

TEST(JsonEscape, MetacharactersAndControlBytes)
{
    EXPECT_EQ(obs::jsonEscape("plain"), "plain");
    EXPECT_EQ(obs::jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(obs::jsonEscape("line\nbreak\ttab"),
              "line\\nbreak\\ttab");
    EXPECT_EQ(obs::jsonEscape(std::string("nul\x01", 4)), "nul\\u0001");
}

TEST(JsonNumber, IntegralValuesPrintWithoutFraction)
{
    EXPECT_EQ(obs::jsonNumber(0), "0");
    EXPECT_EQ(obs::jsonNumber(-17), "-17");
    EXPECT_EQ(obs::jsonNumber(4096), "4096");
}

TEST(JsonNumber, NonFiniteBecomesNull)
{
    EXPECT_EQ(obs::jsonNumber(std::nan("")), "null");
    EXPECT_EQ(obs::jsonNumber(std::numeric_limits<double>::infinity()),
              "null");
}

TEST(JsonWriter, NestedContainersGetCommasRight)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("a").value(1);
    w.key("b").beginArray();
    w.value(1).value(2.5).value("three").value(true);
    w.endArray();
    w.key("c").beginObject().endObject();
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\"a\":1,\"b\":[1,2.5,\"three\",true],\"c\":{}}");
}

TEST(JsonParse, RoundTripsWriterOutput)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("name").value("run \"x\"");
    w.key("vals").beginArray().value(1).value(-2.25).endArray();
    w.key("flag").value(false);
    w.endObject();

    const obs::JsonValue doc = obs::parseJson(w.str());
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.find("name")->string, "run \"x\"");
    ASSERT_TRUE(doc.find("vals")->isArray());
    EXPECT_DOUBLE_EQ(doc.find("vals")->array[1].number, -2.25);
    EXPECT_FALSE(doc.find("flag")->boolean);
}

TEST(JsonParse, MalformedInputThrows)
{
    EXPECT_THROW(obs::parseJson("{"), obs::JsonError);
    EXPECT_THROW(obs::parseJson("{\"a\":}"), obs::JsonError);
    EXPECT_THROW(obs::parseJson("[1,2,]"), obs::JsonError);
    EXPECT_THROW(obs::parseJson("{} trailing"), obs::JsonError);
    EXPECT_THROW(obs::parseJson(""), obs::JsonError);
}

TEST(JsonFlatten, NumericLeavesBecomeDottedPaths)
{
    const obs::JsonValue doc = obs::parseJson(
        "{\"a\":{\"b\":2,\"skip\":\"str\"},\"arr\":[5,{\"x\":7}],"
        "\"flag\":true}");
    std::map<std::string, double> flat;
    obs::flattenNumbers(doc, "", flat);
    ASSERT_EQ(flat.size(), 4u);
    EXPECT_DOUBLE_EQ(flat.at("a.b"), 2);
    EXPECT_DOUBLE_EQ(flat.at("arr.0"), 5);
    EXPECT_DOUBLE_EQ(flat.at("arr.1.x"), 7);
    EXPECT_DOUBLE_EQ(flat.at("flag"), 1);
}

TEST(JsonEscape, Utf8BytesPassThroughUntouched)
{
    // Multi-byte UTF-8 sequences are >= 0x80 per byte, so the control
    // escape must never fire on them (a signed-char comparison would).
    const std::string snowman = "\xe2\x98\x83";
    EXPECT_EQ(obs::jsonEscape(snowman), snowman);
    EXPECT_EQ(obs::jsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonEscape, AllControlBytesBecomeUnicodeEscapes)
{
    for (int c = 1; c < 0x20; ++c) {
        if (c == '\n' || c == '\t' || c == '\r')
            continue; // short escapes, covered above
        const std::string escaped =
            obs::jsonEscape(std::string(1, static_cast<char>(c)));
        ASSERT_EQ(escaped.size(), 6u) << "byte " << c;
        EXPECT_EQ(escaped.substr(0, 2), "\\u") << "byte " << c;
        // Round-trip through the parser restores the original byte.
        const obs::JsonValue doc =
            obs::parseJson("\"" + escaped + "\"");
        EXPECT_EQ(doc.string, std::string(1, static_cast<char>(c)))
            << "byte " << c;
    }
}

TEST(JsonWriter, EscapesKeysAndValuesSymmetrically)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("a\"b").value("c\\d\ne");
    w.endObject();
    const obs::JsonValue doc = obs::parseJson(w.str());
    const obs::JsonValue *v = doc.find("a\"b");
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->string, "c\\d\ne");
}
