/**
 * @file
 * Tests for the windowed-observability primitives: QuantileSketch,
 * WindowedSeries, BurnRateMonitor and RequestTracer.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "base/rng.hh"
#include "obs/request_trace.hh"
#include "obs/slo.hh"
#include "obs/window.hh"

using namespace gnnmark;

TEST(QuantileSketch, BucketsAreMonotoneAndRoundTrip)
{
    int prev = obs::QuantileSketch::bucketFor(1e-9);
    for (double v = 1e-8; v < 1e12; v *= 1.7) {
        const int b = obs::QuantileSketch::bucketFor(v);
        EXPECT_GE(b, prev) << "bucket index regressed at v=" << v;
        prev = b;
        // The representative value of a bucket lands back in it
        // (except at the clamped extremes).
        if (b > 1 && b < static_cast<int>(obs::kSketchBuckets) - 1)
            EXPECT_EQ(obs::QuantileSketch::bucketFor(
                          obs::QuantileSketch::bucketValue(b)),
                      b);
    }
    // Non-positive and NaN all collapse into bucket 0.
    EXPECT_EQ(obs::QuantileSketch::bucketFor(0), 0);
    EXPECT_EQ(obs::QuantileSketch::bucketFor(-3.5), 0);
    EXPECT_EQ(obs::QuantileSketch::bucketFor(
                  std::numeric_limits<double>::quiet_NaN()),
              0);
}

TEST(QuantileSketch, QuantileWithinRelativeError)
{
    // Uniform [1, 100): the sketch's 8-per-octave layout bounds the
    // relative error of any quantile by one bucket, ~4.5%.
    obs::QuantileSketch sketch;
    Rng rng(7);
    std::vector<double> values;
    for (int i = 0; i < 20000; ++i) {
        const double v = 1.0 + 99.0 * rng.uniform();
        values.push_back(v);
        sketch.observe(v);
    }
    std::sort(values.begin(), values.end());
    for (double q : {0.5, 0.95, 0.99}) {
        const double exact =
            values[static_cast<size_t>(q * values.size())];
        const double approx = sketch.quantile(q);
        EXPECT_NEAR(approx, exact, 0.05 * exact)
            << "q=" << q;
    }
}

TEST(QuantileSketch, MergeEqualsBulkObservation)
{
    obs::QuantileSketch bulk, left, right;
    Rng rng(11);
    for (int i = 0; i < 5000; ++i) {
        const double v = std::exp(6.0 * rng.uniform() - 3.0);
        bulk.observe(v);
        (i % 2 ? left : right).observe(v);
    }
    obs::QuantileSketch merged = left;
    merged.merge(right);
    EXPECT_EQ(merged.count(), bulk.count());
    EXPECT_EQ(merged.buckets(), bulk.buckets());
    EXPECT_DOUBLE_EQ(merged.quantile(0.5), bulk.quantile(0.5));
}

TEST(QuantileSketch, EmptySketchReportsZero)
{
    obs::QuantileSketch sketch;
    EXPECT_EQ(sketch.count(), 0);
    EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 0);
    EXPECT_DOUBLE_EQ(sketch.quantile(0.99), 0);
}

TEST(WindowedSeries, TumblingWindowsWithGaps)
{
    obs::WindowedSeries win(0.5);
    win.observe(0.1, 10);
    win.observe(0.4, 20);
    win.observe(2.2, 5); // windows 1..3 stay quiet except 4
    const std::vector<obs::WindowStats> s = win.series(2.5);
    ASSERT_EQ(s.size(), 5u);
    EXPECT_EQ(s[0].count, 2);
    EXPECT_DOUBLE_EQ(s[0].sum, 30);
    EXPECT_DOUBLE_EQ(s[0].minValue, 10);
    EXPECT_DOUBLE_EQ(s[0].maxValue, 20);
    EXPECT_EQ(s[1].count, 0);
    EXPECT_EQ(s[2].count, 0);
    EXPECT_EQ(s[3].count, 0);
    EXPECT_EQ(s[4].count, 1);
    EXPECT_DOUBLE_EQ(s[4].startSec, 2.0);
    EXPECT_DOUBLE_EQ(s[4].endSec, 2.5);
}

TEST(WindowedSeries, HorizonPadsTrailingEmptyWindows)
{
    obs::WindowedSeries win(1.0);
    win.observe(0.5, 1);
    // Horizon 4s → windows 0..3 even though only window 0 saw data.
    EXPECT_EQ(win.series(4.0).size(), 4u);
    // Empty series over no horizon is empty.
    obs::WindowedSeries empty(1.0);
    EXPECT_TRUE(empty.series(0).empty());
}

TEST(WindowedSeries, CapCollapsesOverflowIntoLastWindow)
{
    obs::WindowedSeries win(0.001, /*windowCap=*/4);
    for (int i = 0; i < 10; ++i)
        win.observe(i * 0.001, 1.0);
    const std::vector<obs::WindowStats> s = win.series(0.010);
    ASSERT_EQ(s.size(), 4u);
    EXPECT_EQ(s[3].count, 7); // windows 3..9 collapsed
    EXPECT_EQ(win.cappedCount(), 6);
    EXPECT_EQ(win.totalCount(), 10);
}

TEST(WindowedSeries, NegativeTimeClampsToWindowZero)
{
    obs::WindowedSeries win(1.0);
    win.observe(-3.0, 7);
    const std::vector<obs::WindowStats> s = win.series(1.0);
    ASSERT_EQ(s.size(), 1u);
    EXPECT_EQ(s[0].count, 1);
}

TEST(BurnRateMonitor, FiresOnlyWhenBothLookbacksBurn)
{
    // Budget 1% — a 50%-error window burns at rate 50.
    obs::BurnRateMonitor mon(0.99, 1.0);
    mon.setRules({{"r", "page", /*long=*/4, /*short=*/1,
                   /*threshold=*/10.0}});
    // Three healthy windows dilute the long lookback below threshold
    // on the first bad window; the second bad window pushes it over.
    mon.addWindow(100, 100);
    mon.addWindow(100, 100);
    mon.addWindow(100, 100);
    mon.addWindow(50, 100); // long burn = 12.5 >= 10 → fires
    mon.finish();
    ASSERT_EQ(mon.alerts().size(), 1u);
    EXPECT_EQ(mon.alerts()[0].startWindow, 3);
    EXPECT_EQ(mon.alerts()[0].endWindow, 3);
    EXPECT_DOUBLE_EQ(mon.alerts()[0].startSec, 3.0);
    EXPECT_DOUBLE_EQ(mon.alerts()[0].endSec, 4.0);
}

TEST(BurnRateMonitor, ConsecutiveFiringWindowsCoalesce)
{
    obs::BurnRateMonitor mon(0.99, 0.5);
    mon.setRules({{"r", "page", 1, 1, 10.0}});
    mon.addWindow(100, 100);
    mon.addWindow(40, 100);
    mon.addWindow(30, 100);
    mon.addWindow(100, 100);
    mon.addWindow(20, 100);
    mon.finish();
    ASSERT_EQ(mon.alerts().size(), 2u);
    EXPECT_EQ(mon.alerts()[0].startWindow, 1);
    EXPECT_EQ(mon.alerts()[0].endWindow, 2);
    EXPECT_NEAR(mon.alerts()[0].errorFraction, 0.65, 1e-9);
    EXPECT_NEAR(mon.alerts()[0].peakBurn, 70.0, 1e-9);
    EXPECT_EQ(mon.alerts()[1].startWindow, 4);
    EXPECT_EQ(mon.alerts()[1].endWindow, 4);
}

TEST(BurnRateMonitor, FinishClosesOpenAlertAndIsIdempotent)
{
    obs::BurnRateMonitor mon(0.9, 1.0);
    mon.setRules({{"r", "page", 1, 1, 2.0}});
    mon.addWindow(0, 10); // burns forever after
    mon.finish();
    mon.finish();
    ASSERT_EQ(mon.alerts().size(), 1u);
    EXPECT_EQ(mon.alerts()[0].endWindow, 0);
    EXPECT_DOUBLE_EQ(mon.budgetConsumed(), 10.0);
}

TEST(BurnRateMonitor, PointsLedgerTracksCumulativeBudget)
{
    obs::BurnRateMonitor mon(0.99, 1.0);
    mon.addWindow(99, 100);
    mon.addWindow(98, 100);
    mon.finish();
    ASSERT_EQ(mon.points().size(), 2u);
    EXPECT_NEAR(mon.points()[0].burnRate, 1.0, 1e-9);
    EXPECT_NEAR(mon.points()[0].budgetConsumed, 1.0, 1e-9);
    EXPECT_NEAR(mon.points()[1].burnRate, 2.0, 1e-9);
    EXPECT_NEAR(mon.points()[1].budgetConsumed, 1.5, 1e-9);
}

TEST(RequestTracer, SamplesEveryNthAndRetainsExemplars)
{
    obs::RequestTracer tracer(/*sampleEvery=*/4);
    for (int64_t id = 0; id < 10; ++id) {
        tracer.addMark(id, "arrival", id * 0.1);
        if (id == 5)
            tracer.retain(id);
        tracer.finish(id, id == 5 ? "shed" : "full");
    }
    const std::vector<obs::RequestTrace> traces = tracer.drain();
    ASSERT_EQ(traces.size(), 4u); // ids 0, 4, 8 sampled + 5 retained
    EXPECT_EQ(traces[0].id, 0);
    EXPECT_EQ(traces[1].id, 4);
    EXPECT_EQ(traces[2].id, 5);
    EXPECT_TRUE(traces[2].exemplar);
    EXPECT_EQ(traces[2].outcome, "shed");
    EXPECT_EQ(traces[3].id, 8);
    EXPECT_FALSE(traces[3].exemplar);
}

TEST(RequestTracer, UnsampledRequestsDropSpansAtFinish)
{
    obs::RequestTracer tracer(2);
    tracer.addSpan(1, "infer", 0.0, 0.5);
    tracer.finish(1, "full");
    EXPECT_TRUE(tracer.drain().empty());
    EXPECT_EQ(tracer.tracedCount(), 0);
}

TEST(RequestTracer, SeparateLaneBudgetsForSampledAndExemplars)
{
    // Cap 2 per class: a flood of sampled requests must not evict
    // exemplars that arrive later.
    obs::RequestTracer tracer(/*sampleEvery=*/2, /*laneCap=*/2);
    for (int64_t id = 0; id < 10; id += 2) { // 5 sampled requests
        tracer.addMark(id, "arrival", id * 1.0);
        tracer.finish(id, "full");
    }
    for (int64_t id = 101; id < 107; id += 2) { // 3 exemplars
        tracer.addMark(id, "arrival", id * 1.0);
        tracer.retain(id);
        tracer.finish(id, "shed");
    }
    const std::vector<obs::RequestTrace> traces = tracer.drain();
    ASSERT_EQ(traces.size(), 4u);
    EXPECT_EQ(traces[0].id, 0);
    EXPECT_EQ(traces[1].id, 2);
    EXPECT_EQ(traces[2].id, 101);
    EXPECT_EQ(traces[3].id, 103);
    EXPECT_EQ(tracer.droppedByCap(), 4); // ids 4, 6, 8 and 105
    EXPECT_EQ(tracer.tracedCount(), 4);
}

TEST(RequestTracer, SampledRetainedRequestCountsAsSampled)
{
    // A request that is both sampled and retained spends the sampled
    // budget and is not flagged as an exemplar.
    obs::RequestTracer tracer(1, 4);
    tracer.addMark(0, "arrival", 0.0);
    tracer.retain(0);
    tracer.finish(0, "full");
    const std::vector<obs::RequestTrace> traces = tracer.drain();
    ASSERT_EQ(traces.size(), 1u);
    EXPECT_FALSE(traces[0].exemplar);
}

TEST(RequestTracer, SpanEndClampsToStart)
{
    obs::RequestTracer tracer(1);
    tracer.addSpan(0, "backwards", 2.0, 1.0);
    tracer.finish(0, "full");
    const std::vector<obs::RequestTrace> traces = tracer.drain();
    ASSERT_EQ(traces.size(), 1u);
    ASSERT_EQ(traces[0].spans.size(), 1u);
    EXPECT_DOUBLE_EQ(traces[0].spans[0].endSec, 2.0);
}
