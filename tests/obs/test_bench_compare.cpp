/** @file Tests for the bench_diff comparison engine. */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>

#include "obs/bench_compare.hh"

using namespace gnnmark;

namespace {

using MetricMap = std::map<std::string, double>;

std::string
writeTemp(const std::string &name, const std::string &content)
{
    const std::string path = ::testing::TempDir() + name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
    return path;
}

} // namespace

TEST(BenchCompare, IdenticalMapsPassAtZeroTolerance)
{
    const MetricMap m = {{"a", 1.0}, {"b", -2.5}, {"c", 0.0}};
    const obs::CompareResult r =
        compareMetricMaps(m, m, obs::CompareOptions{});
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.comparedKeys, 3);
}

TEST(BenchCompare, DriftBeyondToleranceFails)
{
    const MetricMap base = {{"a", 100.0}};
    const MetricMap cand = {{"a", 103.0}};
    obs::CompareOptions opts;
    opts.defaultTolerance = 0.02;
    const obs::CompareResult r = compareMetricMaps(base, cand, opts);
    ASSERT_EQ(r.failures.size(), 1u);
    EXPECT_EQ(r.failures[0].reason, "regression");
    EXPECT_NEAR(r.failures[0].relativeError, 3.0 / 103.0, 1e-12);

    opts.defaultTolerance = 0.05;
    EXPECT_TRUE(compareMetricMaps(base, cand, opts).ok());
}

TEST(BenchCompare, LongestPrefixToleranceWins)
{
    obs::CompareOptions opts;
    opts.defaultTolerance = 0.0;
    opts.tolerances = {{"iter.", 0.5}, {"iter.fine.", 0.01}};
    EXPECT_DOUBLE_EQ(toleranceForKey(opts, "iter.loss"), 0.5);
    EXPECT_DOUBLE_EQ(toleranceForKey(opts, "iter.fine.ipc"), 0.01);
    EXPECT_DOUBLE_EQ(toleranceForKey(opts, "manifest.ipc"), 0.0);
}

TEST(BenchCompare, AbsoluteFloorForgivesTinyDrift)
{
    const MetricMap base = {{"stall.frac", 3e-5}};
    const MetricMap cand = {{"stall.frac", 4e-5}}; // 25% relative
    obs::CompareOptions opts;
    EXPECT_FALSE(compareMetricMaps(base, cand, opts).ok());
    opts.absoluteFloor = 1e-4;
    EXPECT_TRUE(compareMetricMaps(base, cand, opts).ok());
}

TEST(BenchCompare, WallClockKeysAreIgnoredByDefault)
{
    const MetricMap base = {{"iter.host_time_us", 10.0},
                            {"manifest.wall_time_sec", 1.0},
                            {"iter.loss", 0.5}};
    const MetricMap cand = {{"iter.host_time_us", 900.0},
                            {"manifest.wall_time_sec", 77.0},
                            {"iter.loss", 0.5}};
    const obs::CompareResult r =
        compareMetricMaps(base, cand, obs::CompareOptions{});
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.comparedKeys, 1);
    EXPECT_EQ(r.ignoredKeys, 4); // both sides count their skips
}

TEST(BenchCompare, MissingAndExtraKeysFailUnlessAllowed)
{
    const MetricMap base = {{"a", 1.0}, {"gone", 2.0}};
    const MetricMap cand = {{"a", 1.0}, {"new", 3.0}};
    obs::CompareOptions opts;
    const obs::CompareResult r = compareMetricMaps(base, cand, opts);
    ASSERT_EQ(r.failures.size(), 2u);
    EXPECT_EQ(r.failures[0].reason, "missing");
    EXPECT_EQ(r.failures[1].reason, "extra");

    opts.allowMissing = true;
    EXPECT_TRUE(compareMetricMaps(base, cand, opts).ok());
}

TEST(BenchCompare, DescribeFailureNamesTheKeyAndValues)
{
    obs::CompareFailure f;
    f.key = "iter.loss";
    f.baseline = 0.5;
    f.candidate = 0.75;
    f.relativeError = 1.0 / 3.0;
    f.tolerance = 0.01;
    f.reason = "regression";
    const std::string line = describeFailure(f);
    EXPECT_NE(line.find("REGRESS"), std::string::npos);
    EXPECT_NE(line.find("iter.loss"), std::string::npos);
    EXPECT_NE(line.find("0.5"), std::string::npos);
    EXPECT_NE(line.find("0.75"), std::string::npos);
}

TEST(BenchCompare, FlattensJsonlWithRecordPrefixes)
{
    const std::string path = writeTemp(
        "gnnmark_bench_compare.jsonl",
        "{\"type\":\"iteration\",\"workload\":\"GCN\",\"iteration\":0,"
        "\"loss\":0.5}\n"
        "{\"type\":\"iteration\",\"workload\":\"GCN\",\"iteration\":1,"
        "\"loss\":0.4}\n"
        "{\"type\":\"manifest\",\"workload\":\"GCN\",\"seed\":42}\n");
    const MetricMap flat = obs::flattenTelemetryFile(path);
    std::remove(path.c_str());
    EXPECT_DOUBLE_EQ(flat.at("iteration.GCN.0.loss"), 0.5);
    EXPECT_DOUBLE_EQ(flat.at("iteration.GCN.1.loss"), 0.4);
    EXPECT_DOUBLE_EQ(flat.at("manifest.GCN.seed"), 42);
}

TEST(BenchCompare, FlattensWholeDocumentReports)
{
    const std::string path = writeTemp(
        "gnnmark_bench_compare_doc.json",
        "{\"workloads\":{\"GCN\":{\"gflops\":12.5}}}");
    const MetricMap flat = obs::flattenTelemetryFile(path);
    std::remove(path.c_str());
    EXPECT_DOUBLE_EQ(flat.at("workloads.GCN.gflops"), 12.5);
}

TEST(BenchCompare, SelfDiffOfARealTelemetryFileIsExact)
{
    const std::string path = writeTemp(
        "gnnmark_bench_compare_self.jsonl",
        "{\"type\":\"iteration\",\"workload\":\"X\",\"iteration\":0,"
        "\"sim_time_us\":123.25,\"host_time_us\":9.0}\n");
    const MetricMap flat = obs::flattenTelemetryFile(path);
    std::remove(path.c_str());
    const obs::CompareResult r =
        compareMetricMaps(flat, flat, obs::CompareOptions{});
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.comparedKeys, 2); // iteration index + sim time
    EXPECT_EQ(r.ignoredKeys, 2);  // host_time_us on both sides
}

TEST(BenchCompare, CollapseHistogramBucketsDerivesPercentiles)
{
    // 90 observations in bucket 32 (~1.4) and 10 in bucket 35 (~11.3):
    // p50 reads bucket 32, p95/p99 read bucket 35.
    std::map<std::string, double> flat = {
        {"m.serve.metrics.histograms.lat.32", 90},
        {"m.serve.metrics.histograms.lat.35", 10},
        {"m.serve.metrics.counters.hits", 7},
    };
    const std::map<std::string, double> out =
        obs::collapseHistogramBuckets(flat);
    EXPECT_EQ(out.count("m.serve.metrics.histograms.lat.32"), 0u);
    EXPECT_DOUBLE_EQ(out.at("m.serve.metrics.histograms.lat.count"),
                     100);
    EXPECT_DOUBLE_EQ(out.at("m.serve.metrics.histograms.lat.p50"),
                     std::exp2(32 - 31.5));
    EXPECT_DOUBLE_EQ(out.at("m.serve.metrics.histograms.lat.p95"),
                     std::exp2(35 - 31.5));
    // Bucket 0 (v <= 0) reads as exactly 0.
    const std::map<std::string, double> zeros =
        obs::collapseHistogramBuckets(
            {{"x.histograms.h.0", 5}});
    EXPECT_DOUBLE_EQ(zeros.at("x.histograms.h.p99"), 0);
    // Non-bucket keys pass through untouched.
    EXPECT_DOUBLE_EQ(out.at("m.serve.metrics.counters.hits"), 7);
}

TEST(BenchCompare, HistogramPercentilesToleranceAllowsOneBucketDrift)
{
    // Same count, percentile one bucket apart: relative error 0.5
    // exactly, which the default histogramTolerance accepts.
    std::map<std::string, double> base = {
        {"r.histograms.lat.32", 100}};
    std::map<std::string, double> oneOff = {
        {"r.histograms.lat.33", 100}};
    obs::CompareOptions opts;
    opts.histogramPercentiles = true;
    EXPECT_TRUE(compareMetricMaps(base, oneOff, opts).ok());

    // Two buckets of drift (4x) exceeds it.
    std::map<std::string, double> twoOff = {
        {"r.histograms.lat.34", 100}};
    const obs::CompareResult bad =
        compareMetricMaps(base, twoOff, opts);
    EXPECT_FALSE(bad.ok());

    // A count change still fails under the default exact tolerance
    // even when the percentiles agree.
    std::map<std::string, double> extra = {
        {"r.histograms.lat.32", 101}};
    EXPECT_FALSE(compareMetricMaps(base, extra, opts).ok());
}

TEST(BenchCompare, RawBucketCompareStillFailsOnOneBucketDrift)
{
    // Without --hist-pct the same one-bucket drift is a missing/extra
    // key pair — the exact failure mode the derived mode exists to
    // forgive.
    std::map<std::string, double> base = {
        {"r.histograms.lat.32", 100}};
    std::map<std::string, double> oneOff = {
        {"r.histograms.lat.33", 100}};
    obs::CompareOptions opts;
    EXPECT_FALSE(compareMetricMaps(base, oneOff, opts).ok());
}
