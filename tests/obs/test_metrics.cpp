/** @file Tests for the sharded metrics registry. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "base/thread_pool.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/telemetry.hh"

using namespace gnnmark;

namespace {

/** Metrics is a process-wide singleton; every test starts clean. */
struct MetricsTest : ::testing::Test
{
    void SetUp() override { obs::Metrics::instance().reset(); }
    void TearDown() override { obs::Metrics::instance().reset(); }
};

} // namespace

TEST_F(MetricsTest, CountersAccumulate)
{
    obs::Metrics &m = obs::Metrics::instance();
    m.add("test.hits");
    m.add("test.hits", 4);
    m.add("test.bytes", 1024);
    const obs::MetricsSnapshot snap = m.snapshot();
    EXPECT_DOUBLE_EQ(snap.counters.at("test.hits"), 5);
    EXPECT_DOUBLE_EQ(snap.counters.at("test.bytes"), 1024);
}

TEST_F(MetricsTest, GaugesLastWriteWins)
{
    obs::Metrics &m = obs::Metrics::instance();
    m.setGauge("test.loss", 0.9);
    m.setGauge("test.loss", 0.5);
    EXPECT_DOUBLE_EQ(m.snapshot().gauges.at("test.loss"), 0.5);
}

TEST_F(MetricsTest, HistogramBucketsAreLog2)
{
    EXPECT_EQ(obs::Metrics::histogramBucket(0), 0);
    EXPECT_EQ(obs::Metrics::histogramBucket(-3), 0);
    EXPECT_EQ(obs::Metrics::histogramBucket(1.0), 32);
    EXPECT_EQ(obs::Metrics::histogramBucket(1.5), 32);
    EXPECT_EQ(obs::Metrics::histogramBucket(2.0), 33);
    EXPECT_EQ(obs::Metrics::histogramBucket(0.5), 31);
    // Extremes clamp instead of running off the array.
    EXPECT_EQ(obs::Metrics::histogramBucket(1e300), 63);
    EXPECT_EQ(obs::Metrics::histogramBucket(1e-300), 1);
}

TEST_F(MetricsTest, HistogramObservationsLandInBuckets)
{
    obs::Metrics &m = obs::Metrics::instance();
    m.observe("test.lat", 1.0);
    m.observe("test.lat", 1.9);
    m.observe("test.lat", 4.0);
    const auto &buckets = m.snapshot().histograms.at("test.lat");
    EXPECT_EQ(buckets[32], 2);
    EXPECT_EQ(buckets[34], 1);
}

TEST_F(MetricsTest, ResetZeroesEverything)
{
    obs::Metrics &m = obs::Metrics::instance();
    m.add("test.c", 7);
    m.setGauge("test.g", 3);
    m.observe("test.h", 2.0);
    m.reset();
    const obs::MetricsSnapshot snap = m.snapshot();
    EXPECT_DOUBLE_EQ(snap.counters.at("test.c"), 0);
    EXPECT_EQ(snap.gauges.count("test.g"), 0u);
    EXPECT_EQ(snap.histograms.at("test.h")[33], 0);
}

TEST_F(MetricsTest, HandleClassesShareTheRegistry)
{
    obs::Counter c("test.handle");
    obs::Histogram h("test.handle_hist");
    c.add();
    c.add(2);
    h.observe(1.0);
    const obs::MetricsSnapshot snap =
        obs::Metrics::instance().snapshot();
    EXPECT_DOUBLE_EQ(snap.counters.at("test.handle"), 3);
    EXPECT_EQ(snap.histograms.at("test.handle_hist")[32], 1);
}

TEST_F(MetricsTest, ShardsSumAcrossPoolThreads)
{
    obs::Metrics &m = obs::Metrics::instance();
    // Integer increments from many threads must sum exactly (the
    // registry's determinism contract).
    parallel_for(0, 1000, 1,
                 [&](int64_t b, int64_t e) {
                     for (int64_t i = b; i < e; ++i)
                         m.add("test.parallel");
                 });
    EXPECT_DOUBLE_EQ(m.snapshot().counters.at("test.parallel"), 1000);
}

TEST_F(MetricsTest, NonFiniteGaugesAreRejected)
{
    obs::Metrics &m = obs::Metrics::instance();
    m.setGauge("test.bad", std::nan(""));
    EXPECT_EQ(m.snapshot().gauges.count("test.bad"), 0u);
    // A rejected write never clobbers the last good value.
    m.setGauge("test.mixed", 3.0);
    m.setGauge("test.mixed",
               std::numeric_limits<double>::infinity());
    m.setGauge("test.mixed",
               -std::numeric_limits<double>::infinity());
    EXPECT_DOUBLE_EQ(m.snapshot().gauges.at("test.mixed"), 3.0);
}

TEST_F(MetricsTest, CardinalityLimitAliasesOverflowNames)
{
    obs::Metrics &m = obs::Metrics::instance();
    // The registry keeps interned names across reset(), so size the
    // limit relative to what this process already registered.
    const obs::MetricsSnapshot before = m.snapshot();
    const size_t used = before.counters.size() +
                        before.histograms.size() +
                        before.gauges.size();
    m.setCardinalityLimit(used + 2);

    m.add("test.card.a");     // fits
    m.add("test.card.b");     // fills the registry
    m.add("test.card.c", 5);  // overflows -> obs.dropped_names
    m.observe("test.card.h", 1.0); // overflows too
    m.setGauge("test.card.g", 1.0); // new gauge: discarded

    const obs::MetricsSnapshot snap = m.snapshot();
    EXPECT_EQ(snap.counters.count("test.card.a"), 1u);
    EXPECT_EQ(snap.counters.count("test.card.c"), 0u);
    EXPECT_DOUBLE_EQ(snap.counters.at("obs.dropped_names"), 5);
    EXPECT_EQ(snap.histograms.count("test.card.h"), 0u);
    EXPECT_EQ(snap.gauges.count("test.card.g"), 0u);
    EXPECT_GE(m.droppedNames(), 3);

    // Existing names keep working at capacity.
    m.add("test.card.a", 2);
    EXPECT_DOUBLE_EQ(m.snapshot().counters.at("test.card.a"), 3);
}

TEST_F(MetricsTest, SnapshotSerializesEmptyHistogramAsEmptyArray)
{
    obs::Metrics &m = obs::Metrics::instance();
    // Intern a histogram name without observations (reset() keeps the
    // name but zeroes the buckets) plus one with a single bucket.
    m.observe("test.empty", 1.0);
    m.reset();
    m.observe("test.one", 1.0);

    obs::JsonWriter w;
    obs::writeMetricsSnapshot(w, m.snapshot());
    const obs::JsonValue doc = obs::parseJson(w.str());
    const obs::JsonValue *hists = doc.find("histograms");
    ASSERT_NE(hists, nullptr);
    const obs::JsonValue *empty = hists->find("test.empty");
    ASSERT_NE(empty, nullptr);
    EXPECT_TRUE(empty->isArray());
    EXPECT_TRUE(empty->array.empty());
    // Trailing zero buckets are trimmed, not padded to 64 entries.
    const obs::JsonValue *one = hists->find("test.one");
    ASSERT_NE(one, nullptr);
    EXPECT_EQ(one->array.size(), 33u); // buckets 0..32
}
