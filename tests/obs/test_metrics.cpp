/** @file Tests for the sharded metrics registry. */

#include <gtest/gtest.h>

#include "base/thread_pool.hh"
#include "obs/metrics.hh"

using namespace gnnmark;

namespace {

/** Metrics is a process-wide singleton; every test starts clean. */
struct MetricsTest : ::testing::Test
{
    void SetUp() override { obs::Metrics::instance().reset(); }
    void TearDown() override { obs::Metrics::instance().reset(); }
};

} // namespace

TEST_F(MetricsTest, CountersAccumulate)
{
    obs::Metrics &m = obs::Metrics::instance();
    m.add("test.hits");
    m.add("test.hits", 4);
    m.add("test.bytes", 1024);
    const obs::MetricsSnapshot snap = m.snapshot();
    EXPECT_DOUBLE_EQ(snap.counters.at("test.hits"), 5);
    EXPECT_DOUBLE_EQ(snap.counters.at("test.bytes"), 1024);
}

TEST_F(MetricsTest, GaugesLastWriteWins)
{
    obs::Metrics &m = obs::Metrics::instance();
    m.setGauge("test.loss", 0.9);
    m.setGauge("test.loss", 0.5);
    EXPECT_DOUBLE_EQ(m.snapshot().gauges.at("test.loss"), 0.5);
}

TEST_F(MetricsTest, HistogramBucketsAreLog2)
{
    EXPECT_EQ(obs::Metrics::histogramBucket(0), 0);
    EXPECT_EQ(obs::Metrics::histogramBucket(-3), 0);
    EXPECT_EQ(obs::Metrics::histogramBucket(1.0), 32);
    EXPECT_EQ(obs::Metrics::histogramBucket(1.5), 32);
    EXPECT_EQ(obs::Metrics::histogramBucket(2.0), 33);
    EXPECT_EQ(obs::Metrics::histogramBucket(0.5), 31);
    // Extremes clamp instead of running off the array.
    EXPECT_EQ(obs::Metrics::histogramBucket(1e300), 63);
    EXPECT_EQ(obs::Metrics::histogramBucket(1e-300), 1);
}

TEST_F(MetricsTest, HistogramObservationsLandInBuckets)
{
    obs::Metrics &m = obs::Metrics::instance();
    m.observe("test.lat", 1.0);
    m.observe("test.lat", 1.9);
    m.observe("test.lat", 4.0);
    const auto &buckets = m.snapshot().histograms.at("test.lat");
    EXPECT_EQ(buckets[32], 2);
    EXPECT_EQ(buckets[34], 1);
}

TEST_F(MetricsTest, ResetZeroesEverything)
{
    obs::Metrics &m = obs::Metrics::instance();
    m.add("test.c", 7);
    m.setGauge("test.g", 3);
    m.observe("test.h", 2.0);
    m.reset();
    const obs::MetricsSnapshot snap = m.snapshot();
    EXPECT_DOUBLE_EQ(snap.counters.at("test.c"), 0);
    EXPECT_EQ(snap.gauges.count("test.g"), 0u);
    EXPECT_EQ(snap.histograms.at("test.h")[33], 0);
}

TEST_F(MetricsTest, HandleClassesShareTheRegistry)
{
    obs::Counter c("test.handle");
    obs::Histogram h("test.handle_hist");
    c.add();
    c.add(2);
    h.observe(1.0);
    const obs::MetricsSnapshot snap =
        obs::Metrics::instance().snapshot();
    EXPECT_DOUBLE_EQ(snap.counters.at("test.handle"), 3);
    EXPECT_EQ(snap.histograms.at("test.handle_hist")[32], 1);
}

TEST_F(MetricsTest, ShardsSumAcrossPoolThreads)
{
    obs::Metrics &m = obs::Metrics::instance();
    // Integer increments from many threads must sum exactly (the
    // registry's determinism contract).
    parallel_for(0, 1000, 1,
                 [&](int64_t b, int64_t e) {
                     for (int64_t i = b; i < e; ++i)
                         m.add("test.parallel");
                 });
    EXPECT_DOUBLE_EQ(m.snapshot().counters.at("test.parallel"), 1000);
}
