/** @file Tests for the JSONL telemetry sink and snapshot encoding. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "base/io.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/telemetry.hh"

using namespace gnnmark;

namespace {

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

} // namespace

TEST(TelemetrySink, WritesOneLinePerRecord)
{
    const std::string path = tempPath("gnnmark_telemetry_lines.jsonl");
    {
        obs::TelemetrySink sink(path);
        sink.writeRecord("{\"a\":1}");
        sink.writeRecord("{\"b\":2}");
        EXPECT_TRUE(sink.good());
        EXPECT_EQ(sink.recordCount(), 2);
        EXPECT_EQ(sink.path(), path);
    }
    EXPECT_EQ(slurp(path), "{\"a\":1}\n{\"b\":2}\n");
    std::remove(path.c_str());
}

TEST(TelemetrySink, ReopeningTruncates)
{
    const std::string path = tempPath("gnnmark_telemetry_trunc.jsonl");
    {
        obs::TelemetrySink sink(path);
        sink.writeRecord("{\"old\":true}");
    }
    {
        obs::TelemetrySink sink(path);
        sink.writeRecord("{\"new\":true}");
    }
    EXPECT_EQ(slurp(path), "{\"new\":true}\n");
    std::remove(path.c_str());
}

TEST(TelemetrySink, UnwritableDirectoryThrowsIoError)
{
    EXPECT_THROW(obs::TelemetrySink("/no-such-dir/telemetry.jsonl"),
                 IoError);
}

TEST(MetricsSnapshotJson, HistogramsTrimTrailingZeroBuckets)
{
    obs::Metrics &m = obs::Metrics::instance();
    m.reset();
    m.add("snap.count", 3);
    m.setGauge("snap.gauge", 0.25);
    m.observe("snap.hist", 1.0); // bucket 32

    obs::JsonWriter w;
    obs::writeMetricsSnapshot(w, m.snapshot());
    m.reset();

    const obs::JsonValue doc = obs::parseJson(w.str());
    EXPECT_DOUBLE_EQ(doc.find("counters")->find("snap.count")->number,
                     3);
    EXPECT_DOUBLE_EQ(doc.find("gauges")->find("snap.gauge")->number,
                     0.25);
    const obs::JsonValue *hist =
        doc.find("histograms")->find("snap.hist");
    ASSERT_NE(hist, nullptr);
    // Buckets beyond the last nonzero one (index 32) are trimmed.
    ASSERT_EQ(hist->array.size(), 33u);
    EXPECT_DOUBLE_EQ(hist->array[32].number, 1);
    EXPECT_DOUBLE_EQ(hist->array[0].number, 0);
}
