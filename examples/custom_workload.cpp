/**
 * @file
 * Extending the suite: define your own Workload (a classic two-layer
 * GCN doing node classification on a citation graph) and put it
 * through the same characterization pipeline as the built-in
 * workloads — the way GNNMark is meant to grow (the paper's Sec. VII
 * plans more models).
 */

#include <iostream>
#include <optional>

#include "core/characterization.hh"
#include "core/reports.hh"
#include "graph/generators.hh"
#include "models/gnn_layers.hh"
#include "nn/loss.hh"
#include "nn/optim.hh"

using namespace gnnmark;

namespace {

/** Two-layer GCN for citation-graph node classification. */
class NodeClassifierGcn : public Workload
{
  public:
    std::string name() const override { return "MY-GCN"; }
    std::string modelName() const override { return "GCN"; }
    std::string framework() const override { return "custom"; }
    std::string domain() const override
    {
        return "Node classification";
    }
    std::string datasetName() const override
    {
        return "CiteSeer (synthetic)";
    }
    std::string graphType() const override { return "Homogeneous"; }

    void
    setup(const WorkloadConfig &config) override
    {
        rng_.emplace(config.seed);
        data_ = gen::citation(*rng_,
                              static_cast<int64_t>(1600 * config.scale),
                              static_cast<int64_t>(1200 * config.scale),
                              /*classes=*/6);
        adj_ = data_.graph.gcnNormAdjacency();

        const int64_t fdim = data_.features.size(1);
        layer1_ = std::make_unique<GcnLayer>(fdim, 32, *rng_);
        layer2_ = std::make_unique<GcnLayer>(32, 6, *rng_);
        std::vector<Variable> params = layer1_->parameters();
        for (const auto &p : layer2_->parameters())
            params.push_back(p);
        optim_ = std::make_unique<nn::Adam>(std::move(params), 1e-2f);
    }

    float
    trainIteration() override
    {
        uploadInput(data_.features, "features");
        Variable h =
            ag::relu(layer1_->forward(adj_, adj_,
                                      Variable(data_.features)));
        Variable logits = layer2_->forward(adj_, adj_, h);
        Variable loss = nn::crossEntropy(logits, data_.labels);
        optim_->zeroGrad();
        loss.backward();
        optim_->step();
        lastLogits_ = logits.value();
        return loss.value()(0);
    }

    int64_t iterationsPerEpoch() const override { return 1; }
    double parameterBytes() const override
    {
        return optim_->parameterBytes();
    }
    bool supportsMultiGpu() const override { return false; }

    double
    trainAccuracy() const
    {
        return nn::accuracy(lastLogits_, data_.labels);
    }

  private:
    std::optional<Rng> rng_;
    gen::CitationData data_;
    SparseMatrix adj_;
    std::unique_ptr<GcnLayer> layer1_;
    std::unique_ptr<GcnLayer> layer2_;
    std::unique_ptr<nn::Adam> optim_;
    Tensor lastLogits_;
};

} // namespace

int
main()
{
    NodeClassifierGcn workload;

    RunOptions options;
    options.iterations = 20;
    options.scale = 0.5;
    CharacterizationRunner runner(options);

    std::cout << "Characterizing a custom workload ("
              << workload.name() << ") exactly like the built-in "
              << "suite members...\n\n";
    WorkloadProfile profile = runner.run(workload);

    std::cout << "Loss: " << profile.losses.front() << " -> "
              << profile.losses.back() << "  (train accuracy "
              << workload.trainAccuracy() << ")\n\n";

    auto breakdown = profile.profiler.opTimeBreakdown();
    std::cout << "Where the GPU time went:\n";
    for (OpClass c : allOpClasses()) {
        double share = breakdown[static_cast<size_t>(c)];
        if (share > 0.01) {
            std::cout << "  " << opClassName(c) << ": " << share * 100
                      << "%\n";
        }
    }
    std::cout << "\n";
    reports::printKernelTable(profile, std::cout, 8);
    return 0;
}
