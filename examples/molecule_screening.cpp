/**
 * @file
 * Molecular property screening example: train a deep residual GCN on
 * batches of synthetic molecules and screen a held-out set — the
 * paper's molecular-property-prediction use case (DeepGCN). Shows
 * graph batching, GENConv-style message passing and readout pooling.
 */

#include <iostream>

#include "graph/generators.hh"
#include "models/deepgcn.hh"
#include "nn/loss.hh"
#include "nn/optim.hh"
#include "ops/exec_context.hh"
#include "profiler/profiler.hh"

using namespace gnnmark;

namespace {

/** Forward a molecule batch through the model. */
Variable
forward(const GraphBatch &batch, nn::Linear &encoder,
        std::vector<std::unique_ptr<DeepGcnLayer>> &layers,
        nn::Linear &readout)
{
    const int64_t n = batch.graph.numNodes();
    Tensor inv_deg = Tensor::zeros({n});
    for (int64_t v = 0; v < n; ++v) {
        inv_deg(v) = 1.0f / static_cast<float>(
                                std::max(1, batch.graph.degree(v)));
    }
    Variable h = ag::relu(encoder.forward(Variable(batch.features)));
    for (auto &layer : layers) {
        h = layer->forward(h, batch.graph.edgeSrc(),
                           batch.graph.edgeDst(), inv_deg);
    }
    return readout.forward(ag::segmentMeanRows(h, batch.nodeOffsets));
}

} // namespace

int
main()
{
    Rng rng(13);
    const int64_t hidden = 64;
    const int depth = 8;

    auto molecules = gen::molecules(rng, /*count=*/280, 10, 24,
                                    /*feat_dim=*/9);
    std::vector<SmallGraph> train(molecules.begin(),
                                  molecules.begin() + 240);
    std::vector<SmallGraph> held_out(molecules.begin() + 240,
                                     molecules.end());

    nn::Linear encoder(9, hidden, rng);
    std::vector<std::unique_ptr<DeepGcnLayer>> layers;
    for (int l = 0; l < depth; ++l)
        layers.push_back(std::make_unique<DeepGcnLayer>(hidden, rng));
    nn::Linear readout(hidden, 2, rng);

    std::vector<Variable> params = encoder.parameters();
    for (auto &layer : layers) {
        for (const auto &p : layer->parameters())
            params.push_back(p);
    }
    for (const auto &p : readout.parameters())
        params.push_back(p);
    nn::Adam optim(params, 1e-3f);

    GpuDevice device;
    Profiler profiler;
    device.addObserver(&profiler);
    ContextGuard guard(&device);

    std::cout << "Training a " << depth
              << "-layer residual GCN on molecule batches...\n";
    const int64_t bsz = 32;
    for (int step = 0; step < 30; ++step) {
        std::vector<SmallGraph> chosen;
        for (int64_t i = 0; i < bsz; ++i) {
            chosen.push_back(
                train[(step * bsz + i) % train.size()]);
        }
        GraphBatch batch = GraphBatch::build(chosen);
        Variable logits = forward(batch, encoder, layers, readout);
        Variable loss = nn::crossEntropy(logits, batch.labels);
        optim.zeroGrad();
        loss.backward();
        optim.step();
        if (step % 10 == 0) {
            std::cout << "  step " << step << " loss "
                      << loss.value()(0) << " acc "
                      << nn::accuracy(logits.value(), batch.labels)
                      << "\n";
        }
    }

    GraphBatch test = GraphBatch::build(held_out);
    Variable logits = forward(test, encoder, layers, readout);
    std::cout << "\nHeld-out screening accuracy: "
              << nn::accuracy(logits.value(), test.labels) << " over "
              << test.numGraphs() << " molecules\n";

    auto mix = profiler.instructionMix();
    std::cout << "Simulated GPU activity: " << profiler.totalLaunches()
              << " kernels; instruction mix int32 "
              << mix.int32Frac * 100 << "% / fp32 "
              << mix.fp32Frac * 100 << "%\n";
    return 0;
}
