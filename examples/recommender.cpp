/**
 * @file
 * Recommender example: train a small PinSAGE-style model on a
 * synthetic user-item interaction graph with the library's random-walk
 * sampler, then produce item-to-item recommendations from the learned
 * embeddings. Demonstrates the graph generators, samplers, SageLayer
 * and the training loop — the paper's recommendation use case.
 */

#include <algorithm>
#include <iostream>

#include "graph/generators.hh"
#include "graph/samplers.hh"
#include "models/gnn_layers.hh"
#include "nn/loss.hh"
#include "nn/optim.hh"
#include "ops/elementwise.hh"
#include "ops/gemm.hh"
#include "ops/index.hh"
#include "ops/exec_context.hh"
#include "profiler/profiler.hh"

using namespace gnnmark;

namespace {

/** Positions of queries inside a sorted unique id list. */
std::vector<int32_t>
positionsIn(const std::vector<int32_t> &sorted_ids,
            const std::vector<int32_t> &queries)
{
    std::vector<int32_t> out;
    for (int32_t q : queries) {
        out.push_back(static_cast<int32_t>(
            std::lower_bound(sorted_ids.begin(), sorted_ids.end(), q) -
            sorted_ids.begin()));
    }
    return out;
}

} // namespace

int
main()
{
    Rng rng(7);
    const int64_t hidden = 48;

    // A MovieLens-like interaction graph.
    auto data = gen::bipartiteRecsys(rng, /*users=*/400, /*items=*/300,
                                     /*interactions=*/6000,
                                     /*item_feat_dim=*/64,
                                     /*feature_zero_fraction=*/0.2);
    auto item_to_user = data.graph.relationAdjList(data.relItemUser);
    auto user_to_item = data.graph.relationAdjList(data.relUserItem);
    RandomWalkSampler sampler(item_to_user, user_to_item, 8, 2, 6);

    nn::Linear proj(64, hidden, rng);
    SageLayer sage(hidden, hidden, rng);
    std::vector<Variable> params = proj.parameters();
    for (const auto &p : sage.parameters())
        params.push_back(p);
    nn::Adam optim(params, 1e-3f);

    GpuDevice device;
    Profiler profiler;
    device.addObserver(&profiler);
    ContextGuard guard(&device);

    // Embed all items through one sampled layer.
    std::vector<int32_t> all_items(data.items);
    for (int64_t i = 0; i < data.items; ++i)
        all_items[i] = static_cast<int32_t>(i);
    auto embed_all = [&]() {
        SampledBlock block = sampler.sample(all_items, rng);
        Tensor raw = ops::indexSelectRows(data.itemFeatures,
                                          block.srcNodes);
        Variable h0 = ag::relu(proj.forward(Variable(raw)));
        return sage.forward(block, h0,
                            positionsIn(block.srcNodes, block.dstNodes));
    };

    std::cout << "Training a PinSAGE-style recommender...\n";
    for (int step = 0; step < 30; ++step) {
        Variable emb = embed_all();
        // Co-clicked pairs as positives, random items as negatives.
        std::vector<int32_t> anchors, pos, neg;
        for (int i = 0; i < 128; ++i) {
            int32_t a = static_cast<int32_t>(rng.randint(
                static_cast<uint64_t>(data.items)));
            const auto &users = item_to_user[a];
            if (users.empty())
                continue;
            const auto &items =
                user_to_item[users[rng.randint(users.size())]];
            anchors.push_back(a);
            pos.push_back(items[rng.randint(items.size())]);
            neg.push_back(static_cast<int32_t>(rng.randint(
                static_cast<uint64_t>(data.items))));
        }
        Variable ea = ag::indexSelectRows(emb, anchors);
        Variable ep = ag::indexSelectRows(emb, pos);
        Variable en = ag::indexSelectRows(emb, neg);
        Variable pos_score = ag::scale(ag::meanRows(ag::mul(ea, ep)),
                                       static_cast<float>(hidden));
        Variable neg_score = ag::scale(ag::meanRows(ag::mul(ea, en)),
                                       static_cast<float>(hidden));
        Variable loss = nn::maxMarginLoss(pos_score, neg_score, 1.0f);
        optim.zeroGrad();
        loss.backward();
        optim.step();
        if (step % 10 == 0) {
            std::cout << "  step " << step << " loss "
                      << loss.value()(0) << "\n";
        }
    }

    // Recommendations: nearest neighbours in embedding space.
    Tensor emb = embed_all().value();
    std::cout << "\nTop-3 similar items (by learned embedding):\n";
    for (int32_t item : {0, 1, 2}) {
        Tensor scores =
            ops::gemm(ops::sliceRows(emb, item, item + 1), emb,
                      {.trans_b = true});
        std::vector<std::pair<float, int32_t>> ranked;
        for (int64_t j = 0; j < data.items; ++j) {
            if (j != item)
                ranked.push_back({scores(0, j), static_cast<int32_t>(j)});
        }
        std::partial_sort(ranked.begin(), ranked.begin() + 3,
                          ranked.end(), std::greater<>());
        std::cout << "  item " << item << " -> " << ranked[0].second
                  << ", " << ranked[1].second << ", " << ranked[2].second
                  << "\n";
    }

    std::cout << "\nSimulated GPU activity: "
              << profiler.totalLaunches() << " kernels, "
              << profiler.totalKernelTimeSec() * 1e3 << " ms, "
              << profiler.gflops() << " GFLOPS\n";
    return 0;
}
