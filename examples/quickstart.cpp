/**
 * @file
 * Quickstart: train one GNNMark workload on the simulated V100 and
 * print the paper's headline metrics for it.
 *
 * Usage: quickstart [workload-name] (default: ARGA)
 */

#include <iostream>

#include "core/characterization.hh"
#include "core/reports.hh"
#include "core/suite.hh"

using namespace gnnmark;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "ARGA";

    RunOptions options;
    options.iterations = 4;
    options.scale = 0.5;
    CharacterizationRunner runner(options);

    std::cout << "Training " << name
              << " on a simulated V100 (scaled dataset)...\n\n";
    WorkloadProfile profile = runner.run(name);

    std::cout << "Loss trajectory:";
    for (float loss : profile.losses)
        std::cout << " " << loss;
    std::cout << "\n\n";

    auto mix = profile.profiler.instructionMix();
    std::cout << "Kernel launches:  " << profile.profiler.totalLaunches()
              << "\n"
              << "Kernel time:      "
              << profile.profiler.totalKernelTimeSec() * 1e3 << " ms\n"
              << "Epoch time (est): " << profile.epochTimeSec * 1e3
              << " ms\n"
              << "GFLOPS / GIOPS:   " << profile.profiler.gflops()
              << " / " << profile.profiler.giops() << "\n"
              << "IPC:              " << profile.profiler.avgIpc() << "\n"
              << "Instruction mix:  int32 " << mix.int32Frac * 100
              << "%, fp32 " << mix.fp32Frac * 100 << "%\n"
              << "L1 / L2 hit:      "
              << profile.profiler.l1HitRate() * 100 << "% / "
              << profile.profiler.l2HitRate() * 100 << "%\n"
              << "Divergent loads:  "
              << profile.profiler.divergentLoadFraction() * 100 << "%\n"
              << "H2D sparsity:     "
              << profile.profiler.avgTransferSparsity() * 100 << "%\n\n";

    reports::printKernelTable(profile, std::cout);
    return 0;
}
