#include <cstdio>
#include "core/suite.hh"
#include "ops/exec_context.hh"
using namespace gnnmark;
int main() {
    for (const auto &name : BenchmarkSuite::workloadNames()) {
        auto wl = BenchmarkSuite::create(name);
        WorkloadConfig cfg; cfg.scale = 1.0;
        wl->setup(cfg);
        GpuDevice dev;
        { DeviceGuard g(&dev); wl->trainIteration(); dev.resetTimers();
          wl->trainIteration(); wl->trainIteration(); }
        double kt = dev.kernelTimeSec() / 2, disp = dev.kernelCount() / 2 * dev.config().launchOverheadSec;
        std::printf("%-10s kernel %.3f ms  dispatch %.3f ms  xfer %.3f ms  kernels/iter %lld\n",
                    name.c_str(), kt * 1e3, disp * 1e3,
                    dev.transferTimeSec() / 2 * 1e3,
                    static_cast<long long>(dev.kernelCount() / 2));
    }
    return 0;
}
