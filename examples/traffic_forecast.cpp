/**
 * @file
 * Traffic forecasting example: train an ST-Conv block stack on the
 * synthetic sensor network and predict next-step speeds — the paper's
 * dynamic-graph use case (STGCN). Shows temporal windows, the spectral
 * graph convolution over the sensor adjacency, and MSE training.
 */

#include <iostream>

#include "graph/generators.hh"
#include "models/stgcn.hh"
#include "nn/optim.hh"
#include "ops/exec_context.hh"
#include "profiler/profiler.hh"

using namespace gnnmark;

int
main()
{
    Rng rng(11);
    const int64_t window = 12;
    const int64_t batch = 8;

    auto data = gen::traffic(rng, /*sensors=*/96, /*timesteps=*/480);
    const int64_t n = data.sensors.numNodes();
    SparseMatrix adj = data.sensors.gcnNormAdjacency();

    StConvBlock block1(1, 12, 24, rng);
    StConvBlock block2(24, 24, 36, rng);
    Variable out_conv = Variable::param(
        Tensor::randn({1, 36, window - 8, 1}, rng, 0.1f));

    std::vector<Variable> params = block1.parameters();
    for (const auto &p : block2.parameters())
        params.push_back(p);
    params.push_back(out_conv);
    nn::Adam optim(params, 1e-3f);

    GpuDevice device;
    Profiler profiler;
    device.addObserver(&profiler);
    ContextGuard guard(&device);

    auto make_batch = [&](Tensor &input, Tensor &target) {
        for (int64_t b = 0; b < batch; ++b) {
            int64_t t0 = static_cast<int64_t>(rng.randint(
                static_cast<uint64_t>(data.series.size(0) - window - 1)));
            for (int64_t t = 0; t < window; ++t) {
                for (int64_t v = 0; v < n; ++v)
                    input(b, 0, t, v) = data.series(t0 + t, v);
            }
            for (int64_t v = 0; v < n; ++v)
                target(b, v) = data.series(t0 + window, v);
        }
    };

    std::cout << "Training STGCN on " << n << " sensors...\n";
    float first = 0, last = 0;
    for (int step = 0; step < 25; ++step) {
        Tensor input = Tensor::zeros({batch, 1, window, n});
        Tensor target = Tensor::zeros({batch, n});
        make_batch(input, target);

        Variable h = block2.forward(
            block1.forward(Variable(input), adj, adj), adj, adj);
        Variable pred =
            ag::reshape(ag::conv2d(h, out_conv), {batch, n});
        Variable loss = ag::mseLoss(pred, Variable(target));
        optim.zeroGrad();
        loss.backward();
        optim.step();

        if (step == 0)
            first = loss.value()(0);
        last = loss.value()(0);
        if (step % 8 == 0) {
            std::cout << "  step " << step << " mse " << loss.value()(0)
                      << "\n";
        }
    }
    std::cout << "MSE " << first << " -> " << last << "\n";

    // Forecast the step after the last full window.
    Tensor input = Tensor::zeros({batch, 1, window, n});
    Tensor target = Tensor::zeros({batch, n});
    make_batch(input, target);
    Variable pred = ag::reshape(
        ag::conv2d(block2.forward(block1.forward(Variable(input), adj,
                                                 adj), adj, adj),
                   out_conv),
        {batch, n});
    std::cout << "\nSensor forecasts (predicted vs actual):\n";
    for (int64_t v = 0; v < 5; ++v) {
        std::cout << "  sensor " << v << ": " << pred.value()(0, v)
                  << " vs " << target(0, v) << "\n";
    }

    std::cout << "\nSimulated GPU activity: "
              << profiler.totalLaunches() << " kernels, conv share "
              << profiler.opTimeBreakdown()[static_cast<size_t>(
                     OpClass::Conv)] * 100
              << "% of kernel time\n";
    return 0;
}
